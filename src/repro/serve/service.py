"""`SchedulerService` — the scheduler core as an online service.

One service instance wraps one :class:`~repro.core.engine.Simulator` and
drives it in one of two modes:

* **replay** (:meth:`SchedulerService.replay`) — synchronously replay a
  :class:`repro.traces.JobSource` through the engine's streaming intake,
  paced by a :class:`~repro.core.clock.Clock`.  With the default
  ``accept-all`` admission policy the spec stream reaching the engine is
  exactly the source stream, so placement decisions are **byte-identical**
  to ``Simulator.run_stream`` at any acceleration (pinned by
  ``tests/serve/test_replay_determinism.py``).  This is the load-test path.
* **live** (:meth:`SchedulerService.start` + ``submit``/``status``/
  ``cancel``) — an asyncio driver steps the engine event by event while
  submissions arrive concurrently from clients (in-process callers or the
  JSON-lines socket front end in :mod:`repro.serve.protocol`).  Simulated
  time is stamped from the service clock, so the engine never sees time go
  backwards.

Either way the engine, schedulers, and platform are untouched: the service
is *one more driver* of the same core that ``run``/``run_stream`` drive.
Admission control (:mod:`repro.serve.admission`) sits in front of the
engine; queue-latency and throughput metrics accumulate into
:mod:`repro.metrics` accumulators and are exported as mergeable bundles.
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Union

from ..core.clock import Clock, SimulatedClock, WallClock
from ..core.cluster import Cluster
from ..core.engine import SimulationConfig, Simulator
from ..core.job import JobSpec
from ..core.observers import SimulationObserver
from ..core.records import SimulationResult
from ..exceptions import ConfigurationError, ReproError, SimulationError
from ..metrics import DEFAULT_RELATIVE_ERROR, Moments, QuantileSketch, SumAccumulator
from ..metrics.accumulators import Accumulator
from ..metrics.jobs import bundle_to_dict
from ..obs.prometheus import render_prometheus
from ..obs.telemetry import Telemetry, as_telemetry
from ..schedulers.registry import create_scheduler
from ..traces.source import JobSource
from .admission import (
    AcceptAllPolicy,
    AdmissionPolicy,
    ServiceLoad,
    admission_policy_from_dict,
)

__all__ = [
    "SchedulerService",
    "ServiceMetrics",
    "ServiceJobRecord",
    "ReplayReport",
]

#: Terminal ledger states kept for ``status`` queries until trimmed.
_TERMINAL_STATES = ("completed", "cancelled", "rejected", "shed")


@dataclass
class ServiceJobRecord:
    """What the service remembers about one submitted job."""

    job_id: int
    submit_time: float
    #: ``pending`` → ``running`` (→ ``paused`` → ``running``) → ``completed``,
    #: or terminal ``rejected`` / ``cancelled`` / ``shed``.
    state: str = "pending"
    #: Admission reason for rejected/shed jobs (``queue-full``, …).
    reason: str = ""
    first_start_time: Optional[float] = None
    completion_time: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "submit_time": self.submit_time,
            "state": self.state,
            "reason": self.reason,
            "first_start_time": self.first_start_time,
            "completion_time": self.completion_time,
        }


class ServiceMetrics:
    """Live service counters plus mergeable latency accumulators.

    Queue latency (submission → first placement) goes into a
    :class:`~repro.metrics.QuantileSketch` and :class:`~repro.metrics.Moments`
    pair; everything else is exact counters.  :meth:`bundle` exports the
    whole thing as a named accumulator bundle — the same shape streaming
    campaigns ship across the worker pool — so snapshots from several
    services merge associatively.
    """

    def __init__(
        self,
        relative_error: float = DEFAULT_RELATIVE_ERROR,
        slo_factor: float = 10.0,
    ) -> None:
        if not math.isfinite(slo_factor) or slo_factor <= 0.0:
            raise ConfigurationError(
                f"slo_factor must be positive and finite, got {slo_factor!r}"
            )
        self.relative_error = relative_error
        self.slo_factor = slo_factor
        self.queue_latency = QuantileSketch(relative_error=relative_error)
        self.queue_latency_moments = Moments()
        #: JCT (submission → completion) sketch/moments pair, mirroring the
        #: queue-latency pair; fed by every completion.
        self.jct = QuantileSketch(relative_error=relative_error)
        self.jct_moments = Moments()
        self.slo_attained = 0
        self.submitted = 0
        self.accepted = 0
        self.rejected = 0
        self.shed = 0
        self.cancelled = 0
        self.starts = 0
        self.resumes = 0
        self.migrations = 0
        self.preemptions = 0
        self.completions = 0

    @property
    def placements(self) -> int:
        """Placement actions applied: job starts, resumes, and migrations."""
        return self.starts + self.resumes + self.migrations

    def observe_queue_latency(self, latency: float) -> None:
        self.queue_latency.add(latency)
        self.queue_latency_moments.add(latency)

    def observe_jct(self, jct: float, nominal_runtime: float) -> None:
        """Record one completion: JCT plus its SLO verdict.

        The job attains its SLO iff it completed within ``slo_factor`` ×
        its nominal runtime of submission — the same deadline convention as
        the ``slo`` campaign collector (:mod:`repro.obs.slo`).
        """
        self.jct.add(jct)
        self.jct_moments.add(jct)
        if jct <= self.slo_factor * nominal_runtime:
            self.slo_attained += 1

    def bundle(self) -> Dict[str, Accumulator]:
        """Mergeable accumulator bundle of the current state."""
        return {
            "queue_latency": self.queue_latency,
            "queue_latency_moments": self.queue_latency_moments,
            "jct": self.jct,
            "jct_moments": self.jct_moments,
            "slo_attained": SumAccumulator(
                total=float(self.slo_attained), n=self.slo_attained
            ),
            "submitted": SumAccumulator(total=float(self.submitted), n=self.submitted),
            "accepted": SumAccumulator(total=float(self.accepted), n=self.accepted),
            "rejected": SumAccumulator(total=float(self.rejected), n=self.rejected),
            "shed": SumAccumulator(total=float(self.shed), n=self.shed),
            "cancelled": SumAccumulator(total=float(self.cancelled), n=self.cancelled),
            "placements": SumAccumulator(
                total=float(self.placements), n=self.placements
            ),
            "completions": SumAccumulator(
                total=float(self.completions), n=self.completions
            ),
        }

    def snapshot(self, sim_time: float, wall_seconds: float) -> Dict[str, Any]:
        """JSON-ready snapshot (the live metrics endpoint's payload)."""
        latency: Dict[str, float] = {}
        if self.queue_latency.count > 0:
            latency = {
                "p50": self.queue_latency.quantile(0.50),
                "p90": self.queue_latency.quantile(0.90),
                "p99": self.queue_latency.quantile(0.99),
                "mean": self.queue_latency_moments.mean,
                "max": self.queue_latency_moments.maximum,
            }
        jct: Dict[str, float] = {}
        if self.jct.count > 0:
            jct = {
                "p50": self.jct.quantile(0.50),
                "p90": self.jct.quantile(0.90),
                "p99": self.jct.quantile(0.99),
                "mean": self.jct_moments.mean,
                "max": self.jct_moments.maximum,
            }
        placements = self.placements
        return {
            "sim_time": sim_time,
            "wall_seconds": wall_seconds,
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "shed": self.shed,
            "cancelled": self.cancelled,
            "starts": self.starts,
            "resumes": self.resumes,
            "migrations": self.migrations,
            "preemptions": self.preemptions,
            "completions": self.completions,
            "placements": placements,
            "placements_per_wall_sec": (
                placements / wall_seconds if wall_seconds > 0.0 else 0.0
            ),
            "queue_latency": latency,
            "jct": jct,
            "slo_factor": self.slo_factor,
            "slo_total": self.completions,
            "slo_attained": self.slo_attained,
            "slo_attainment": (
                self.slo_attained / self.completions if self.completions else 1.0
            ),
            "bundle": bundle_to_dict(self.bundle()),
        }


class _ServiceObserver(SimulationObserver):
    """Folds engine lifecycle events into the service metrics and ledger."""

    def __init__(
        self,
        metrics: ServiceMetrics,
        ledger: Optional[Dict[int, ServiceJobRecord]] = None,
        on_terminal: Optional[Any] = None,
    ) -> None:
        self._metrics = metrics
        self._ledger = ledger
        self._on_terminal = on_terminal

    def _record(self, job_id: int) -> Optional[ServiceJobRecord]:
        if self._ledger is None:
            return None
        return self._ledger.get(job_id)

    def on_job_started(self, time: float, spec: JobSpec, allocation: Any) -> None:
        self._metrics.starts += 1
        self._metrics.observe_queue_latency(max(0.0, time - spec.submit_time))
        record = self._record(spec.job_id)
        if record is not None:
            record.state = "running"
            if record.first_start_time is None:
                record.first_start_time = time

    def on_job_resumed(self, time: float, spec: JobSpec, allocation: Any) -> None:
        self._metrics.resumes += 1
        record = self._record(spec.job_id)
        if record is not None:
            record.state = "running"

    def on_job_migrated(
        self, time: float, spec: JobSpec, old_nodes: Any, allocation: Any
    ) -> None:
        self._metrics.migrations += 1

    def on_job_preempted(self, time: float, spec: JobSpec) -> None:
        self._metrics.preemptions += 1
        record = self._record(spec.job_id)
        if record is not None:
            record.state = "paused"

    def on_job_completed(self, time: float, spec: JobSpec) -> None:
        self._metrics.completions += 1
        self._metrics.observe_jct(
            max(0.0, time - spec.submit_time), spec.execution_time
        )
        record = self._record(spec.job_id)
        if record is not None:
            record.state = "completed"
            record.completion_time = time
        if self._on_terminal is not None:
            self._on_terminal(spec.job_id)


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of one :meth:`SchedulerService.replay` load-test run."""

    algorithm: str
    clock: str
    acceleration: Optional[float]
    #: Jobs offered by the source, and their admission outcomes.
    submitted: int
    accepted: int
    rejected: int
    shed: int
    #: Placement actions applied (starts + resumes + migrations).
    placements: int
    completions: int
    #: Simulated span of the run (result makespan).
    sim_seconds: float
    #: Real time the replay took.
    wall_seconds: float
    placements_per_wall_sec: float
    queue_latency: Dict[str, float] = field(default_factory=dict)
    #: JCT (submission → completion) quantiles, same shape as queue_latency.
    jct: Dict[str, float] = field(default_factory=dict)
    #: SLO attainment over completions (deadline = slo_factor × runtime).
    slo_factor: float = 10.0
    slo_attained: int = 0
    slo_attainment: float = 1.0
    #: Final Prometheus text page, when the service ran with telemetry
    #: enabled (``repro-dfrs loadtest --prom-out`` writes this to disk).
    prometheus: Optional[str] = None
    #: Full engine results (records or streamed stats, costs, makespan).
    result: Optional[SimulationResult] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (what ``repro-dfrs loadtest`` prints)."""
        return {
            "algorithm": self.algorithm,
            "clock": self.clock,
            "acceleration": self.acceleration,
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "shed": self.shed,
            "placements": self.placements,
            "completions": self.completions,
            "sim_seconds": self.sim_seconds,
            "wall_seconds": self.wall_seconds,
            "placements_per_wall_sec": self.placements_per_wall_sec,
            "queue_latency": dict(self.queue_latency),
            "jct": dict(self.jct),
            "slo_factor": self.slo_factor,
            "slo_attained": self.slo_attained,
            "slo_attainment": self.slo_attainment,
        }


class SchedulerService:
    """One scheduler + one platform, driven as an online service.

    Parameters
    ----------
    cluster:
        The platform to schedule onto.
    scheduler:
        A scheduler instance, or an algorithm name resolved through
        :func:`repro.schedulers.create_scheduler` (``"dynmcb8-asap-per-600"``).
    config:
        Engine configuration; defaults to :class:`SimulationConfig`'s
        defaults.
    admission:
        An :class:`~repro.serve.admission.AdmissionPolicy`, its spec
        dictionary, or None for ``accept-all``.
    relative_error:
        Accuracy of the queue-latency and JCT quantile sketches.
    slo_factor:
        SLO deadline multiplier: a job attains its SLO iff it completes
        within ``slo_factor`` × its nominal runtime of submission (drives
        the ``slo_*`` snapshot fields and Prometheus series).
    ledger_limit:
        Terminal job records kept for ``status`` queries (live mode); the
        oldest are forgotten beyond this, keeping service memory bounded.
    observers:
        Extra :class:`~repro.core.observers.SimulationObserver` instances
        attached to the engine (e.g. a
        :class:`~repro.serve.loadtest.PlacementLogObserver`).
    telemetry:
        A live :class:`~repro.obs.telemetry.Telemetry` sink, a telemetry
        spec dict (``{"type": "stats"}``), or None (the default: fully
        uninstrumented).  The service shares the sink with its engine, so
        ``prometheus_text()`` and the ``metrics-prom`` protocol op expose
        engine phase timings alongside the service counters.  Overrides
        ``config.telemetry`` when both are given.

    A service instance runs once: either one :meth:`replay` or one
    :meth:`start` … :meth:`shutdown` live session.
    """

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Any,
        *,
        config: Optional[SimulationConfig] = None,
        admission: Optional[Union[AdmissionPolicy, Mapping[str, Any]]] = None,
        relative_error: float = DEFAULT_RELATIVE_ERROR,
        slo_factor: float = 10.0,
        ledger_limit: int = 10_000,
        observers: Optional[List[SimulationObserver]] = None,
        telemetry: Optional[Union[Telemetry, Mapping[str, Any]]] = None,
    ) -> None:
        if ledger_limit < 1:
            raise ConfigurationError(f"ledger_limit must be >= 1, got {ledger_limit}")
        self.cluster = cluster
        self.scheduler = (
            create_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
        )
        self.config = config or SimulationConfig()
        self.telemetry: Optional[Telemetry] = as_telemetry(
            telemetry if telemetry is not None else self.config.telemetry
        )
        if self.telemetry is not None:
            # Share one live sink between the service and its engine so a
            # single Prometheus page covers both layers.
            self.config = replace(self.config, telemetry=self.telemetry)
        if isinstance(admission, AdmissionPolicy):
            self.admission: AdmissionPolicy = admission
        elif admission is None:
            self.admission = AcceptAllPolicy()
        else:
            self.admission = admission_policy_from_dict(admission)
        self.metrics = ServiceMetrics(
            relative_error=relative_error, slo_factor=slo_factor
        )
        self._extra_observers: List[SimulationObserver] = list(observers or [])
        self._ledger_limit = ledger_limit
        self._ledger: Dict[int, ServiceJobRecord] = {}
        self._terminal_order: List[int] = []
        self._total_cpu_capacity = sum(
            cluster.cpu_capacity(node) for node in range(cluster.num_nodes)
        )
        #: "idle" → "replaying" | "live" → "closed"; one run per instance.
        self._state = "idle"
        self._engine: Optional[Simulator] = None
        self._clock: Clock = SimulatedClock()
        self._wall_anchor: Optional[float] = None
        # Live-mode asyncio machinery (created by ``start``).
        self._wake: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None
        self._driver: Optional["asyncio.Task[None]"] = None
        self._stopping = False
        self._next_job_id = 0
        self._last_submit_time = -math.inf

    # ------------------------------------------------------------ shared bits --
    def _service_load(self, submit_time: float) -> ServiceLoad:
        assert self._engine is not None
        snapshot = self._engine.load_snapshot()
        return ServiceLoad(
            time=submit_time,
            pending_jobs=snapshot.pending_jobs,
            running_jobs=snapshot.running_jobs,
            active_jobs=snapshot.active_jobs,
            offered_cpu_load=(
                snapshot.total_cpu_need / self._total_cpu_capacity
                if self._total_cpu_capacity > 0.0
                else 0.0
            ),
            oldest_pending_job_id=snapshot.oldest_pending_job_id,
        )

    def _note_terminal(self, job_id: int) -> None:
        """Trim the ledger so long-lived services keep bounded memory."""
        if job_id not in self._ledger:
            return
        self._terminal_order.append(job_id)
        while len(self._terminal_order) > self._ledger_limit:
            oldest = self._terminal_order.pop(0)
            self._ledger.pop(oldest, None)

    def _shed(self, job_ids: Any, reason: str) -> None:
        assert self._engine is not None
        for victim in job_ids:
            if self._engine.online_cancel(victim):
                self.metrics.shed += 1
                record = self._ledger.get(victim)
                if record is not None:
                    record.state = "shed"
                    record.reason = reason
                    self._note_terminal(victim)

    def wall_seconds(self) -> float:
        """Real seconds since the run started (0.0 before it starts)."""
        if self._wall_anchor is None:
            return 0.0
        return time.perf_counter() - self._wall_anchor

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Current metrics as a JSON-ready dictionary.

        With telemetry enabled the snapshot grows a ``"telemetry"`` summary
        (engine phase timings, counters, gauges); uninstrumented services
        emit exactly the historical payload.
        """
        sim_time = self._engine.online_now() if self._engine is not None else 0.0
        snapshot = self.metrics.snapshot(sim_time, self.wall_seconds())
        # Instantaneous backlog: what an operator's queue-depth ceiling (the
        # soak harness's included) watches.
        snapshot["queue_depth"] = (
            self._engine.load_snapshot().pending_jobs
            if self._engine is not None
            else 0
        )
        if self.telemetry is not None:
            snapshot["telemetry"] = self.telemetry.summary()
        return snapshot

    def prometheus_text(self) -> str:
        """Current metrics in Prometheus text exposition format (0.0.4).

        Service counters and queue-latency quantiles become
        ``repro_serve_*`` samples; when telemetry is enabled, engine phase
        timings and counters are appended as ``repro_telemetry_*`` samples.
        Served over the JSON-lines protocol as the ``metrics-prom`` op.
        """
        # Render from the full snapshot (not the bare metrics one) so the
        # derived gauges — queue_depth above all — appear in the page too.
        return render_prometheus(self.metrics_snapshot(), telemetry=self.telemetry)

    # ---------------------------------------------------------------- replay --
    def replay(
        self,
        source: JobSource,
        *,
        acceleration: Optional[float] = None,
        keep_result: bool = True,
    ) -> ReplayReport:
        """Replay a trace through the service and report throughput.

        ``acceleration`` of ``None`` replays as fast as the CPU allows (a
        :class:`SimulatedClock` — the max-throughput load test); a number is
        simulated seconds per wall second under a :class:`WallClock`
        (``1.0`` = real time).  Admission filters the stream *before* the
        engine sees it; with ``accept-all`` the engine consumes exactly the
        source stream, so placements are byte-identical to ``run_stream``.
        """
        if self._state != "idle":
            raise ReproError(f"service already used (state={self._state!r})")
        self._state = "replaying"
        self._clock = (
            SimulatedClock() if acceleration is None else WallClock(acceleration)
        )
        observer = _ServiceObserver(self.metrics, ledger=None)
        self._engine = Simulator(
            self.cluster,
            self.scheduler,
            self.config,
            observers=[observer] + self._extra_observers,
            clock=self._clock,
        )
        self.admission.reset()
        self._wall_anchor = time.perf_counter()
        try:
            result = self._engine.run_stream(self._admission_filtered(source))
        finally:
            wall = self.wall_seconds()
            self._state = "closed"
        snapshot = self.metrics.snapshot(result.makespan, wall)
        return ReplayReport(
            algorithm=result.algorithm,
            clock=self._clock.kind,
            acceleration=acceleration,
            submitted=self.metrics.submitted,
            accepted=self.metrics.accepted,
            rejected=self.metrics.rejected,
            shed=self.metrics.shed,
            placements=self.metrics.placements,
            completions=self.metrics.completions,
            sim_seconds=float(result.makespan),
            wall_seconds=wall,
            placements_per_wall_sec=float(snapshot["placements_per_wall_sec"]),
            queue_latency=dict(snapshot["queue_latency"]),
            jct=dict(snapshot["jct"]),
            slo_factor=float(snapshot["slo_factor"]),
            slo_attained=int(snapshot["slo_attained"]),
            slo_attainment=float(snapshot["slo_attainment"]),
            prometheus=(
                render_prometheus(snapshot, telemetry=self.telemetry)
                if self.telemetry is not None
                else None
            ),
            result=result if keep_result else None,
        )

    def _admission_filtered(self, source: JobSource) -> Any:
        """Generator applying the admission policy to the source stream.

        The engine pulls this lazily (one spec ahead of simulated time), so
        each decision sees the engine load as of the previous arrival — the
        intake-time decision point.  ``load.time`` is the spec's submission
        instant, keeping stateful policies (token bucket) deterministic.
        """
        engine = self._engine
        assert engine is not None
        for spec in source.jobs(self.cluster):
            self.metrics.submitted += 1
            decision = self.admission.admit(spec, self._service_load(spec.submit_time))
            if not decision.accepted:
                self.metrics.rejected += 1
                continue
            if decision.shed_job_ids:
                self._shed(decision.shed_job_ids, decision.reason)
            self.metrics.accepted += 1
            yield spec

    # ------------------------------------------------------------------ live --
    async def start(
        self, *, clock: Optional[Clock] = None, start_time: float = 0.0
    ) -> None:
        """Begin a live session: spawn the asyncio event-loop driver.

        ``clock`` paces the engine (default: real-time :class:`WallClock`);
        submissions are stamped with the clock reading, so simulated time
        tracks the clock.  Tests inject a :class:`SimulatedClock` and pass
        explicit submit times for full determinism.
        """
        if self._state != "idle":
            raise ReproError(f"service already used (state={self._state!r})")
        self._state = "live"
        self._clock = clock if clock is not None else WallClock(1.0)
        observer = _ServiceObserver(
            self.metrics, ledger=self._ledger, on_terminal=self._note_terminal
        )
        self._engine = Simulator(
            self.cluster,
            self.scheduler,
            self.config,
            observers=[observer] + self._extra_observers,
            # The driver paces with ``self._clock``; the engine itself must
            # not block inside ``_step``.
            clock=SimulatedClock(),
        )
        self.admission.reset()
        self._clock.start(start_time)
        self._engine.online_begin(start_time)
        self._last_submit_time = start_time
        self._wall_anchor = time.perf_counter()
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._stopping = False
        self._driver = asyncio.get_running_loop().create_task(self._drive())

    async def _drive(self) -> None:
        """Step the engine whenever its next event comes due on the clock."""
        engine = self._engine
        assert engine is not None and self._wake is not None and self._idle is not None
        while not self._stopping:
            next_time = engine.online_next_event_time()
            if math.isinf(next_time):
                # Nothing scheduled: sleep until a submission/cancel wakes us.
                self._idle.set()
                await self._wake.wait()
                self._wake.clear()
                continue
            self._idle.clear()
            delay = self._clock.wall_seconds_until(next_time)
            if delay > 0.0:
                # Interruptible wait: an earlier submission re-evaluates.
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=delay)
                    self._wake.clear()
                    continue
                except asyncio.TimeoutError:
                    pass
            engine.online_step()
            # Yield so submissions queued behind a burst of due events land.
            await asyncio.sleep(0)
        self._idle.set()

    def _require_live(self) -> Simulator:
        if self._state != "live" or self._engine is None:
            raise ReproError(f"service is not live (state={self._state!r})")
        return self._engine

    async def submit(
        self,
        *,
        num_tasks: int,
        cpu_need: float,
        mem_requirement: float,
        execution_time: float,
        job_id: Optional[int] = None,
        submit_time: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Admit one job; returns ``{"job_id", "accepted", "reason"}``.

        ``job_id`` defaults to a service-assigned sequential id;
        ``submit_time`` defaults to the service clock's reading and is
        clamped so engine time never goes backwards.
        """
        engine = self._require_live()
        if job_id is None:
            job_id = self._next_job_id
        self._next_job_id = max(self._next_job_id, job_id) + 1
        when = self._clock.now() if submit_time is None else submit_time
        when = max(when, engine.online_now(), self._last_submit_time)
        self.metrics.submitted += 1
        try:
            spec = JobSpec(
                job_id=job_id,
                submit_time=when,
                num_tasks=num_tasks,
                cpu_need=cpu_need,
                mem_requirement=mem_requirement,
                execution_time=execution_time,
            )
        except ReproError as error:
            self.metrics.rejected += 1
            return {"job_id": job_id, "accepted": False, "reason": str(error)}
        decision = self.admission.admit(spec, self._service_load(when))
        record = ServiceJobRecord(job_id=job_id, submit_time=when)
        if not decision.accepted:
            self.metrics.rejected += 1
            record.state = "rejected"
            record.reason = decision.reason
            self._ledger[job_id] = record
            self._note_terminal(job_id)
            return {"job_id": job_id, "accepted": False, "reason": decision.reason}
        if decision.shed_job_ids:
            self._shed(decision.shed_job_ids, decision.reason)
        try:
            engine.online_submit(spec)
        except SimulationError as error:
            # Permanently infeasible jobs (too wide/heavy for the platform)
            # are turned away rather than crashing the service.
            self.metrics.rejected += 1
            record.state = "rejected"
            record.reason = str(error)
            self._ledger[job_id] = record
            self._note_terminal(job_id)
            return {"job_id": job_id, "accepted": False, "reason": str(error)}
        self.metrics.accepted += 1
        self._last_submit_time = when
        self._ledger[job_id] = record
        assert self._wake is not None and self._idle is not None
        # Mark the service busy *now*: a drain() issued right after this
        # submit must not observe the stale idle flag before the driver task
        # has had a chance to run and clear it.
        self._idle.clear()
        self._wake.set()
        return {"job_id": job_id, "accepted": True, "reason": ""}

    async def status(self, job_id: int) -> Dict[str, Any]:
        """Ledger view of one job (``state: "unknown"`` if never seen/trimmed)."""
        self._require_live()
        record = self._ledger.get(job_id)
        if record is None:
            return {"job_id": job_id, "state": "unknown"}
        return record.to_dict()

    async def cancel(self, job_id: int) -> Dict[str, Any]:
        """Withdraw a job; returns ``{"job_id", "cancelled"}``."""
        engine = self._require_live()
        removed = engine.online_cancel(job_id)
        if removed:
            self.metrics.cancelled += 1
            record = self._ledger.get(job_id)
            if record is not None:
                record.state = "cancelled"
                self._note_terminal(job_id)
            assert self._wake is not None
            self._wake.set()
        return {"job_id": job_id, "cancelled": removed}

    async def drain(self) -> None:
        """Wait until every admitted job has completed (engine idle)."""
        self._require_live()
        assert self._idle is not None
        await self._idle.wait()

    async def shutdown(self) -> SimulationResult:
        """Stop the driver and return the results accumulated so far."""
        engine = self._require_live()
        self._stopping = True
        assert self._wake is not None and self._driver is not None
        self._wake.set()
        await self._driver
        self._state = "closed"
        return engine.online_finalize()
