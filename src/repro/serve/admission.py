"""Admission-control policies for the online serving layer.

Under overload a service must decide *before* the scheduler ever sees a job
whether to take it at all.  An :class:`AdmissionPolicy` is a pure decision
function ``(spec, load) -> AdmissionDecision`` evaluated at submission time
against a :class:`ServiceLoad` snapshot; it never mutates service or engine
state.  Policies follow the project's registered-component pattern (see
``repro/traces/source.py`` and CONTRIBUTING.md): a stable ``kind``,
canonical ``to_dict``/``from_dict`` through :func:`admission_policy_from_dict`,
and REG601/registry-completeness coverage for free.

The built-in family:

* ``accept-all`` — the transparent default; byte-identical replay.
* ``bounded-queue`` — cap the number of *pending* (admitted, never started)
  jobs; ``mode="reject"`` turns new arrivals away, ``mode="shed"`` admits
  them and sheds the oldest pending job instead (newest-wins).
* ``load-threshold`` — reject while the offered CPU load (active demand over
  cluster capacity) is at or above a threshold.
* ``token-bucket`` — classic rate limiter over *simulated* time: sustained
  ``rate`` admissions/second with bursts up to ``burst``.

Policies with internal state (the token bucket) expose :meth:`reset`; the
service calls it once per run so replays are reproducible.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..core.job import JobSpec
from ..exceptions import ConfigurationError

__all__ = [
    "ServiceLoad",
    "AdmissionDecision",
    "AdmissionPolicy",
    "AcceptAllPolicy",
    "BoundedQueuePolicy",
    "LoadThresholdPolicy",
    "TokenBucketPolicy",
    "register_admission_policy",
    "admission_policy_from_dict",
    "available_admission_policies",
]


@dataclass(frozen=True)
class ServiceLoad:
    """Snapshot of the service state a policy may consult.

    Built by the service at each submission; policies must treat it as
    read-only and derive decisions from it alone (plus their own state), so
    admission is a deterministic function of the submission stream.
    """

    #: Simulated time of the submission.
    time: float
    #: Jobs admitted but never yet started (the scheduler's backlog).
    pending_jobs: int
    #: Jobs currently holding an allocation.
    running_jobs: int
    #: All live jobs (pending + running + paused).
    active_jobs: int
    #: Total CPU demand of live jobs over total cluster CPU capacity.
    offered_cpu_load: float
    #: Oldest pending job (by submit time, then id); the shed victim.
    oldest_pending_job_id: Optional[int] = None


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    accepted: bool
    #: Short machine-readable cause (``"queue-full"``, ``"rate-limited"``…).
    reason: str = ""
    #: Already-admitted jobs the service must cancel to make room (shed).
    shed_job_ids: Tuple[int, ...] = ()


class AdmissionPolicy(abc.ABC):
    """Decide, per submission, whether the service takes the job."""

    kind: str = "abstract"
    #: False for programmatic-only policies exempt from the registry
    #: contract (mirrors :class:`repro.traces.JobSource`).
    spec_expressible: bool = True

    @abc.abstractmethod
    def admit(self, spec: JobSpec, load: ServiceLoad) -> AdmissionDecision:
        """Evaluate one submission against the current load."""

    def reset(self) -> None:
        """Clear per-run state (stateful policies override)."""

    def to_dict(self) -> Dict[str, Any]:
        """Canonical spec dictionary (with a ``type`` field)."""
        raise NotImplementedError


# --------------------------------------------------------------------------- #
# Registry                                                                     #
# --------------------------------------------------------------------------- #
_ADMISSION_POLICY_TYPES: Dict[str, Callable[..., AdmissionPolicy]] = {}


def register_admission_policy(
    kind: str, factory: Callable[..., AdmissionPolicy]
) -> None:
    """Register a policy type under its spec ``type`` name."""
    if kind in _ADMISSION_POLICY_TYPES:
        raise ConfigurationError(f"admission policy type {kind!r} already registered")
    _ADMISSION_POLICY_TYPES[kind] = factory


def available_admission_policies() -> List[str]:
    """Registered spec-expressible policy type names, sorted."""
    return sorted(_ADMISSION_POLICY_TYPES)


def admission_policy_from_dict(data: Mapping[str, Any]) -> AdmissionPolicy:
    """Build a policy from its spec dictionary (inverse of ``to_dict``)."""
    payload = dict(data)
    kind = payload.pop("type", None)
    if kind is None:
        raise ConfigurationError("admission policy spec needs a 'type' field")
    try:
        factory = _ADMISSION_POLICY_TYPES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown admission policy type {kind!r}; known types: "
            f"{', '.join(available_admission_policies())}"
        ) from None
    try:
        return factory(**payload)
    except TypeError as error:
        raise ConfigurationError(
            f"invalid options for admission policy {kind!r}: {error}"
        ) from None


# --------------------------------------------------------------------------- #
# Built-in policies                                                            #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class AcceptAllPolicy(AdmissionPolicy):
    """Admit everything — the transparent default.

    With this policy in front, replaying a trace through the service is
    byte-identical to feeding it straight into ``Simulator.run_stream``.
    """

    kind = "accept-all"

    def admit(self, spec: JobSpec, load: ServiceLoad) -> AdmissionDecision:
        return AdmissionDecision(accepted=True)

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind}


@dataclass(frozen=True)
class BoundedQueuePolicy(AdmissionPolicy):
    """Cap the scheduler backlog at ``max_pending`` never-started jobs.

    ``mode="reject"`` refuses the new arrival when the queue is full;
    ``mode="shed"`` admits it and sheds the *oldest* pending job instead
    (newest-wins — fresh work displaces work that has waited longest and is
    the likeliest to miss its latency objective anyway).
    """

    max_pending: int = 64
    mode: str = "reject"

    kind = "bounded-queue"

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.mode not in ("reject", "shed"):
            raise ConfigurationError(
                f"mode must be 'reject' or 'shed', got {self.mode!r}"
            )

    def admit(self, spec: JobSpec, load: ServiceLoad) -> AdmissionDecision:
        if load.pending_jobs < self.max_pending:
            return AdmissionDecision(accepted=True)
        if self.mode == "reject":
            return AdmissionDecision(accepted=False, reason="queue-full")
        victim = load.oldest_pending_job_id
        return AdmissionDecision(
            accepted=True,
            reason="shed-oldest",
            shed_job_ids=(victim,) if victim is not None else (),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "max_pending": self.max_pending, "mode": self.mode}


@dataclass(frozen=True)
class LoadThresholdPolicy(AdmissionPolicy):
    """Reject while the offered CPU load is at or above ``max_load``.

    Offered load is the total CPU need of live jobs over the cluster's total
    CPU capacity — 1.0 means the live demand exactly fills the machine.
    """

    max_load: float = 1.0

    kind = "load-threshold"

    def __post_init__(self) -> None:
        if not (math.isfinite(self.max_load) and self.max_load > 0.0):
            raise ConfigurationError(
                f"max_load must be finite and > 0, got {self.max_load}"
            )

    def admit(self, spec: JobSpec, load: ServiceLoad) -> AdmissionDecision:
        if load.offered_cpu_load >= self.max_load:
            return AdmissionDecision(accepted=False, reason="overload")
        return AdmissionDecision(accepted=True)

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "max_load": self.max_load}


@dataclass
class TokenBucketPolicy(AdmissionPolicy):
    """Token-bucket rate limiter over simulated time.

    The bucket starts full at ``burst`` tokens and refills continuously at
    ``rate`` tokens per simulated second; each admission spends one token.
    Spec fields (``rate``, ``burst``) serialize; bucket state does not — it
    is per-run and cleared by :meth:`reset`, so replays are reproducible.
    """

    rate: float = 1.0
    burst: float = 10.0

    kind = "token-bucket"
    _tokens: float = field(init=False, repr=False, compare=False, default=0.0)
    _last_time: Optional[float] = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        if not (math.isfinite(self.rate) and self.rate > 0.0):
            raise ConfigurationError(f"rate must be finite and > 0, got {self.rate}")
        if not (math.isfinite(self.burst) and self.burst >= 1.0):
            raise ConfigurationError(
                f"burst must be finite and >= 1, got {self.burst}"
            )
        self.reset()

    def reset(self) -> None:
        self._tokens = float(self.burst)
        self._last_time = None

    def admit(self, spec: JobSpec, load: ServiceLoad) -> AdmissionDecision:
        now = load.time
        if self._last_time is not None and now > self._last_time:
            self._tokens = min(
                float(self.burst), self._tokens + (now - self._last_time) * self.rate
            )
        self._last_time = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return AdmissionDecision(accepted=True)
        return AdmissionDecision(accepted=False, reason="rate-limited")

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "rate": self.rate, "burst": self.burst}


register_admission_policy("accept-all", AcceptAllPolicy)
register_admission_policy("bounded-queue", BoundedQueuePolicy)
register_admission_policy("load-threshold", LoadThresholdPolicy)
register_admission_policy("token-bucket", TokenBucketPolicy)
