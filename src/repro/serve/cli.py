"""``repro-dfrs serve`` / ``loadtest`` / ``soak`` — the serving commands.

``serve`` runs a live :class:`~repro.serve.service.SchedulerService` behind
the JSON-lines socket front end until a client sends ``{"op": "shutdown"}``
(or Ctrl-C).  ``loadtest`` replays a trace through the service layer at a
configurable acceleration and prints sustained placements/sec, admission
outcomes, and queue-latency quantiles; ``--bench-json`` writes the same
numbers as the ``BENCH_serve.json`` artifact.  ``soak`` is the long-haul
variant: it runs the full serve stack (live service, real socket, wall
clock) for a wall-time budget while scraping health samples, and asserts
the :mod:`repro.obs.soak` invariants — flat RSS, sustained placement rate,
bounded queue depth.
"""

from __future__ import annotations

import argparse
import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from ..core.clock import WallClock
from ..core.cluster import Cluster
from ..core.engine import SimulationConfig
from ..core.penalties import ReschedulingPenaltyModel
from ..exceptions import ConfigurationError
from .admission import AdmissionPolicy, admission_policy_from_dict
from .loadtest import bench_payload, run_loadtest
from .protocol import ServiceServer
from .service import SchedulerService

__all__ = [
    "add_serve_subparsers",
    "run_serve_command",
    "run_loadtest_command",
    "run_soak_command",
]

_DEFAULT_ALGORITHM = "dynmcb8-asap-per-600"
_DEFAULT_NODES = 64


def add_serve_subparsers(subparsers: "argparse._SubParsersAction") -> None:
    """Wire ``serve`` and ``loadtest`` into the main CLI parser."""
    serve = subparsers.add_parser(
        "serve",
        help="run the scheduler as a live service on a local socket",
    )
    serve.add_argument(
        "--algorithm",
        default=_DEFAULT_ALGORITHM,
        help=f"scheduling algorithm to serve (default {_DEFAULT_ALGORITHM})",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=7077, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--admission",
        default=None,
        help=(
            "admission policy spec: inline JSON "
            "('{\"type\": \"bounded-queue\", \"max_pending\": 32}') or "
            "@file.json; default accept-all"
        ),
    )
    serve.add_argument(
        "--acceleration",
        type=float,
        default=1.0,
        help="simulated seconds per wall second (default 1.0 = real time)",
    )
    serve.add_argument(
        "--slo-factor",
        type=float,
        default=10.0,
        help=(
            "SLO deadline multiplier: a job attains its SLO when it "
            "completes within slo-factor x its nominal runtime (default 10)"
        ),
    )
    serve.add_argument(
        "--telemetry",
        default=None,
        help=(
            "telemetry spec: inline JSON ('{\"type\": \"stats\"}') or "
            "@file.json; instrumented engines include phase timings in "
            "metrics and metrics-prom replies (default off)"
        ),
    )

    loadtest = subparsers.add_parser(
        "loadtest",
        help="replay a trace through the service layer and report throughput",
    )
    loadtest.add_argument(
        "--trace",
        default=None,
        help=(
            "trace to replay: SWF file, internal JSON trace, or trace-source "
            "spec JSON; default is a synthetic Lublin trace"
        ),
    )
    loadtest.add_argument(
        "--algorithm",
        default=_DEFAULT_ALGORITHM,
        help=f"scheduling algorithm under test (default {_DEFAULT_ALGORITHM})",
    )
    loadtest.add_argument(
        "--admission",
        default=None,
        help="admission policy spec (inline JSON or @file.json)",
    )
    loadtest.add_argument(
        "--acceleration",
        type=float,
        default=None,
        help=(
            "simulated seconds per wall second; omit to replay flat out "
            "(max-throughput mode)"
        ),
    )
    loadtest.add_argument(
        "--slo-factor",
        type=float,
        default=10.0,
        help=(
            "SLO deadline multiplier for the slo_attainment report column "
            "(default 10)"
        ),
    )
    loadtest.add_argument(
        "--bench-json",
        default=None,
        help="write the report as a BENCH_serve.json-style artifact here",
    )
    loadtest.add_argument(
        "--prom-out",
        default=None,
        help=(
            "write the final metrics as a Prometheus text page here "
            "(enables stats telemetry: engine phase timings are included)"
        ),
    )

    soak = subparsers.add_parser(
        "soak",
        help=(
            "long-haul soak: run the live serve stack for a wall-time "
            "budget, scrape health samples, assert flat RSS and sustained "
            "throughput"
        ),
    )
    soak.add_argument(
        "--trace",
        default=None,
        help=(
            "trace to feed: SWF file, internal JSON trace, or trace-source "
            "spec JSON; default is a synthetic diurnal Poisson trace"
        ),
    )
    soak.add_argument(
        "--algorithm",
        default=_DEFAULT_ALGORITHM,
        help=f"scheduling algorithm under soak (default {_DEFAULT_ALGORITHM})",
    )
    soak.add_argument(
        "--acceleration",
        type=float,
        default=3600.0,
        help="simulated seconds per wall second (default 3600)",
    )
    soak.add_argument(
        "--wall-seconds",
        type=float,
        default=60.0,
        help="wall-clock feed budget before draining (default 60)",
    )
    soak.add_argument(
        "--scrape-interval",
        type=float,
        default=2.0,
        help="seconds between health scrapes (default 2)",
    )
    soak.add_argument(
        "--slo-factor",
        type=float,
        default=10.0,
        help="SLO deadline multiplier (default 10)",
    )
    soak.add_argument(
        "--max-drain-seconds",
        type=float,
        default=None,
        help=(
            "cap on the post-budget drain; omit to wait for every admitted "
            "job to complete"
        ),
    )
    soak.add_argument(
        "--max-rss-slope",
        type=float,
        default=30.0,
        help="health bound: max RSS growth in MB per minute (default 30)",
    )
    soak.add_argument(
        "--min-placements-per-sec",
        type=float,
        default=1.0,
        help="health floor: min placements per wall second (default 1)",
    )
    soak.add_argument(
        "--max-queue-depth",
        type=int,
        default=10_000,
        help="health ceiling: max instantaneous queue depth (default 10000)",
    )
    soak.add_argument(
        "--health-log",
        default=None,
        help="append one JSON health sample per scrape to this file",
    )
    soak.add_argument(
        "--bench-json",
        default=None,
        help="write the report as a BENCH_soak.json-style artifact here",
    )
    soak.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-scrape progress line",
    )


def _parse_spec_arg(text: Optional[str], flag: str) -> Optional[Dict[str, Any]]:
    """Parse an inline-JSON-or-``@file.json`` spec argument."""
    if text is None:
        return None
    if text.startswith("@"):
        with open(text[1:], "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"{flag} is neither valid JSON nor an @file: {error}"
            ) from None
    assert isinstance(payload, dict)
    return payload


def _parse_admission(text: Optional[str]) -> Optional[AdmissionPolicy]:
    payload = _parse_spec_arg(text, "--admission")
    if payload is None:
        return None
    return admission_policy_from_dict(payload)


def _serve_cluster_config(
    args: argparse.Namespace,
) -> Tuple[Cluster, SimulationConfig]:
    nodes = args.nodes if args.nodes is not None else _DEFAULT_NODES
    cluster = Cluster(nodes, 4, 8.0)
    penalty = args.penalty if args.penalty is not None else 0.0
    config = SimulationConfig(
        penalty_model=ReschedulingPenaltyModel(penalty),
        streaming_metrics=True,
    )
    return cluster, config


async def _serve_async(args: argparse.Namespace) -> int:
    cluster, config = _serve_cluster_config(args)
    service = SchedulerService(
        cluster,
        args.algorithm,
        config=config,
        admission=_parse_admission(args.admission),
        slo_factor=args.slo_factor,
        telemetry=_parse_spec_arg(args.telemetry, "--telemetry"),
    )
    await service.start(clock=WallClock(args.acceleration))
    server = ServiceServer(service, host=args.host, port=args.port)
    host, port = await server.start()
    print(
        f"serving {args.algorithm} on {host}:{port} "
        f"({cluster.num_nodes} nodes, x{args.acceleration:g} clock); "
        'send {"op": "shutdown"} to stop'
    )
    try:
        await server.serve_until_shutdown()
    finally:
        await server.close()
        await service.shutdown()
    snapshot = service.metrics_snapshot()
    print(
        f"served {snapshot['accepted']}/{snapshot['submitted']} jobs "
        f"({snapshot['rejected']} rejected, {snapshot['shed']} shed), "
        f"{snapshot['placements']} placements, "
        f"{snapshot['completions']} completions"
    )
    return 0


def run_serve_command(args: argparse.Namespace) -> int:
    """Entry point of ``repro-dfrs serve``."""
    try:
        return asyncio.run(_serve_async(args))
    except KeyboardInterrupt:
        print("interrupted; shutting down")
        return 0


def _loadtest_source(args: argparse.Namespace) -> Tuple[Any, Cluster]:
    """Resolve the trace under test and the cluster to replay it on."""
    if args.trace is not None:
        # Deferred: repro.cli imports this module at startup; by the time a
        # command runs, the parent module is fully initialized.
        from ..cli import _load_trace_source

        source, default_cluster = _load_trace_source(args.trace)
        if args.nodes is not None:
            return source, Cluster(args.nodes, 4, 8.0)
        return source, default_cluster
    from ..traces.source import LublinTraceSource

    num_jobs = args.num_jobs if args.num_jobs is not None else 10_000
    seed = args.seed if args.seed is not None else 2010
    nodes = args.nodes if args.nodes is not None else _DEFAULT_NODES
    return LublinTraceSource(num_jobs=num_jobs, seed=seed), Cluster(nodes, 4, 8.0)


def _format_report(report_dict: Dict[str, Any]) -> str:
    latency = report_dict["queue_latency"]
    lines = [
        f"algorithm            {report_dict['algorithm']}",
        f"clock                {report_dict['clock']}"
        + (
            f" (x{report_dict['acceleration']:g})"
            if report_dict["acceleration"] is not None
            else ""
        ),
        f"jobs submitted       {report_dict['submitted']}",
        f"jobs accepted        {report_dict['accepted']}",
        f"jobs rejected        {report_dict['rejected']}",
        f"jobs shed            {report_dict['shed']}",
        f"placements           {report_dict['placements']}",
        f"completions          {report_dict['completions']}",
        f"simulated span       {report_dict['sim_seconds']:.1f} s",
        f"wall time            {report_dict['wall_seconds']:.3f} s",
        f"placements/sec       {report_dict['placements_per_wall_sec']:.1f}",
    ]
    if latency:
        lines.append(
            "queue latency        "
            f"p50 {latency['p50']:.1f} s, p90 {latency['p90']:.1f} s, "
            f"p99 {latency['p99']:.1f} s, mean {latency['mean']:.1f} s"
        )
    jct = report_dict["jct"]
    if jct:
        lines.append(
            "jct                  "
            f"p50 {jct['p50']:.1f} s, p90 {jct['p90']:.1f} s, "
            f"p99 {jct['p99']:.1f} s, mean {jct['mean']:.1f} s"
        )
    if report_dict["completions"]:
        lines.append(
            "slo attainment       "
            f"{report_dict['slo_attainment'] * 100.0:.1f}% "
            f"({report_dict['slo_attained']}/{report_dict['completions']} "
            f"within {report_dict['slo_factor']:g}x runtime)"
        )
    return "\n".join(lines)


def run_loadtest_command(args: argparse.Namespace) -> int:
    """Entry point of ``repro-dfrs loadtest``."""
    source, cluster = _loadtest_source(args)
    penalty = args.penalty if args.penalty is not None else 0.0
    config = SimulationConfig(
        penalty_model=ReschedulingPenaltyModel(penalty),
        streaming_metrics=True,
    )
    report = run_loadtest(
        cluster,
        args.algorithm,
        source,
        acceleration=args.acceleration,
        admission=_parse_admission(args.admission),
        config=config,
        slo_factor=args.slo_factor,
        telemetry=({"type": "stats"} if args.prom_out is not None else None),
    )
    print(_format_report(report.to_dict()))
    if args.prom_out is not None and report.prometheus is not None:
        with open(args.prom_out, "w", encoding="utf-8") as handle:
            handle.write(report.prometheus)
        print(f"wrote {args.prom_out}")
    if args.bench_json is not None:
        workload = args.trace if args.trace is not None else "lublin-synthetic"
        payload = bench_payload(
            report, workload=workload, nodes=cluster.num_nodes
        )
        with open(args.bench_json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.bench_json}")
    return 0


def _soak_source(args: argparse.Namespace) -> Tuple[Any, Cluster]:
    """Resolve the soak trace; default is an effectively endless diurnal feed."""
    if args.trace is not None:
        from ..cli import _load_trace_source

        source, default_cluster = _load_trace_source(args.trace)
        if args.nodes is not None:
            return source, Cluster(args.nodes, 4, 8.0)
        return source, default_cluster
    from ..traces.generators import DiurnalPoissonTraceSource

    num_jobs = args.num_jobs if args.num_jobs is not None else 100_000
    seed = args.seed if args.seed is not None else 2010
    nodes = args.nodes if args.nodes is not None else _DEFAULT_NODES
    source = DiurnalPoissonTraceSource(num_jobs=num_jobs, seed=seed)
    return source, Cluster(nodes, 4, 8.0)


def run_soak_command(args: argparse.Namespace) -> int:
    """Entry point of ``repro-dfrs soak``."""
    from ..obs.soak import SoakConfig, run_soak

    source, cluster = _soak_source(args)
    penalty = args.penalty if args.penalty is not None else 0.0
    engine_config = SimulationConfig(
        penalty_model=ReschedulingPenaltyModel(penalty),
        streaming_metrics=True,
    )
    soak_config = SoakConfig(
        acceleration=args.acceleration,
        wall_seconds=args.wall_seconds,
        scrape_interval_seconds=args.scrape_interval,
        max_drain_seconds=args.max_drain_seconds,
        max_rss_slope_mb_per_min=args.max_rss_slope,
        min_placements_per_sec=args.min_placements_per_sec,
        max_queue_depth=args.max_queue_depth,
        slo_factor=args.slo_factor,
    )

    def _progress(sample: Dict[str, Any]) -> None:
        rss = sample["rss_mb"]
        rss_text = f"{rss:.1f}MB" if rss is not None else "n/a"
        print(
            f"  t={sample['wall_seconds']:6.1f}s "
            f"sim={sample['sim_time']:.0f}s "
            f"queue={sample['queue_depth']} "
            f"placed={sample['placements']} "
            f"done={sample['completions']} "
            f"rss={rss_text}"
        )

    print(
        f"soaking {args.algorithm} on {cluster.num_nodes} nodes "
        f"(x{args.acceleration:g} clock, {args.wall_seconds:g}s wall budget)"
    )
    report = run_soak(
        cluster,
        args.algorithm,
        source,
        config=soak_config,
        engine_config=engine_config,
        health_log=args.health_log,
        on_sample=None if args.quiet else _progress,
    )
    print(
        f"soaked {report.sim_seconds:.0f} simulated seconds in "
        f"{report.wall_seconds:.1f}s wall: {report.submitted} submitted, "
        f"{report.placements} placements "
        f"({report.placements_per_wall_sec:.1f}/s), "
        f"{report.completions} completions, "
        f"slo attainment {report.slo_attainment * 100.0:.1f}%"
    )
    print(
        f"rss slope {report.rss_slope_mb_per_min:+.2f} MB/min, "
        f"max queue depth {report.max_queue_depth_seen}, "
        f"{len(report.samples)} health samples"
    )
    if not report.drained:
        print("note: drain capped by --max-drain-seconds; tail jobs cut off")
    if args.bench_json is not None:
        with open(args.bench_json, "w", encoding="utf-8") as handle:
            json.dump(report.bench_payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.bench_json}")
    if not report.healthy:
        for violation in report.violations:
            print(f"UNHEALTHY: {violation}")
        return 1
    print("healthy: all soak invariants held")
    return 0
