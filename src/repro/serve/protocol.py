"""JSON-lines socket front end for :class:`~repro.serve.service.SchedulerService`.

One request per line, one response per line, UTF-8 JSON.  The envelope is
``{"ok": true, ...payload}`` on success and ``{"ok": false, "error": msg}``
on failure — a malformed request never kills the connection, let alone the
service.  Operations:

========================  ====================================================
``{"op": "submit", "job": {...}}``   admit a job (``num_tasks``, ``cpu_need``,
                                     ``mem_requirement``, ``execution_time``,
                                     optional ``job_id``/``submit_time``)
``{"op": "status", "job_id": N}``    ledger view of one job
``{"op": "cancel", "job_id": N}``    withdraw a job
``{"op": "metrics"}``                one metrics snapshot (counters, latency
                                     quantiles, mergeable accumulator bundle)
``{"op": "metrics-prom"}``           the same metrics in Prometheus text
                                     exposition format (plus engine phase
                                     timings when telemetry is enabled)
``{"op": "stream-metrics", "interval": s, "count": n}``
                                     ``n`` snapshot lines, ``s`` seconds apart
                                     — the live metrics stream
``{"op": "drain"}``                  block until every admitted job completed
``{"op": "ping"}``                   liveness check
``{"op": "shutdown"}``               stop accepting work and close the server
========================  ====================================================

The transport is a local TCP socket (``127.0.0.1`` by default, ephemeral
port when ``port=0``) so clients need nothing but a socket and a JSON
encoder — see ``tests/serve/test_service.py`` for a minimal client.  The
soak harness (:mod:`repro.obs.soak`) is the canonical long-lived client:
it scrapes ``metrics`` and ``metrics-prom`` over this protocol for the
whole run, so a soak passing also certifies the socket front end under
sustained load.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Mapping, Optional, Tuple

from ..exceptions import ReproError
from ..obs.prometheus import PROMETHEUS_CONTENT_TYPE
from ..obs.tracing import trace_span
from .service import SchedulerService

__all__ = ["ServiceServer"]

#: Cap on one request line (1 MiB) — a runaway client cannot balloon memory.
_MAX_LINE_BYTES = 1 << 20


class ServiceServer:
    """Serve a :class:`SchedulerService` over a local JSON-lines socket."""

    def __init__(
        self,
        service: SchedulerService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._closed = asyncio.Event()

    @property
    def address(self) -> Tuple[str, int]:
        """Actual ``(host, port)`` once started (resolves ``port=0``)."""
        if self._server is None or not self._server.sockets:
            raise ReproError("server is not running")
        host, port = self._server.sockets[0].getsockname()[:2]
        return str(host), int(port)

    async def start(self) -> Tuple[str, int]:
        """Bind the socket and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            limit=_MAX_LINE_BYTES,
        )
        return self.address

    async def serve_until_shutdown(self) -> None:
        """Block until a client issues ``{"op": "shutdown"}`` (or `close`)."""
        await self._closed.wait()

    async def close(self) -> None:
        """Stop accepting connections and release the socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._closed.set()

    # ------------------------------------------------------------- plumbing --
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._closed.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, {"ok": False, "error": "line too long"})
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                stop = await self._dispatch_line(text, writer)
                if stop:
                    break
        finally:
            writer.close()

    async def _dispatch_line(
        self, text: str, writer: asyncio.StreamWriter
    ) -> bool:
        """Handle one request line; True when the connection should close."""
        try:
            request = json.loads(text)
        except json.JSONDecodeError as error:
            await self._send(writer, {"ok": False, "error": f"invalid json: {error}"})
            return False
        if not isinstance(request, dict):
            await self._send(
                writer, {"ok": False, "error": "request must be a json object"}
            )
            return False
        op = request.get("op")
        with trace_span(f"serve.request.{op}", self.service.telemetry):
            return await self._dispatch_op(op, request, writer)

    async def _dispatch_op(
        self, op: Any, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> bool:
        try:
            if op == "submit":
                return await self._op_submit(request, writer)
            if op == "status":
                return await self._op_status(request, writer)
            if op == "cancel":
                return await self._op_cancel(request, writer)
            if op == "metrics":
                await self._send(
                    writer, {"ok": True, "metrics": self.service.metrics_snapshot()}
                )
                return False
            if op == "metrics-prom":
                await self._send(
                    writer,
                    {
                        "ok": True,
                        "content_type": PROMETHEUS_CONTENT_TYPE,
                        "prom": self.service.prometheus_text(),
                    },
                )
                return False
            if op == "stream-metrics":
                return await self._op_stream_metrics(request, writer)
            if op == "drain":
                await self.service.drain()
                await self._send(writer, {"ok": True, "drained": True})
                return False
            if op == "ping":
                await self._send(writer, {"ok": True, "pong": True})
                return False
            if op == "shutdown":
                await self._send(
                    writer, {"ok": True, "metrics": self.service.metrics_snapshot()}
                )
                self._closed.set()
                return True
            await self._send(writer, {"ok": False, "error": f"unknown op {op!r}"})
            return False
        except ReproError as error:
            await self._send(writer, {"ok": False, "error": str(error)})
            return False

    async def _op_submit(
        self, request: Mapping[str, Any], writer: asyncio.StreamWriter
    ) -> bool:
        job = request.get("job")
        if not isinstance(job, dict):
            await self._send(
                writer, {"ok": False, "error": "submit needs a 'job' object"}
            )
            return False
        try:
            outcome = await self.service.submit(
                num_tasks=int(job["num_tasks"]),
                cpu_need=float(job["cpu_need"]),
                mem_requirement=float(job["mem_requirement"]),
                execution_time=float(job["execution_time"]),
                job_id=(int(job["job_id"]) if "job_id" in job else None),
                submit_time=(
                    float(job["submit_time"]) if "submit_time" in job else None
                ),
            )
        except (KeyError, TypeError, ValueError) as error:
            await self._send(
                writer, {"ok": False, "error": f"bad job fields: {error!r}"}
            )
            return False
        await self._send(writer, {"ok": True, **outcome})
        return False

    async def _op_status(
        self, request: Mapping[str, Any], writer: asyncio.StreamWriter
    ) -> bool:
        job_id = request.get("job_id")
        if not isinstance(job_id, int):
            await self._send(
                writer, {"ok": False, "error": "status needs an integer 'job_id'"}
            )
            return False
        await self._send(writer, {"ok": True, **await self.service.status(job_id)})
        return False

    async def _op_cancel(
        self, request: Mapping[str, Any], writer: asyncio.StreamWriter
    ) -> bool:
        job_id = request.get("job_id")
        if not isinstance(job_id, int):
            await self._send(
                writer, {"ok": False, "error": "cancel needs an integer 'job_id'"}
            )
            return False
        await self._send(writer, {"ok": True, **await self.service.cancel(job_id)})
        return False

    async def _op_stream_metrics(
        self, request: Mapping[str, Any], writer: asyncio.StreamWriter
    ) -> bool:
        try:
            count = int(request.get("count", 1))
            interval = float(request.get("interval", 1.0))
        except (TypeError, ValueError) as error:
            await self._send(writer, {"ok": False, "error": f"bad fields: {error!r}"})
            return False
        if count < 1 or interval < 0.0:
            await self._send(
                writer,
                {"ok": False, "error": "need count >= 1 and interval >= 0"},
            )
            return False
        for index in range(count):
            await self._send(
                writer,
                {
                    "ok": True,
                    "sequence": index,
                    "metrics": self.service.metrics_snapshot(),
                },
            )
            if index + 1 < count:
                await asyncio.sleep(interval)
        return False

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, payload: Dict[str, Any]) -> None:
        writer.write((json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"))
        await writer.drain()
