"""`repro.serve` — the scheduler core as an online service.

The simulator and the service are two drivers of one scheduler core,
differing only in their clock (the ROADMAP's "one scheduler core, two
clocks" decomposition):

* :class:`~repro.core.clock.SimulatedClock` — discrete-event campaigns,
  exactly as before;
* :class:`~repro.core.clock.WallClock` — real-time (optionally accelerated)
  serving and trace replay.

Pieces:

* :mod:`~repro.serve.admission` — the admission-policy ``type`` registry
  (``accept-all``, ``bounded-queue``, ``load-threshold``, ``token-bucket``);
* :mod:`~repro.serve.service` — :class:`SchedulerService`: asyncio
  submit/status/cancel driving the engine's online stepping API, plus the
  synchronous accelerated-replay mode used for load testing;
* :mod:`~repro.serve.protocol` — the JSON-lines local-socket front end with
  the live streaming-metrics endpoint;
* :mod:`~repro.serve.loadtest` — ``repro-dfrs loadtest``: trace replay at a
  configurable acceleration, reporting sustained placements/sec and
  queue-latency quantiles (the ``BENCH_serve.json`` numbers).

The replay path is pinned byte-identical to ``Simulator.run_stream``
(``tests/serve/test_replay_determinism.py``): the serving layer changes when
decisions happen in wall time, never what they are in simulated time.
"""

from ..core.clock import Clock, SimulatedClock, WallClock
from .admission import (
    AcceptAllPolicy,
    AdmissionDecision,
    AdmissionPolicy,
    BoundedQueuePolicy,
    LoadThresholdPolicy,
    ServiceLoad,
    TokenBucketPolicy,
    admission_policy_from_dict,
    available_admission_policies,
    register_admission_policy,
)
from .loadtest import PlacementLogObserver, bench_payload, peak_rss_mb, run_loadtest
from .protocol import ServiceServer
from .service import ReplayReport, SchedulerService, ServiceJobRecord, ServiceMetrics

__all__ = [
    "Clock",
    "SimulatedClock",
    "WallClock",
    "AdmissionPolicy",
    "AdmissionDecision",
    "ServiceLoad",
    "AcceptAllPolicy",
    "BoundedQueuePolicy",
    "LoadThresholdPolicy",
    "TokenBucketPolicy",
    "register_admission_policy",
    "admission_policy_from_dict",
    "available_admission_policies",
    "SchedulerService",
    "ServiceMetrics",
    "ServiceJobRecord",
    "ReplayReport",
    "ServiceServer",
    "PlacementLogObserver",
    "run_loadtest",
    "bench_payload",
    "peak_rss_mb",
]
