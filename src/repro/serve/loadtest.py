"""Trace-replay load testing for the serving layer.

``repro-dfrs loadtest`` replays any :class:`repro.traces.JobSource` through
a :class:`~repro.serve.service.SchedulerService` at a configurable
acceleration (or flat out, under a :class:`~repro.core.clock.SimulatedClock`)
and reports sustained placements/sec, admission outcomes, and queue-latency
quantiles — the numbers ``BENCH_serve.json`` tracks across PRs.

:class:`PlacementLogObserver` records every placement action the engine
applies as a canonical JSON log; the replay-determinism tests byte-compare
the log of a service replay against the log of a bare ``run_stream`` to pin
the tentpole guarantee: the serving layer changes *when* decisions are made
in wall time, never *what* they are in simulated time.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..core.allocation import JobAllocation
from ..core.cluster import Cluster
from ..core.engine import SimulationConfig
from ..core.job import JobSpec
from ..core.observers import SimulationObserver
from ..metrics import DEFAULT_RELATIVE_ERROR
from ..traces.source import JobSource
from .admission import AdmissionPolicy
from .service import ReplayReport, SchedulerService

__all__ = ["PlacementLogObserver", "run_loadtest", "bench_payload", "peak_rss_mb"]


def peak_rss_mb() -> Optional[float]:
    """Peak resident set size of this process in MiB (None if unavailable).

    Sampled once at report time: ``ru_maxrss`` is a high-water mark, so one
    reading after the replay captures the run's memory cost.  Linux reports
    KiB, macOS bytes; Windows has no ``resource`` module, hence Optional.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - exercised on macOS only
        return rss / (1024.0 * 1024.0)
    return rss / 1024.0


class PlacementLogObserver(SimulationObserver):
    """Append-only log of every placement decision the engine applies.

    Entries are ``[time, action, job_id, nodes, yield]`` rows; node tuples
    and yields are recorded exactly as applied.  :meth:`to_json_bytes`
    serialises the whole log canonically (sorted keys, full float repr), so
    two runs made the same decisions if and only if their logs are equal as
    byte strings.
    """

    def __init__(self) -> None:
        self.entries: List[List[Any]] = []

    def _log(
        self,
        time: float,
        action: str,
        job_id: int,
        nodes: Optional[Tuple[int, ...]] = None,
        yield_value: Optional[float] = None,
    ) -> None:
        self.entries.append(
            [time, action, job_id, list(nodes) if nodes is not None else None, yield_value]
        )

    def on_job_started(
        self, time: float, spec: JobSpec, allocation: JobAllocation
    ) -> None:
        self._log(time, "start", spec.job_id, allocation.nodes, allocation.yield_value)

    def on_job_resumed(
        self, time: float, spec: JobSpec, allocation: JobAllocation
    ) -> None:
        self._log(time, "resume", spec.job_id, allocation.nodes, allocation.yield_value)

    def on_job_migrated(
        self,
        time: float,
        spec: JobSpec,
        old_nodes: Tuple[int, ...],
        allocation: JobAllocation,
    ) -> None:
        self._log(time, "migrate", spec.job_id, allocation.nodes, allocation.yield_value)

    def on_yield_changed(
        self, time: float, spec: JobSpec, old_yield: float, new_yield: float
    ) -> None:
        self._log(time, "yield", spec.job_id, None, new_yield)

    def on_job_preempted(self, time: float, spec: JobSpec) -> None:
        self._log(time, "preempt", spec.job_id)

    def on_job_completed(self, time: float, spec: JobSpec) -> None:
        self._log(time, "complete", spec.job_id)

    def to_json_bytes(self) -> bytes:
        """Canonical byte serialisation of the log (for byte-equality pins)."""
        return json.dumps(self.entries, sort_keys=True).encode("utf-8")


def run_loadtest(
    cluster: Cluster,
    scheduler: Any,
    source: JobSource,
    *,
    acceleration: Optional[float] = None,
    admission: Optional[Union[AdmissionPolicy, Mapping[str, Any]]] = None,
    config: Optional[SimulationConfig] = None,
    relative_error: float = DEFAULT_RELATIVE_ERROR,
    slo_factor: float = 10.0,
    keep_result: bool = False,
    telemetry: Optional[Mapping[str, Any]] = None,
) -> ReplayReport:
    """Replay ``source`` through a fresh service and return the report.

    ``acceleration=None`` is the max-throughput mode (no pacing);
    ``acceleration=x`` replays at ``x`` simulated seconds per wall second.
    Streaming metrics are forced on so arbitrarily long traces replay with
    bounded memory.  ``telemetry`` (a spec dict like ``{"type": "stats"}``)
    instruments the service and engine; the report then carries the final
    Prometheus page in :attr:`~repro.serve.service.ReplayReport.prometheus`.
    """
    engine_config = config or SimulationConfig(
        streaming_metrics=True, metrics_relative_error=relative_error
    )
    service = SchedulerService(
        cluster,
        scheduler,
        config=engine_config,
        admission=admission,
        relative_error=relative_error,
        slo_factor=slo_factor,
        telemetry=telemetry,
    )
    return service.replay(
        source, acceleration=acceleration, keep_result=keep_result
    )


def bench_payload(
    report: ReplayReport,
    *,
    workload: str,
    nodes: int,
    rss_mb: Optional[float] = None,
) -> Dict[str, Any]:
    """Shape one load-test report as a ``BENCH_serve.json`` entry.

    ``rss_mb`` defaults to a fresh :func:`peak_rss_mb` sample, so soak runs
    track the replay's memory high-water mark next to its latency
    quantiles.
    """
    return {
        "peak_rss_mb": rss_mb if rss_mb is not None else peak_rss_mb(),
        "benchmark": "serve-loadtest",
        "workload": workload,
        "nodes": nodes,
        "algorithm": report.algorithm,
        "clock": report.clock,
        "acceleration": report.acceleration,
        "jobs_submitted": report.submitted,
        "jobs_accepted": report.accepted,
        "jobs_rejected": report.rejected,
        "jobs_shed": report.shed,
        "placements": report.placements,
        "completions": report.completions,
        "sim_seconds": report.sim_seconds,
        "wall_seconds": report.wall_seconds,
        "placements_per_wall_sec": report.placements_per_wall_sec,
        "queue_latency": dict(report.queue_latency),
        "jct": dict(report.jct),
        "slo_factor": report.slo_factor,
        "slo_attained": report.slo_attained,
        "slo_attainment": report.slo_attainment,
    }
