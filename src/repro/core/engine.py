"""Discrete-event simulation engine for DFRS and batch scheduling.

The engine owns simulated time, job progress, and the preemption/migration
cost accounting; schedulers are pure policies invoked at every event (job
submission, job completion, or scheduler-requested wake-up).  Between two
events every running job has a constant yield, so progress is integrated
analytically and the next completion time is computed in closed form — the
event queue never needs invalidation.

Cost accounting rules (paper §IV-A, Table II):

* a job going from RUNNING to unallocated is a **preemption** (memory saved
  to storage); the wall-clock rescheduling penalty is charged when the job is
  later resumed;
* a RUNNING job whose node multiset changes at an event is a **migration**
  (pause/resume through storage within the event); the penalty is charged
  immediately;
* resuming a previously paused job on different nodes is *not* an extra
  migration — the cost was already paid by the preemption (this matches the
  zero migration count of GREEDY-PMTN in Table II);
* schedulers are never told about the penalty and cannot schedule around it.
"""

from __future__ import annotations

import logging
import math
import time as _time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..exceptions import SimulationError
from .allocation import AllocationDecision, JobAllocation, validate_decision
from .cluster import Cluster
from .context import JobView, SchedulingContext
from .events import Event, EventQueue, EventType
from .job import Job, JobSpec, JobState
from .observers import SimulationObserver
from .penalties import ReschedulingPenaltyModel
from .records import CostSummary, JobRecord, SimulationResult

__all__ = ["Simulator", "SimulationConfig"]

_LOGGER = logging.getLogger(__name__)

#: Hard cap on the number of processed events, as a runaway guard.
_DEFAULT_MAX_EVENTS = 50_000_000


@dataclass(frozen=True)
class SimulationConfig:
    """Tunable knobs of the simulation engine."""

    penalty_model: ReschedulingPenaltyModel = ReschedulingPenaltyModel(0.0)
    #: Abort if more than this many events are processed (runaway guard).
    max_events: int = _DEFAULT_MAX_EVENTS
    #: Record per-invocation scheduler wall-clock times (§V timing study).
    record_scheduler_times: bool = True


class Simulator:
    """Run one scheduling algorithm over one workload on one cluster.

    Parameters
    ----------
    cluster:
        Cluster description.
    scheduler:
        Any object implementing the :class:`repro.schedulers.base.Scheduler`
        protocol (``name``, ``requires_runtime_estimates``, ``start()``,
        ``schedule()``).
    config:
        Engine configuration (penalty model, safety limits).
    observers:
        Optional sequence of :class:`~repro.core.observers.SimulationObserver`
        instances notified of job lifecycle events and applied allocations
        (used by :mod:`repro.analysis` for utilization and trace analyses).
    """

    def __init__(
        self,
        cluster: Cluster,
        scheduler,
        config: Optional[SimulationConfig] = None,
        observers: Optional[Sequence[SimulationObserver]] = None,
    ) -> None:
        self.cluster = cluster
        self.scheduler = scheduler
        self.config = config or SimulationConfig()
        self._observers: List[SimulationObserver] = list(observers or [])
        self._jobs: Dict[int, Job] = {}
        self._arrived: Dict[int, bool] = {}
        self._queue = EventQueue()
        self._costs = CostSummary()
        self._records: List[JobRecord] = []
        self._scheduler_times: List[float] = []
        self._scheduler_job_counts: List[int] = []
        self._idle_node_seconds = 0.0
        self._now = 0.0
        self._pending_submissions = 0

    # ------------------------------------------------------------------ run --
    def run(self, specs: Sequence[JobSpec]) -> SimulationResult:
        """Simulate the full workload and return the per-run results."""
        if not specs:
            raise SimulationError("cannot simulate an empty workload")
        seen_ids = set()
        for spec in specs:
            if spec.job_id in seen_ids:
                raise SimulationError(f"duplicate job id {spec.job_id} in workload")
            seen_ids.add(spec.job_id)
            if spec.num_tasks > self.cluster.num_nodes and _is_batch(self.scheduler):
                raise SimulationError(
                    f"job {spec.job_id} needs {spec.num_tasks} nodes but the "
                    f"cluster only has {self.cluster.num_nodes} (batch scheduling "
                    "would never start it)"
                )
            self._jobs[spec.job_id] = Job(spec=spec)
            self._arrived[spec.job_id] = False
            self._queue.push(
                Event(spec.submit_time, EventType.JOB_SUBMISSION, spec.job_id)
            )

        first_submit = min(spec.submit_time for spec in specs)
        self._now = first_submit
        self._pending_submissions = len(specs)
        self.scheduler.start(self.cluster, first_submit)
        for observer in self._observers:
            observer.on_simulation_start(self.cluster, first_submit)

        events_processed = 0
        while self._has_active_jobs() or self._pending_submissions > 0:
            events_processed += 1
            if events_processed > self.config.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.config.max_events}; "
                    "the scheduler is probably thrashing"
                )
            next_time = self._next_event_time()
            if math.isinf(next_time):
                stuck = [job.job_id for job in self._jobs.values() if job.is_active()]
                raise SimulationError(
                    f"simulation deadlock at t={self._now:.1f}: jobs {stuck} are "
                    "active but no event will ever occur (scheduler left them "
                    "unallocated without requesting a wake-up)"
                )
            self._advance_to(next_time)
            submitted, completed, is_wakeup = self._collect_triggers(next_time)
            if not self._has_active_jobs() and self._pending_submissions == 0:
                break
            decision = self._invoke_scheduler(submitted, completed, is_wakeup)
            self._apply_decision(decision)
            for wakeup in decision.wakeups:
                if wakeup < self._now - 1e-9:
                    raise SimulationError(
                        f"scheduler requested a wake-up in the past "
                        f"({wakeup:.1f} < {self._now:.1f})"
                    )
                self._queue.push(Event(max(wakeup, self._now), EventType.SCHEDULER_WAKEUP))

        for observer in self._observers:
            observer.on_simulation_end(self._now)
        makespan = self._compute_makespan(specs)
        return SimulationResult(
            algorithm=getattr(self.scheduler, "name", type(self.scheduler).__name__),
            cluster=self.cluster,
            jobs=list(self._records),
            costs=self._costs,
            makespan=makespan,
            scheduler_times=list(self._scheduler_times),
            scheduler_job_counts=list(self._scheduler_job_counts),
            idle_node_seconds=self._idle_node_seconds,
        )

    # ----------------------------------------------------------- event loop --
    def _has_active_jobs(self) -> bool:
        return any(job.is_active() for job in self._jobs.values())

    def _next_event_time(self) -> float:
        next_time = self._queue.peek_time()
        for job in self._jobs.values():
            if job.state is JobState.RUNNING:
                next_time = min(next_time, job.predicted_completion(self._now))
        return next_time

    def _advance_to(self, next_time: float) -> None:
        duration = next_time - self._now
        if duration < -1e-6:
            raise SimulationError(
                f"time went backwards: {self._now:.3f} -> {next_time:.3f}"
            )
        duration = max(0.0, duration)
        if duration > 0.0:
            busy_nodes = set()
            for job in self._jobs.values():
                if job.state is JobState.RUNNING and job.assignment is not None:
                    busy_nodes.update(job.assignment)
            idle = self.cluster.num_nodes - len(busy_nodes)
            self._idle_node_seconds += idle * duration
            for job in self._jobs.values():
                job.advance(duration)
        self._now = next_time

    def _collect_triggers(self, now: float):
        submitted: List[int] = []
        completed: List[int] = []
        is_wakeup = False
        # Completions are detected from job state, not from queued events.
        for job in self._jobs.values():
            if job.state is JobState.RUNNING and job.remaining_work <= 0.0:
                self._complete_job(job)
                completed.append(job.job_id)
        for event in self._queue.pop_until(now):
            if event.event_type is EventType.JOB_SUBMISSION:
                assert event.job_id is not None
                self._arrived[event.job_id] = True
                self._pending_submissions -= 1
                submitted.append(event.job_id)
                for observer in self._observers:
                    observer.on_job_submitted(now, self._jobs[event.job_id].spec)
            elif event.event_type is EventType.SCHEDULER_WAKEUP:
                is_wakeup = True
        return submitted, completed, is_wakeup

    def _complete_job(self, job: Job) -> None:
        job.state = JobState.COMPLETED
        job.completion_time = self._now
        job.assignment = None
        job.current_yield = 0.0
        self._records.append(
            JobRecord(
                spec=job.spec,
                first_start_time=(
                    job.first_start_time
                    if job.first_start_time is not None
                    else self._now
                ),
                completion_time=self._now,
                preemptions=job.preemption_count,
                migrations=job.migration_count,
            )
        )
        for observer in self._observers:
            observer.on_job_completed(self._now, job.spec)

    # ------------------------------------------------------------ scheduling --
    def _build_context(
        self, submitted: List[int], completed: List[int], is_wakeup: bool
    ) -> SchedulingContext:
        clairvoyant = bool(getattr(self.scheduler, "requires_runtime_estimates", False))
        views: Dict[int, JobView] = {}
        for job_id, job in self._jobs.items():
            if not self._arrived[job_id] or not job.is_active():
                continue
            views[job_id] = JobView(
                job_id=job_id,
                num_tasks=job.spec.num_tasks,
                cpu_need=job.spec.cpu_need,
                mem_requirement=job.spec.mem_requirement,
                submit_time=job.spec.submit_time,
                state=job.state,
                virtual_time=job.virtual_time,
                flow_time=job.flow_time(self._now),
                backoff_count=job.backoff_count,
                assignment=job.assignment,
                current_yield=job.current_yield,
                last_assignment=job.last_assignment,
                runtime_estimate=job.spec.execution_time if clairvoyant else None,
                remaining_runtime_estimate=(
                    job.remaining_work + job.penalty_remaining if clairvoyant else None
                ),
            )
        return SchedulingContext(
            time=self._now,
            cluster=self.cluster,
            jobs=views,
            submitted=[j for j in submitted if j in views],
            completed=completed,
            is_wakeup=is_wakeup,
        )

    def _invoke_scheduler(
        self, submitted: List[int], completed: List[int], is_wakeup: bool
    ) -> AllocationDecision:
        context = self._build_context(submitted, completed, is_wakeup)
        start = _time.perf_counter()
        decision = self.scheduler.schedule(context)
        elapsed = _time.perf_counter() - start
        if self.config.record_scheduler_times:
            self._scheduler_times.append(elapsed)
            self._scheduler_job_counts.append(len(context.jobs))
        if decision is None:
            decision = AllocationDecision()
        specs = {job_id: self._jobs[job_id].spec for job_id in context.jobs}
        validate_decision(decision, specs, self.cluster)
        for job_id in decision.running:
            if self._jobs[job_id].state is JobState.COMPLETED:
                raise SimulationError(
                    f"scheduler allocated resources to completed job {job_id}"
                )
        return decision

    def _apply_decision(self, decision: AllocationDecision) -> None:
        penalty = self.config.penalty_model
        for job_id, job in self._jobs.items():
            if not self._arrived[job_id] or not job.is_active():
                continue
            new_alloc = decision.running.get(job_id)
            if job.state is JobState.RUNNING:
                assert job.assignment is not None
                if new_alloc is None:
                    # preemption: pause the job, memory goes to storage
                    self._costs.record_preemption(
                        penalty.preemption_bytes_gb(job.spec, self.cluster)
                    )
                    job.preemption_count += 1
                    job.last_assignment = job.assignment
                    job.assignment = None
                    job.current_yield = 0.0
                    job.state = JobState.PAUSED
                    for observer in self._observers:
                        observer.on_job_preempted(self._now, job.spec)
                elif sorted(new_alloc.nodes) != sorted(job.assignment):
                    # migration: pause/resume through storage within this event
                    self._costs.record_migration(
                        penalty.migration_bytes_gb(job.spec, self.cluster)
                    )
                    job.migration_count += 1
                    job.penalty_remaining += penalty.migration_penalty(job.spec)
                    old_nodes = job.assignment
                    job.last_assignment = job.assignment
                    job.assignment = new_alloc.nodes
                    job.current_yield = new_alloc.yield_value
                    for observer in self._observers:
                        observer.on_job_migrated(self._now, job.spec, old_nodes, new_alloc)
                else:
                    # same nodes: only the CPU fraction changes, no overhead
                    old_yield = job.current_yield
                    job.current_yield = new_alloc.yield_value
                    if old_yield != new_alloc.yield_value:
                        for observer in self._observers:
                            observer.on_yield_changed(
                                self._now, job.spec, old_yield, new_alloc.yield_value
                            )
            elif job.state is JobState.PENDING:
                if new_alloc is not None:
                    job.state = JobState.RUNNING
                    job.assignment = new_alloc.nodes
                    job.current_yield = new_alloc.yield_value
                    if job.first_start_time is None:
                        job.first_start_time = self._now
                    for observer in self._observers:
                        observer.on_job_started(self._now, job.spec, new_alloc)
            elif job.state is JobState.PAUSED:
                if new_alloc is not None:
                    job.state = JobState.RUNNING
                    job.penalty_remaining += penalty.resume_penalty(job.spec)
                    job.assignment = new_alloc.nodes
                    job.current_yield = new_alloc.yield_value
                    for observer in self._observers:
                        observer.on_job_resumed(self._now, job.spec, new_alloc)
        if self._observers:
            running_now: Dict[int, JobAllocation] = {}
            for job_id, job in self._jobs.items():
                if job.state is JobState.RUNNING and job.assignment is not None:
                    running_now[job_id] = JobAllocation.create(
                        job.assignment, job.current_yield
                    )
            for observer in self._observers:
                observer.on_allocation_applied(self._now, running_now)

    # --------------------------------------------------------------- results --
    def _compute_makespan(self, specs: Sequence[JobSpec]) -> float:
        if not self._records:
            return 0.0
        first_submit = min(spec.submit_time for spec in specs)
        last_completion = max(record.completion_time for record in self._records)
        return max(0.0, last_completion - first_submit)


def _is_batch(scheduler) -> bool:
    """True for schedulers that allocate whole nodes and never co-locate."""
    return bool(getattr(scheduler, "exclusive_node_allocation", False))
