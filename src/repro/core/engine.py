"""Discrete-event simulation engine for DFRS and batch scheduling.

The engine owns simulated time, job progress, and the preemption/migration
cost accounting; schedulers are pure policies invoked at every event (job
submission, job completion, or scheduler-requested wake-up).  Between two
events every running job has a constant yield, so progress is integrated
analytically and the next completion time is computed in closed form — the
event queue never needs invalidation.

Complexity contract
-------------------

Per-event work is ``O(active jobs · log n)``: the engine never iterates jobs
that have completed (or jobs submitted in the far future that have not yet
arrived).  Three pieces of incremental state make this possible:

* an **active-job table** (``_active``) holding exactly the arrived,
  not-yet-completed jobs, iterated in submission-spec order so scheduler
  visible ordering is identical to a full scan of every job;
* a **min-heap of predicted completion times** (``_completion_heap``) with
  *lazy invalidation*: every (re)allocation bumps the job's allocation
  version and pushes a fresh entry; stale entries are discarded when they
  surface at the top of the heap;
* **busy-node reference counts** (``_node_refcount``/``_busy_count``)
  updated at every allocation change, so idle-node-seconds accounting does
  not rebuild a busy-node set per event.

``SimulationConfig(legacy_event_loop=True)`` selects the original
full-dictionary-scan implementation (kept verbatim as the reference
semantics); equivalence tests assert both modes produce byte-identical
results and ``benchmarks/test_bench_engine_scaling.py`` measures the gap.

Cost accounting rules (paper §IV-A, Table II):

* a job going from RUNNING to unallocated is a **preemption** (memory saved
  to storage); the wall-clock rescheduling penalty is charged when the job is
  later resumed;
* a RUNNING job whose node multiset changes at an event is a **migration**
  (pause/resume through storage within the event); the penalty is charged
  immediately;
* resuming a previously paused job on different nodes is *not* an extra
  migration — the cost was already paid by the preemption (this matches the
  zero migration count of GREEDY-PMTN in Table II);
* schedulers are never told about the penalty and cannot schedule around it.
"""

from __future__ import annotations

import heapq
import logging
import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import SimulationError
from ..obs.telemetry import (
    Telemetry,
    as_telemetry,
    current_telemetry,
    push_telemetry,
)
from ..obs.timing import perf_counter as _perf_counter
from .allocation import AllocationDecision, JobAllocation, validate_decision
from .clock import Clock, SimulatedClock
from .cluster import Cluster
from .context import JobView, SchedulingContext
from .events import Event, EventQueue, EventType
from .job import Job, JobSpec, JobState
from .observers import SimulationObserver
from .penalties import ReschedulingPenaltyModel
from .records import CostSummary, JobRecord, SimulationResult

__all__ = ["Simulator", "SimulationConfig", "EngineLoad"]

_LOGGER = logging.getLogger(__name__)

#: Hard cap on the number of processed events, as a runaway guard.
_DEFAULT_MAX_EVENTS = 50_000_000


@dataclass(frozen=True)
class SimulationConfig:
    """Tunable knobs of the simulation engine."""

    penalty_model: ReschedulingPenaltyModel = ReschedulingPenaltyModel(0.0)
    #: Abort if more than this many events are processed (runaway guard).
    max_events: int = _DEFAULT_MAX_EVENTS
    #: Record per-invocation scheduler wall-clock times (§V timing study).
    record_scheduler_times: bool = True
    #: Use the original O(all jobs)-per-event full-scan loop (reference
    #: semantics for equivalence tests and the scaling benchmark baseline).
    legacy_event_loop: bool = False
    #: Accumulate per-job outcomes into mergeable online statistics
    #: (:class:`repro.metrics.JobMetricsAccumulator`) instead of keeping one
    #: :class:`~repro.core.records.JobRecord` per job: the result carries
    #: ``job_stats`` summaries, ``result.jobs`` stays empty, and result
    #: memory is O(accumulators) instead of O(jobs).  Scheduler timings are
    #: likewise reduced to moments.  Off by default — the default mode is
    #: byte-identical to previous releases.
    streaming_metrics: bool = False
    #: Relative-error bound of the streaming quantile sketches (see
    #: :class:`repro.metrics.QuantileSketch`); only read when
    #: ``streaming_metrics`` is on.
    metrics_relative_error: float = 0.01
    #: Optional :class:`repro.platform.NodeEventSource` of timed node
    #: failures/repairs.  None (the default) keeps every node up for the
    #: whole run — the original static platform, byte-identical.
    node_events: Optional[Any] = None
    #: What happens to jobs with a task on a failed node: ``"resubmit"``
    #: kills them and requeues them from scratch (progress lost);
    #: ``"migrate"`` checkpoints them exactly like a scheduler preemption
    #: (progress kept, preemption cost charged, resume penalty on restart).
    #: Only read when ``node_events`` is set.
    failure_policy: str = "resubmit"
    #: Ask periodic schedulers to repack immediately when a node fails
    #: instead of waiting for their next tick: events that apply a
    #: ``NODE_DOWN`` build their scheduling context with
    #: ``repack_requested=True``.  Trades migration/preemption churn for
    #: recovery latency; off by default (byte-identical to previous
    #: releases).  Schedulers that ignore ``repack_requested`` are
    #: unaffected.
    repack_on_failure: bool = False
    #: Optional :class:`repro.models.OverheadModel` charged at preemption /
    #: migration / checkpoint / resume instants (seconds land on the job's
    #: ``penalty_remaining`` and in the cost tally).  None (the default) is
    #: the paper's zero-cost convention, byte-identical to previous
    #: releases — a :class:`~repro.models.NoOverheadModel` is demoted to
    #: None by the scenario layer.
    overhead_model: Optional[Any] = None
    #: Optional :class:`repro.models.ExecutionTimeModel` applied once per
    #: job at admission: the job's dedicated work is scaled by the model's
    #: multiplier while scheduler-visible runtime estimates stay at the
    #: nominal trace value.  None (the default) is the trace-exact path,
    #: byte-identical to previous releases.
    execution_time_model: Optional[Any] = None
    #: Node index -> platform node-class name, for overhead models with
    #: per-class parameters.  None on the homogeneous cluster.
    node_class_names: Optional[Tuple[str, ...]] = None
    #: Node index -> ``(busy_watts, idle_watts)`` power draw.  When set, the
    #: engine integrates consumed energy over the run into
    #: ``SimulationResult.energy_joules`` (down nodes draw nothing).  None
    #: (the default) skips the accounting entirely.
    node_power: Optional[Tuple[Tuple[float, float], ...]] = None
    #: Optional telemetry: a live :class:`repro.obs.Telemetry` sink, a
    #: :class:`repro.obs.TelemetryConfig` spec, or its canonical dict form
    #: (``{"type": "stats" | "tracing"}``).  None (the default) disables all
    #: instrumentation — the disabled path is byte-identical to previous
    #: releases and adds only per-event None checks.  Timings live in the
    #: sink, never in results, so results stay a pure function of the spec
    #: (DET103).
    telemetry: Optional[Any] = None
    #: Width in seconds of the per-window availability accumulators (the
    #: delivered-vs-nominal CPU-hours measurement of the ``availability``
    #: collector).  Only read in ``streaming_metrics`` mode; None (the
    #: default) keeps only the whole-run availability integral.
    availability_window_seconds: Optional[float] = None


@dataclass(frozen=True)
class EngineLoad:
    """Instantaneous load summary of the engine's resident jobs.

    Consumed by the serving layer's admission policies
    (:mod:`repro.serve.admission`); cheap — one pass over the active table.
    """

    pending_jobs: int
    running_jobs: int
    paused_jobs: int
    #: Total CPU need (summed over tasks) of all resident active jobs.
    total_cpu_need: float
    #: First PENDING job in submission order, if any (the shed victim).
    oldest_pending_job_id: Optional[int] = None

    @property
    def active_jobs(self) -> int:
        return self.pending_jobs + self.running_jobs + self.paused_jobs


class Simulator:
    """Run one scheduling algorithm over one workload on one cluster.

    Parameters
    ----------
    cluster:
        Cluster description.
    scheduler:
        Any object implementing the :class:`repro.schedulers.base.Scheduler`
        protocol (``name``, ``requires_runtime_estimates``, ``start()``,
        ``schedule()``).
    config:
        Engine configuration (penalty model, safety limits).
    observers:
        Optional sequence of :class:`~repro.core.observers.SimulationObserver`
        instances notified of job lifecycle events and applied allocations
        (used by :mod:`repro.analysis` for utilization and trace analyses).
    clock:
        Optional :class:`~repro.core.clock.Clock` pacing the event loop.
        The default :class:`~repro.core.clock.SimulatedClock` waits for
        free, preserving the original discrete-event behaviour exactly; a
        :class:`~repro.core.clock.WallClock` turns ``run``/``run_stream``
        into a real-time (optionally accelerated) replay.  The clock only
        throttles the driver — it never changes which events fire at which
        simulated timestamps, so results are clock-independent.
    """

    def __init__(
        self,
        cluster: Cluster,
        scheduler,
        config: Optional[SimulationConfig] = None,
        observers: Optional[Sequence[SimulationObserver]] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.cluster = cluster
        self.scheduler = scheduler
        self.config = config or SimulationConfig()
        self._clock: Clock = clock if clock is not None else SimulatedClock()
        self._observers: List[SimulationObserver] = list(observers or [])
        self._jobs: Dict[int, Job] = {}
        self._arrived: Dict[int, bool] = {}
        self._queue = EventQueue()
        self._costs = CostSummary()
        self._records: List[JobRecord] = []
        # -- streaming-metrics state ---------------------------------------
        #: Online per-job statistics replacing ``_records`` when
        #: ``config.streaming_metrics`` is set (None otherwise).
        self._job_stats = None
        self._scheduler_time_stats = None
        self._scheduler_job_count_stats = None
        if self.config.streaming_metrics:
            from ..metrics import JobMetricsAccumulator, Moments

            self._job_stats = JobMetricsAccumulator(
                relative_error=self.config.metrics_relative_error
            )
            self._scheduler_time_stats = Moments()
            self._scheduler_job_count_stats = Moments()
        #: Latest completion instant (streaming metrics makespan baseline).
        self._last_completion = -math.inf
        self._scheduler_times: List[float] = []
        self._scheduler_job_counts: List[int] = []
        self._idle_node_seconds = 0.0
        # -- power/energy accounting ---------------------------------------
        #: Per-node (busy, idle) watts, or None when energy is not tracked.
        self._node_power = self.config.node_power
        if self._node_power is not None and len(self._node_power) != cluster.num_nodes:
            raise SimulationError(
                f"node_power has {len(self._node_power)} entries for a "
                f"{cluster.num_nodes}-node cluster"
            )
        #: Current total draw in watts, updated incrementally at busy/idle/
        #: down transitions; integrated over time in ``_advance_to``.
        self._power_current = 0.0
        self._energy_joules = 0.0
        #: Time-weighted busy-node accumulator (streaming-metrics mode only),
        #: feeding the streaming ``utilization`` collector.
        self._busy_node_stats = None
        # -- availability measurement ---------------------------------------
        #: Time-weighted *up CPU capacity* accumulator (streaming-metrics
        #: mode only), feeding the streaming ``availability`` collector:
        #: delivered CPU-hours = mean x duration.
        self._avail_node_stats = None
        #: window index -> up-capacity accumulator, when
        #: ``availability_window_seconds`` is set (windows anchored at the
        #: first submission).
        self._avail_window_stats: Optional[Dict[int, Any]] = None
        #: window index -> ``[completions, delivered work]`` (work = tasks x
        #: cpu x nominal seconds of each job completing in the window),
        #: feeding the streaming ``goodput`` collector.  Same windows as
        #: ``_avail_window_stats``: ``availability_window_seconds`` wide,
        #: anchored at the first submission.
        self._goodput_window_stats: Optional[Dict[int, List[float]]] = None
        self._window_accumulator_factory = None
        window = self.config.availability_window_seconds
        if window is not None and (not math.isfinite(window) or window <= 0.0):
            raise SimulationError(
                f"availability_window_seconds must be a positive finite "
                f"number of seconds, got {window!r}"
            )
        if self.config.streaming_metrics:
            from ..metrics import TimeWeightedValue

            self._busy_node_stats = TimeWeightedValue()
            self._avail_node_stats = TimeWeightedValue()
            if window is not None:
                self._avail_window_stats = {}
                self._goodput_window_stats = {}
                self._window_accumulator_factory = TimeWeightedValue
        #: Total CPU capacity of the cluster (cached; the availability
        #: integral subtracts down-node capacity from it every segment).
        self._total_cpu_capacity = float(cluster.total_cpu_capacity())
        # -- telemetry ------------------------------------------------------
        #: The live telemetry sink, or None when telemetry is disabled (the
        #: default).  All hot-path instrumentation is guarded by a single
        #: None check per event.
        self._telemetry: Optional[Telemetry] = as_telemetry(self.config.telemetry)
        if self._telemetry is not None and getattr(
            self._telemetry, "flight", None
        ) is not None:
            # A sink with an attached flight recorder turns on the per-job
            # lifecycle log: the observer is ordinary (never consulted by
            # scheduling), so the uninstrumented path is untouched.
            from ..obs.flight import FlightObserver

            self._observers.append(FlightObserver(self._telemetry.flight))
        self._now = 0.0
        self._pending_submissions = 0
        # -- O(active) event-loop state ------------------------------------
        #: Arrived, not-yet-completed jobs, keyed by job id.
        self._active: Dict[int, Job] = {}
        #: job id -> position in the submitted spec sequence; iteration over
        #: active jobs is sorted by this so scheduler-visible ordering is
        #: identical to the legacy full scan of ``_jobs``.
        self._seq: Dict[int, int] = {}
        #: Min-heap of ``(predicted completion, job id, allocation version)``.
        self._completion_heap: List[Tuple[float, int, int]] = []
        #: job id -> allocation version; bumped whenever a change invalidates
        #: the job's queued completion prediction (lazy heap invalidation).
        self._alloc_version: Dict[int, int] = {}
        #: node index -> number of tasks of RUNNING jobs placed on it.
        self._node_refcount: Dict[int, int] = {}
        #: Number of nodes with a non-zero reference count.
        self._busy_count = 0
        #: True when the spec sequence is submit-time sorted, in which case
        #: the active table's insertion order *is* spec order (submissions
        #: pop in (time, spec-position) order) and iteration needs no sort.
        self._specs_time_sorted = True
        # -- streaming intake state ----------------------------------------
        #: True while running in streaming mode (``run_stream``): specs are
        #: admitted lazily from an iterator and completed jobs are evicted.
        self._streaming = False
        #: The spec iterator of a streaming run (None once exhausted).
        self._stream: Optional[Iterator[JobSpec]] = None
        #: job ids ever admitted (duplicate detection across the stream).
        self._seen_job_ids: set = set()
        #: Submit time of the most recently admitted spec (order enforcement).
        self._last_admitted_submit = -math.inf
        #: Spec-sequence position of the next streamed admission.
        self._next_stream_index = 0
        #: Submit time of the first job (makespan baseline).
        self._first_submit = 0.0
        # -- dynamic platform state ----------------------------------------
        #: Nodes currently unavailable (down under the platform failure
        #: trace).  Always empty on static platforms.
        self._down_nodes: set = set()
        #: Jobs evicted by node failures at the event being processed.
        self._evicted_now: List[int] = []
        #: True while the event being processed applied a ``NODE_DOWN``
        #: (drives ``repack_requested`` when ``config.repack_on_failure``).
        self._node_down_now = False
        # -- online-driver state -------------------------------------------
        #: Events processed so far (runaway guard; reset by ``_begin``).
        self._events_processed = 0
        #: Job ids cancelled through :meth:`online_cancel` before their
        #: submission event fired; the event is dropped when it surfaces.
        self._cancelled_pending: set = set()
        #: High-water mark of jobs resident in the engine's tables at once.
        #: In streaming mode this stays O(active jobs); materialized runs
        #: register every spec up front so it equals the workload size.
        self.peak_resident_jobs = 0

    @property
    def telemetry(self) -> Optional[Telemetry]:
        """The live telemetry sink, or None when telemetry is disabled."""
        return self._telemetry

    @property
    def events_processed(self) -> int:
        """Simulation events processed so far (throughput denominator)."""
        return self._events_processed

    # ------------------------------------------------------------------ run --
    def run(self, specs: Sequence[JobSpec]) -> SimulationResult:
        """Simulate the full (materialized) workload and return the results."""
        if not specs:
            raise SimulationError("cannot simulate an empty workload")
        for index, spec in enumerate(specs):
            self._register_spec(spec, index)
        self._specs_time_sorted = all(
            specs[i].submit_time <= specs[i + 1].submit_time
            for i in range(len(specs) - 1)
        )
        self._pending_submissions = len(specs)
        return self._run_event_loop(min(spec.submit_time for spec in specs))

    def run_stream(self, specs: Iterable[JobSpec]) -> SimulationResult:
        """Simulate a streaming workload with lazy job admission.

        ``specs`` must be arrival-ordered (non-decreasing submit times, the
        :class:`repro.traces.JobSource` contract).  Jobs are admitted from
        the iterator one ahead of simulated time and evicted from every
        engine table on completion, so the resident job count — tracked by
        :attr:`peak_resident_jobs` — stays ``O(active jobs)`` instead of
        ``O(total jobs)``.  Results are byte-identical to ``run(list(specs))``.
        """
        if self.config.legacy_event_loop:
            raise SimulationError(
                "streaming intake requires the O(active jobs) event loop "
                "(legacy_event_loop=False)"
            )
        self._streaming = True
        self._stream = iter(specs)
        first = next(self._stream, None)
        if first is None:
            raise SimulationError("cannot simulate an empty workload")
        self._specs_time_sorted = True
        self._admit_spec(first)
        return self._run_event_loop(first.submit_time)

    def _run_event_loop(self, first_submit: float) -> SimulationResult:
        # Install the sink as the thread's ambient telemetry for the whole
        # run (not per scheduler invocation): ``_invoke_scheduler`` then
        # skips the push/pop pair on every event behind one identity check.
        tel = self._telemetry
        if tel is None:
            return self._run_event_loop_inner(first_submit)
        previous = push_telemetry(tel)
        try:
            return self._run_event_loop_inner(first_submit)
        finally:
            push_telemetry(previous)

    def _run_event_loop_inner(self, first_submit: float) -> SimulationResult:
        self._begin(first_submit)
        while self._has_active_jobs() or self._pending_submissions > 0:
            next_time = self._next_event_time()
            if math.isinf(next_time):
                stuck = [job.job_id for job in self._iter_jobs() if job.is_active()]
                raise SimulationError(
                    f"simulation deadlock at t={self._now:.1f}: jobs {stuck} are "
                    "active but no event will ever occur (scheduler left them "
                    "unallocated without requesting a wake-up)"
                )
            # Clock seam: a SimulatedClock returns immediately (the original
            # discrete-event behaviour, byte for byte); a WallClock sleeps
            # until real time reaches the simulated instant.  Either way the
            # event fires at exactly ``next_time`` simulated seconds.
            self._clock.wait_until(next_time)
            self._step(next_time)
        return self._finalize()

    def _begin(self, first_submit: float) -> None:
        """Initialise a run anchored at the first submission instant."""
        self._first_submit = first_submit
        self._now = first_submit
        self._events_processed = 0
        self._clock.start(first_submit)
        self._setup_platform(first_submit)
        if self._node_power is not None:
            # Every up node starts idle; down nodes (from a pre-run slice of
            # the availability trace) draw nothing.
            self._power_current = sum(
                self._node_power[node][1]
                for node in range(self.cluster.num_nodes)
                if node not in self._down_nodes
            )
        self.scheduler.start(self.cluster, first_submit)
        for observer in self._observers:
            observer.on_simulation_start(self.cluster, first_submit)

    def _step(self, next_time: float) -> None:
        """Process the single simulation event due at ``next_time``."""
        self._events_processed += 1
        if self._events_processed > self.config.max_events:
            raise SimulationError(
                f"exceeded max_events={self.config.max_events}; "
                "the scheduler is probably thrashing"
            )
        tel = self._telemetry
        if tel is None:
            self._advance_to(next_time)
            submitted, completed, is_wakeup = self._collect_triggers(next_time)
        else:
            tel.count("engine.events")
            # One timed window covers clock advance plus trigger collection:
            # per-event instrumentation is budgeted (the throughput bench
            # asserts <=1.10x), so only the phases worth a profile row get
            # their own timer reads.
            t0 = tel.now()
            self._advance_to(next_time)
            submitted, completed, is_wakeup = self._collect_triggers(next_time)
            tel.record_phase("engine.advance", t0, tel.now())
        if not self._has_active_jobs() and self._pending_submissions == 0:
            return
        decision = self._invoke_scheduler(submitted, completed, is_wakeup)
        if tel is None:
            self._apply_decision(decision)
        else:
            t2 = tel.now()
            self._apply_decision(decision)
            tel.record_phase("engine.apply", t2, tel.now())
        for wakeup in decision.wakeups:
            if wakeup < self._now - 1e-9:
                raise SimulationError(
                    f"scheduler requested a wake-up in the past "
                    f"({wakeup:.1f} < {self._now:.1f})"
                )
            self._queue.push(Event(max(wakeup, self._now), EventType.SCHEDULER_WAKEUP))

    def _finalize(self) -> SimulationResult:
        """Close the run and assemble the results."""
        for observer in self._observers:
            observer.on_simulation_end(self._now)
        makespan = self._compute_makespan()
        return SimulationResult(
            algorithm=getattr(self.scheduler, "name", type(self.scheduler).__name__),
            cluster=self.cluster,
            jobs=list(self._records),
            costs=self._costs,
            makespan=makespan,
            scheduler_times=list(self._scheduler_times),
            scheduler_job_counts=list(self._scheduler_job_counts),
            idle_node_seconds=self._idle_node_seconds,
            job_stats=self._job_stats,
            scheduler_time_stats=self._scheduler_time_stats,
            scheduler_job_count_stats=self._scheduler_job_count_stats,
            energy_joules=self._energy_joules,
            busy_node_stats=self._busy_node_stats,
            avail_node_stats=self._avail_node_stats,
            avail_window_stats=self._avail_window_stats,
            goodput_window_stats=self._goodput_window_stats,
        )

    # -------------------------------------------------------- online driving --
    # The serve layer (:mod:`repro.serve`) drives the engine one event at a
    # time instead of through ``run``/``run_stream``: jobs arrive from live
    # clients, so the set of future submissions is open-ended and the driver
    # — not the engine — decides when to wait and when to step.  The online
    # API reuses ``_begin``/``_step``/``_finalize`` unchanged, so scheduling
    # semantics are identical to the batch paths.

    def online_begin(self, start_time: float) -> None:
        """Start an open-ended online run at simulated ``start_time``.

        Runs in streaming mode: completed jobs are evicted from every table,
        so resident state stays O(active jobs) over an unbounded lifetime.
        """
        if self.config.legacy_event_loop:
            raise SimulationError(
                "online driving requires the O(active jobs) event loop "
                "(legacy_event_loop=False)"
            )
        self._streaming = True
        self._begin(start_time)

    def online_submit(self, spec: JobSpec) -> None:
        """Admit one job; ``submit_time`` must be non-decreasing and >= now."""
        if spec.submit_time < self._now - 1e-9:
            raise SimulationError(
                f"online submission of job {spec.job_id} at "
                f"{spec.submit_time:.3f} is in the engine's past "
                f"(t={self._now:.3f})"
            )
        self._admit_spec(spec)

    def online_now(self) -> float:
        """Current simulated time of the engine."""
        return self._now

    def online_next_event_time(self) -> float:
        """Simulated instant of the next due event, ``+inf`` when idle.

        Unlike the batch loop, ``+inf`` with active jobs is not a deadlock
        here: a future submission or cancellation can still unblock them, so
        the online driver waits for external input instead of raising.
        """
        if not self._has_active_jobs() and self._pending_submissions == 0:
            return math.inf
        return self._next_event_time()

    def online_step(self) -> float:
        """Process the next due event; returns its time (``+inf`` if idle).

        The caller is responsible for pacing — with a wall clock, call this
        only once real time has reached the returned instant.
        """
        next_time = self.online_next_event_time()
        if math.isinf(next_time):
            return next_time
        self._step(next_time)
        return next_time

    def online_cancel(self, job_id: int) -> bool:
        """Cancel a not-yet-completed job; True if anything was removed.

        A running victim releases its nodes immediately; a queued submission
        is dropped when its event surfaces.  A scheduler wake-up is queued so
        freed capacity is redistributed at the next step.
        """
        job = self._jobs.get(job_id)
        if job is None:
            return False
        if not self._arrived.get(job_id, False):
            # Submission still queued: mark it; _collect_triggers drops it.
            self._cancelled_pending.add(job_id)
            return True
        if job.state is JobState.COMPLETED:
            return False
        if job.state is JobState.RUNNING and job.assignment is not None:
            self._release_nodes(job.assignment)
        job.state = JobState.COMPLETED
        job.assignment = None
        job.current_yield = 0.0
        self._deactivate(job_id)
        del self._jobs[job_id]
        del self._arrived[job_id]
        self._seq.pop(job_id, None)
        self._alloc_version.pop(job_id, None)
        self._queue.push(Event(self._now, EventType.SCHEDULER_WAKEUP))
        return True

    def online_finalize(self) -> SimulationResult:
        """Close the online run and return the results accumulated so far."""
        return self._finalize()

    def load_snapshot(self) -> EngineLoad:
        """Summarize the resident active jobs (admission-control input).

        One pass over the active table — O(active jobs), like every other
        per-event operation.  The oldest pending job is the first PENDING
        job in submission-spec order.
        """
        pending = running = paused = 0
        total_cpu_need = 0.0
        oldest_pending: Optional[int] = None
        for job in self._iter_jobs():
            if not self._arrived.get(job.job_id, False) or not job.is_active():
                continue
            total_cpu_need += job.spec.total_cpu_need
            if job.state is JobState.PENDING:
                pending += 1
                if oldest_pending is None:
                    oldest_pending = job.job_id
            elif job.state is JobState.RUNNING:
                running += 1
            else:
                paused += 1
        return EngineLoad(
            pending_jobs=pending,
            running_jobs=running,
            paused_jobs=paused,
            total_cpu_need=total_cpu_need,
            oldest_pending_job_id=oldest_pending,
        )

    # --------------------------------------------------------- platform setup --
    def _setup_platform(self, first_submit: float) -> None:
        """Queue the platform's node availability events, if any.

        Failure traces are tiny next to job traces (one entry per failure),
        so the whole stream is materialized up front.  Events strictly
        before the first submission are applied as the initial availability
        state instead of being replayed.
        """
        source = self.config.node_events
        if source is None:
            return
        if self.config.legacy_event_loop:
            raise SimulationError(
                "node availability events require the O(active jobs) event "
                "loop (legacy_event_loop=False)"
            )
        if self.config.failure_policy not in ("resubmit", "migrate"):
            raise SimulationError(
                f"unknown failure_policy {self.config.failure_policy!r} "
                "(expected 'resubmit' or 'migrate')"
            )
        if self.config.failure_policy == "migrate" and not getattr(
            self.scheduler, "resumes_paused_jobs", True
        ):
            raise SimulationError(
                f"failure_policy 'migrate' checkpoints victims as PAUSED "
                f"jobs, but scheduler "
                f"{getattr(self.scheduler, 'name', '?')!r} never resumes "
                "paused jobs (they would starve); use failure_policy "
                "'resubmit' or a pmtn/dynmcb8-family scheduler"
            )
        for event in source.events(self.cluster):
            if event.time < first_submit:
                if event.up:
                    self._down_nodes.discard(event.node)
                else:
                    self._down_nodes.add(event.node)
            else:
                self._queue.push(
                    Event(
                        event.time,
                        EventType.NODE_UP if event.up else EventType.NODE_DOWN,
                        node=event.node,
                    )
                )

    def _apply_node_down(self, node: int) -> None:
        """Mark ``node`` down and evict the jobs running a task on it."""
        if node in self._down_nodes:
            return
        self._down_nodes.add(node)
        self._costs.record_node_failure()
        penalty = self.config.penalty_model
        resubmit = self.config.failure_policy == "resubmit"
        for job in list(self._iter_jobs()):
            if job.state is not JobState.RUNNING or job.assignment is None:
                continue
            if node not in job.assignment:
                continue
            self._release_nodes(job.assignment)
            job.last_assignment = job.assignment
            job.assignment = None
            job.current_yield = 0.0
            if resubmit:
                # Kill-and-resubmit: all progress is lost, nothing is saved
                # to storage, and the job queues again as if fresh.
                job.state = JobState.PENDING
                job.remaining_work = job.scaled_work()
                job.virtual_time = 0.0
                job.penalty_remaining = 0.0
                self._costs.record_failure_kill()
            else:
                # Checkpoint ("migrate"): exactly a preemption — memory goes
                # to storage, progress is kept, and the resume penalty is
                # charged when a scheduler later restarts the job elsewhere.
                job.state = JobState.PAUSED
                job.preemption_count += 1
                self._costs.record_preemption(
                    penalty.preemption_bytes_gb(job.spec, self.cluster)
                )
                self._charge_overhead("checkpoint", job)
            self._note_allocation_change(job)
            self._evicted_now.append(job.job_id)
            for observer in self._observers:
                observer.on_job_evicted(self._now, job.spec, node, resubmit)
                observer.on_job_preempted(self._now, job.spec)
        if self._node_power is not None:
            # Evictions above already moved the node's draw from busy to
            # idle; a down node draws nothing at all.
            self._power_current -= self._node_power[node][1]

    # -------------------------------------------------------- spec admission --
    def _register_spec(self, spec: JobSpec, index: int) -> None:
        """Create the engine-side state of one spec and queue its submission."""
        if spec.job_id in self._seen_job_ids:
            raise SimulationError(f"duplicate job id {spec.job_id} in workload")
        self._seen_job_ids.add(spec.job_id)
        if spec.num_tasks > self.cluster.num_nodes and _is_batch(self.scheduler):
            raise SimulationError(
                f"job {spec.job_id} needs {spec.num_tasks} nodes but the "
                f"cluster only has {self.cluster.num_nodes} (batch scheduling "
                "would never start it)"
            )
        if self.cluster.is_heterogeneous and _is_batch(self.scheduler):
            # Batch schedulers place one task per node on *eligible* nodes
            # only (capacity-aware packing); a job wider than the eligible
            # node count would sit at the queue head forever and livelock
            # the run, exactly like the width check above.
            eligible = _eligible_batch_nodes(self.cluster, spec, self.scheduler)
            if spec.num_tasks > eligible:
                raise SimulationError(
                    f"job {spec.job_id} needs {spec.num_tasks} nodes of "
                    f"memory {spec.mem_requirement:g} / cpu {spec.cpu_need:g} "
                    f"but only {eligible} nodes of this platform can host "
                    f"such a task (batch scheduling would never start it)"
                )
        if spec.num_tasks > _max_hostable_tasks(self.cluster, spec.mem_requirement):
            # Without this check the job would wait forever (DFRS backoff
            # retries, batch queue head) and the run would livelock.
            raise SimulationError(
                f"job {spec.job_id} needs {spec.num_tasks} tasks of memory "
                f"{spec.mem_requirement:g} but the platform can host at most "
                f"{_max_hostable_tasks(self.cluster, spec.mem_requirement)} "
                "such tasks even when empty (permanently infeasible)"
            )
        job = Job(spec=spec)
        etm = self.config.execution_time_model
        if etm is not None:
            multiplier = float(etm.execution_multiplier(spec))
            if not math.isfinite(multiplier) or multiplier <= 0:
                raise SimulationError(
                    f"execution-time model returned multiplier {multiplier!r} "
                    f"for job {spec.job_id} (must be finite and > 0)"
                )
            if multiplier != 1.0:
                job.work_scale = multiplier
                job.remaining_work = job.scaled_work()
        self._jobs[spec.job_id] = job
        self._arrived[spec.job_id] = False
        self._seq[spec.job_id] = index
        self._alloc_version[spec.job_id] = 0
        self._queue.push(
            Event(spec.submit_time, EventType.JOB_SUBMISSION, spec.job_id)
        )
        resident = len(self._jobs)
        if resident > self.peak_resident_jobs:
            self.peak_resident_jobs = resident

    def _admit_spec(self, spec: JobSpec) -> None:
        """Streaming intake of one spec, enforcing arrival order."""
        if spec.submit_time < self._last_admitted_submit:
            raise SimulationError(
                f"streaming intake requires arrival-ordered specs: job "
                f"{spec.job_id} submitted at {spec.submit_time:.3f} after a "
                f"job submitted at {self._last_admitted_submit:.3f}"
            )
        self._last_admitted_submit = spec.submit_time
        self._register_spec(spec, self._next_stream_index)
        self._next_stream_index += 1
        self._pending_submissions += 1

    def _admit_next_from_stream(self) -> None:
        """Pull the next spec (if any) from the streaming source."""
        if self._stream is None:
            return
        tel = self._telemetry
        if tel is None:
            spec = next(self._stream, None)
        else:
            t0 = tel.now()
            spec = next(self._stream, None)
            tel.record_phase("engine.stream_intake", t0, tel.now())
        if spec is None:
            self._stream = None
            return
        self._admit_spec(spec)

    # ------------------------------------------------- active-job iteration --
    def _iter_jobs(self) -> Iterable[Job]:
        """Arrived active jobs in submission-spec order.

        In legacy mode this is the original scan over *every* job ever
        submitted; the fast path walks only the active table, sorted by spec
        position so both modes present jobs in the same order everywhere
        (contexts, completion detection, decision application).
        """
        if self.config.legacy_event_loop:
            return self._jobs.values()
        if self._specs_time_sorted:
            return list(self._active.values())
        return sorted(self._active.values(), key=lambda job: self._seq[job.job_id])

    def _activate(self, job_id: int) -> None:
        self._arrived[job_id] = True
        self._active[job_id] = self._jobs[job_id]

    def _deactivate(self, job_id: int) -> None:
        self._active.pop(job_id, None)
        self._alloc_version[job_id] += 1

    # ------------------------------------------- busy-node refcount tracking --
    def _acquire_nodes(self, nodes: Tuple[int, ...]) -> None:
        refcount = self._node_refcount
        power = self._node_power
        for node in nodes:
            count = refcount.get(node, 0)
            if count == 0:
                self._busy_count += 1
                if power is not None:
                    self._power_current += power[node][0] - power[node][1]
            refcount[node] = count + 1

    def _release_nodes(self, nodes: Tuple[int, ...]) -> None:
        refcount = self._node_refcount
        power = self._node_power
        for node in nodes:
            count = refcount[node] - 1
            if count == 0:
                self._busy_count -= 1
                if power is not None:
                    self._power_current += power[node][1] - power[node][0]
                del refcount[node]
            else:
                refcount[node] = count

    # ------------------------------------------------ completion-time heap --
    def _note_allocation_change(self, job: Job) -> None:
        """Invalidate the job's queued completion prediction and requeue it.

        Called whenever state/yield/penalty changes alter the predicted
        completion instant.  The stale heap entry is *not* removed here — it
        is skipped lazily when it reaches the top (``_next_event_time``).
        """
        version = self._alloc_version[job.job_id] + 1
        self._alloc_version[job.job_id] = version
        if job.state is JobState.RUNNING:
            predicted = job.predicted_completion(self._now)
            if math.isfinite(predicted):
                heapq.heappush(self._completion_heap, (predicted, job.job_id, version))

    def _next_completion_time(self) -> float:
        """Earliest live predicted completion over all RUNNING jobs.

        Stale heap entries (version mismatch, paused/completed jobs) are
        discarded lazily.  Heap keys were computed at allocation time;
        ``Job.advance`` re-derives the same instant with slightly different
        floating-point operations, so keys within rounding noise of the
        minimum are *recomputed from live job state* and the true minimum
        returned — exactly the arithmetic of the legacy full scan, keeping
        the two modes byte-identical even when two jobs' completions tie to
        within accumulated ulp drift.
        """
        heap = self._completion_heap
        tied: List[Tuple[float, int, int]] = []
        best = math.inf
        first_key: Optional[float] = None
        while heap:
            key, job_id, version = heap[0]
            job = self._active.get(job_id)
            if (
                job is None
                or job.state is not JobState.RUNNING
                or self._alloc_version[job_id] != version
            ):
                heapq.heappop(heap)
                continue
            if first_key is None:
                first_key = key
            elif key > first_key + 1e-9 * max(1.0, abs(first_key)):
                break
            tied.append(heapq.heappop(heap))
            best = min(best, job.predicted_completion(self._now))
        for entry in tied:
            heapq.heappush(heap, entry)
        return best

    # ----------------------------------------------------------- event loop --
    def _has_active_jobs(self) -> bool:
        if self.config.legacy_event_loop:
            return any(job.is_active() for job in self._jobs.values())
        return bool(self._active)

    def _next_event_time(self) -> float:
        if self.config.legacy_event_loop:
            next_time = self._queue.peek_time()
            for job in self._jobs.values():
                if job.state is JobState.RUNNING:
                    next_time = min(next_time, job.predicted_completion(self._now))
            return next_time
        return min(self._queue.peek_time(), self._next_completion_time())

    def _advance_to(self, next_time: float) -> None:
        duration = next_time - self._now
        if duration < -1e-6:
            raise SimulationError(
                f"time went backwards: {self._now:.3f} -> {next_time:.3f}"
            )
        duration = max(0.0, duration)
        if duration > 0.0:
            if self.config.legacy_event_loop:
                busy_nodes = set()
                for job in self._jobs.values():
                    if job.state is JobState.RUNNING and job.assignment is not None:
                        busy_nodes.update(job.assignment)
                idle = self.cluster.num_nodes - len(busy_nodes)
                self._idle_node_seconds += idle * duration
                if self._busy_node_stats is not None:
                    self._busy_node_stats.add_segment(
                        float(len(busy_nodes)), duration
                    )
                for job in self._jobs.values():
                    job.advance(duration)
            else:
                # Down nodes are neither busy nor idle: they draw no power
                # and host no work, so they drop out of the idle integral.
                idle = self.cluster.num_nodes - self._busy_count - len(self._down_nodes)
                self._idle_node_seconds += idle * duration
                if self._busy_node_stats is not None:
                    self._busy_node_stats.add_segment(
                        float(self._busy_count), duration
                    )
                for job in self._active.values():
                    job.advance(duration)
            if self._avail_node_stats is not None:
                up_cpu = self._up_cpu_capacity()
                self._avail_node_stats.add_segment(up_cpu, duration)
                if self._avail_window_stats is not None:
                    self._record_window_segment(up_cpu, self._now, next_time)
            if self._node_power is not None:
                self._energy_joules += self._power_current * duration
        self._now = next_time

    def _up_cpu_capacity(self) -> float:
        """Aggregate CPU capacity of the nodes currently up."""
        if not self._down_nodes:
            return self._total_cpu_capacity
        return self._total_cpu_capacity - sum(
            self.cluster.cpu_capacity(node) for node in sorted(self._down_nodes)
        )

    def _record_window_segment(self, up_cpu: float, start: float, end: float) -> None:
        """Fold one constant-capacity segment into the window accumulators.

        Windows are ``availability_window_seconds`` wide, anchored at the
        first submission; a segment spanning a boundary is split so each
        window integrates exactly its own share.
        """
        width = self.config.availability_window_seconds
        assert width is not None and self._avail_window_stats is not None
        origin = self._first_submit
        t = start
        while t < end - 1e-12:
            index = int((t - origin) // width)
            boundary = origin + (index + 1) * width
            seg_end = end if boundary <= t else min(end, boundary)
            stats = self._avail_window_stats.get(index)
            if stats is None:
                stats = self._window_accumulator_factory()
                self._avail_window_stats[index] = stats
            stats.add_segment(up_cpu, seg_end - t)
            t = seg_end

    def _collect_triggers(self, now: float):
        submitted: List[int] = []
        completed: List[int] = []
        is_wakeup = False
        self._evicted_now = []
        self._node_down_now = False
        # Completions are detected from job state, not from queued events.
        for job in self._iter_jobs():
            if job.state is JobState.RUNNING and job.remaining_work <= 0.0:
                self._complete_job(job)
                completed.append(job.job_id)
        events = self._queue.pop_until(now)
        while events:
            for event in events:
                if event.event_type is EventType.JOB_SUBMISSION:
                    assert event.job_id is not None
                    if event.job_id in self._cancelled_pending:
                        # Online cancel raced the submission: the job was
                        # withdrawn before it ever arrived, so drop the event
                        # and its tables without invoking the scheduler.
                        self._cancelled_pending.discard(event.job_id)
                        self._pending_submissions -= 1
                        del self._jobs[event.job_id]
                        del self._arrived[event.job_id]
                        self._seq.pop(event.job_id, None)
                        self._alloc_version.pop(event.job_id, None)
                        continue
                    self._activate(event.job_id)
                    self._pending_submissions -= 1
                    submitted.append(event.job_id)
                    for observer in self._observers:
                        observer.on_job_submitted(now, self._jobs[event.job_id].spec)
                    if self._streaming:
                        # Lazy admission keeps exactly one unarrived spec
                        # queued; replacing it may queue another event <= now
                        # (same-timestamp submissions), hence the outer loop.
                        self._admit_next_from_stream()
                elif event.event_type is EventType.NODE_DOWN:
                    assert event.node is not None
                    self._apply_node_down(event.node)
                    self._node_down_now = True
                    is_wakeup = True
                    for observer in self._observers:
                        observer.on_node_down(now, event.node)
                elif event.event_type is EventType.NODE_UP:
                    assert event.node is not None
                    if event.node in self._down_nodes:
                        self._down_nodes.discard(event.node)
                        if self._node_power is not None:
                            # A repaired node comes back idle.
                            self._power_current += self._node_power[event.node][1]
                    is_wakeup = True
                    for observer in self._observers:
                        observer.on_node_up(now, event.node)
                elif event.event_type is EventType.SCHEDULER_WAKEUP:
                    is_wakeup = True
            events = self._queue.pop_until(now) if self._streaming else []
        return submitted, completed, is_wakeup

    def _complete_job(self, job: Job) -> None:
        if job.assignment is not None:
            self._release_nodes(job.assignment)
        job.state = JobState.COMPLETED
        job.completion_time = self._now
        job.assignment = None
        job.current_yield = 0.0
        self._deactivate(job.job_id)
        self._last_completion = max(self._last_completion, self._now)
        record = JobRecord(
            spec=job.spec,
            first_start_time=(
                job.first_start_time
                if job.first_start_time is not None
                else self._now
            ),
            completion_time=self._now,
            preemptions=job.preemption_count,
            migrations=job.migration_count,
        )
        if self._job_stats is not None:
            # Streaming metrics: fold the outcome into the accumulators and
            # drop the record — result memory stays O(accumulators).
            self._job_stats.observe(
                job_id=record.spec.job_id,
                stretch=record.stretch,
                turnaround=record.turnaround_time,
                wait=record.wait_time,
            )
            if self._goodput_window_stats is not None:
                width = self.config.availability_window_seconds
                assert width is not None
                spec = record.spec
                index = int((self._now - self._first_submit) // width)
                window_stats = self._goodput_window_stats.get(index)
                if window_stats is None:
                    window_stats = self._goodput_window_stats[index] = [0.0, 0.0]
                window_stats[0] += 1.0
                window_stats[1] += (
                    spec.num_tasks * spec.cpu_need * spec.execution_time
                )
        else:
            self._records.append(record)
        if self._streaming:
            # Evict the finished job from every per-job table so streaming
            # runs keep O(active jobs) state resident.  Safe: schedulers only
            # see active jobs, stale completion-heap entries are discarded
            # before their version is consulted, and the record above already
            # captured everything the results need.
            job_id = job.job_id
            del self._jobs[job_id]
            del self._arrived[job_id]
            self._seq.pop(job_id, None)
            self._alloc_version.pop(job_id, None)
        for observer in self._observers:
            observer.on_job_completed(self._now, job.spec)

    # ------------------------------------------------------------ scheduling --
    def _build_context(
        self, submitted: List[int], completed: List[int], is_wakeup: bool
    ) -> SchedulingContext:
        clairvoyant = bool(getattr(self.scheduler, "requires_runtime_estimates", False))
        views: Dict[int, JobView] = {}
        for job in self._iter_jobs():
            job_id = job.job_id
            if not self._arrived[job_id] or not job.is_active():
                continue
            views[job_id] = JobView(
                job_id=job_id,
                num_tasks=job.spec.num_tasks,
                cpu_need=job.spec.cpu_need,
                mem_requirement=job.spec.mem_requirement,
                submit_time=job.spec.submit_time,
                state=job.state,
                virtual_time=job.virtual_time,
                flow_time=job.flow_time(self._now),
                backoff_count=job.backoff_count,
                assignment=job.assignment,
                current_yield=job.current_yield,
                last_assignment=job.last_assignment,
                runtime_estimate=job.spec.execution_time if clairvoyant else None,
                remaining_runtime_estimate=(
                    job.remaining_work + job.penalty_remaining if clairvoyant else None
                ),
            )
        return SchedulingContext(
            time=self._now,
            cluster=self.cluster,
            jobs=views,
            submitted=[j for j in submitted if j in views],
            completed=completed,
            is_wakeup=is_wakeup,
            down_nodes=frozenset(self._down_nodes),
            evicted=list(self._evicted_now),
            repack_requested=self.config.repack_on_failure and self._node_down_now,
        )

    def _invoke_scheduler(
        self, submitted: List[int], completed: List[int], is_wakeup: bool
    ) -> AllocationDecision:
        tel = self._telemetry
        if tel is None:
            context = self._build_context(submitted, completed, is_wakeup)
            start = _perf_counter()
            decision = self.scheduler.schedule(context)
            elapsed = _perf_counter() - start
        else:
            context = self._build_context(submitted, completed, is_wakeup)
            # The sink is the thread's ambient telemetry while scheduling,
            # so packers (``@timed_phase``) and scheduler internals can time
            # themselves without protocol plumbing.  ``_run_event_loop``
            # installs it for whole runs; the online driver (serve layer)
            # reaches here without that wrapper, so push per invocation then.
            if current_telemetry() is tel:
                start = _perf_counter()
                try:
                    decision = self.scheduler.schedule(context)
                finally:
                    elapsed = _perf_counter() - start
            else:
                previous = push_telemetry(tel)
                start = _perf_counter()
                try:
                    decision = self.scheduler.schedule(context)
                finally:
                    elapsed = _perf_counter() - start
                    push_telemetry(previous)
            tel.record_phase("engine.schedule", start, start + elapsed)
            tel.count("engine.scheduler_invocations")
            tel.gauge("engine.active_jobs", float(len(context.jobs)))
        if self.config.record_scheduler_times:
            if self._scheduler_time_stats is not None:
                self._scheduler_time_stats.add(elapsed)
                self._scheduler_job_count_stats.add(len(context.jobs))
            else:
                self._scheduler_times.append(elapsed)
                self._scheduler_job_counts.append(len(context.jobs))
        if decision is None:
            decision = AllocationDecision()
        specs = {job_id: self._jobs[job_id].spec for job_id in context.jobs}
        # With down nodes marked in the validation tally, an allocation on a
        # failed node raises the same InfeasibleAllocationError a capacity
        # violation would — schedulers cannot place work on dead nodes.
        usage = (
            self.cluster.usage(self._down_nodes) if self._down_nodes else None
        )
        validate_decision(decision, specs, self.cluster, usage=usage)
        for job_id in decision.running:
            if self._jobs[job_id].state is JobState.COMPLETED:
                raise SimulationError(
                    f"scheduler allocated resources to completed job {job_id}"
                )
        return decision

    def _charge_overhead(self, event: str, job: Job) -> None:
        """Charge the configured overhead model for ``event`` on ``job``.

        The cost lands on ``penalty_remaining`` (wall-clock seconds of zero
        progress, drained first like the paper's resume penalty) and in the
        run's cost tally.  No-op without an overhead model — the default
        path stays byte-identical.
        """
        model = self.config.overhead_model
        if model is None:
            return
        nodes = job.assignment if job.assignment is not None else job.last_assignment
        seconds = model.overhead_seconds(
            event,
            job.spec,
            self.cluster,
            nodes=nodes,
            node_classes=self.config.node_class_names,
        )
        if seconds > 0.0:
            job.penalty_remaining += seconds
            self._costs.record_overhead(seconds)

    def _apply_decision(self, decision: AllocationDecision) -> None:
        penalty = self.config.penalty_model
        for job in self._iter_jobs():
            job_id = job.job_id
            if not self._arrived[job_id] or not job.is_active():
                continue
            new_alloc = decision.running.get(job_id)
            if job.state is JobState.RUNNING:
                assert job.assignment is not None
                if new_alloc is None:
                    # preemption: pause the job, memory goes to storage
                    self._costs.record_preemption(
                        penalty.preemption_bytes_gb(job.spec, self.cluster)
                    )
                    job.preemption_count += 1
                    # Charged while the assignment is still live, so
                    # per-node-class models see the nodes the state leaves.
                    self._charge_overhead("preemption", job)
                    self._release_nodes(job.assignment)
                    job.last_assignment = job.assignment
                    job.assignment = None
                    job.current_yield = 0.0
                    job.state = JobState.PAUSED
                    self._note_allocation_change(job)
                    for observer in self._observers:
                        observer.on_job_preempted(self._now, job.spec)
                elif sorted(new_alloc.nodes) != sorted(job.assignment):
                    # migration: pause/resume through storage within this event
                    self._costs.record_migration(
                        penalty.migration_bytes_gb(job.spec, self.cluster)
                    )
                    job.migration_count += 1
                    job.penalty_remaining += penalty.migration_penalty(job.spec)
                    self._charge_overhead("migration", job)
                    old_nodes = job.assignment
                    self._release_nodes(old_nodes)
                    self._acquire_nodes(new_alloc.nodes)
                    job.last_assignment = job.assignment
                    job.assignment = new_alloc.nodes
                    job.current_yield = new_alloc.yield_value
                    self._note_allocation_change(job)
                    for observer in self._observers:
                        observer.on_job_migrated(self._now, job.spec, old_nodes, new_alloc)
                else:
                    # same nodes: only the CPU fraction changes, no overhead
                    old_yield = job.current_yield
                    job.current_yield = new_alloc.yield_value
                    if old_yield != new_alloc.yield_value:
                        self._note_allocation_change(job)
                        for observer in self._observers:
                            observer.on_yield_changed(
                                self._now, job.spec, old_yield, new_alloc.yield_value
                            )
            elif job.state is JobState.PENDING:
                if new_alloc is not None:
                    job.state = JobState.RUNNING
                    job.assignment = new_alloc.nodes
                    job.current_yield = new_alloc.yield_value
                    self._acquire_nodes(new_alloc.nodes)
                    self._note_allocation_change(job)
                    if job.first_start_time is None:
                        job.first_start_time = self._now
                    for observer in self._observers:
                        observer.on_job_started(self._now, job.spec, new_alloc)
            elif job.state is JobState.PAUSED:
                if new_alloc is not None:
                    job.state = JobState.RUNNING
                    job.penalty_remaining += penalty.resume_penalty(job.spec)
                    job.assignment = new_alloc.nodes
                    job.current_yield = new_alloc.yield_value
                    self._acquire_nodes(new_alloc.nodes)
                    self._charge_overhead("resume", job)
                    self._note_allocation_change(job)
                    for observer in self._observers:
                        observer.on_job_resumed(self._now, job.spec, new_alloc)
        if self._observers:
            running_now: Dict[int, JobAllocation] = {}
            for job in self._iter_jobs():
                if job.state is JobState.RUNNING and job.assignment is not None:
                    running_now[job.job_id] = JobAllocation.create(
                        job.assignment, job.current_yield
                    )
            for observer in self._observers:
                observer.on_allocation_applied(self._now, running_now)

    # --------------------------------------------------------------- results --
    def _compute_makespan(self) -> float:
        if self._job_stats is not None:
            if self._job_stats.count == 0:
                return 0.0
            return max(0.0, self._last_completion - self._first_submit)
        if not self._records:
            return 0.0
        last_completion = max(record.completion_time for record in self._records)
        return max(0.0, last_completion - self._first_submit)


def _is_batch(scheduler) -> bool:
    """True for schedulers that allocate whole nodes and never co-locate."""
    return bool(getattr(scheduler, "exclusive_node_allocation", False))


def _eligible_batch_nodes(cluster: Cluster, spec: JobSpec, scheduler) -> int:
    """Nodes of a heterogeneous cluster that can host one task of ``spec``.

    Memory-eligible always; schedulers that give each task a whole node's
    CPU (``allocates_full_cpu``, the FCFS/backfilling family) additionally
    need the node's CPU capacity to cover the task's need at yield 1.0.
    """
    from .cluster import CAPACITY_EPSILON

    need_cpu = bool(getattr(scheduler, "allocates_full_cpu", False))
    count = 0
    for node in range(cluster.num_nodes):
        if cluster.mem_capacity(node) + CAPACITY_EPSILON < spec.mem_requirement:
            continue
        if need_cpu and cluster.cpu_capacity(node) + CAPACITY_EPSILON < spec.cpu_need:
            continue
        count += 1
    return count


def _max_hostable_tasks(cluster: Cluster, mem_requirement: float) -> int:
    """Most tasks of the given memory footprint an *empty* cluster can host.

    A node of memory capacity ``c`` hosts at most ``floor(c / m)`` tasks of
    requirement ``m`` (no swapping).  A job wider than the sum over all
    nodes can never be placed by any scheduler, whatever the yield — on
    homogeneous clusters that only happens for jobs wider than the cluster
    allows, but small-memory node classes make it easy to hit.
    """
    from .cluster import CAPACITY_EPSILON

    if mem_requirement <= 0.0:
        return cluster.num_nodes * 10**9
    if cluster.mem_capacities is None:
        return cluster.num_nodes * int((1.0 + CAPACITY_EPSILON) / mem_requirement)
    return sum(
        int((capacity + CAPACITY_EPSILON) / mem_requirement)
        for capacity in cluster.mem_capacities
    )
