"""Runtime invariant checking for simulations.

The engine already validates every allocation decision (arity, node range,
memory and CPU capacity).  :class:`InvariantCheckingObserver` adds a second,
independent line of defence used in tests and when developing new schedulers:
it watches the simulation through the observer interface and re-derives the
global invariants from scratch, so a bug in the engine's own bookkeeping (or
in a scheduler that mutates state it should not) is caught as close to its
origin as possible.

Checked invariants:

* **Lifecycle** — a job is submitted exactly once, never starts before its
  submission, never completes before it starts, and is never touched again
  after completing.
* **Capacity** — at every event, the sum of memory requirements on each node
  stays within the node's memory capacity and the sum of allocated CPU
  fractions stays within its CPU capacity (1.0 × 1.0 on homogeneous
  clusters, the per-node vectors of :mod:`repro.platform` otherwise; both
  with the engine's epsilon).
* **Yield bounds** — every running job's yield lies in ``(0, 1]``.
* **Clock** — observed event times never decrease.

Violations raise :class:`~repro.exceptions.SimulationError` immediately, which
makes the offending event easy to pinpoint under pytest.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..exceptions import SimulationError
from .allocation import JobAllocation
from .cluster import CAPACITY_EPSILON, Cluster
from .job import JobSpec
from .observers import SimulationObserver

__all__ = ["InvariantCheckingObserver"]


class InvariantCheckingObserver(SimulationObserver):
    """Observer that re-derives and enforces global simulation invariants."""

    def __init__(self) -> None:
        self.cluster: Optional[Cluster] = None
        self._specs: Dict[int, JobSpec] = {}
        self._submitted: Set[int] = set()
        self._started: Set[int] = set()
        self._completed: Set[int] = set()
        self._last_time = float("-inf")
        #: Number of events whose capacity checks passed (exposed for tests).
        self.checked_events = 0

    # -- lifecycle ---------------------------------------------------------------
    def on_simulation_start(self, cluster: Cluster, start_time: float) -> None:
        self.cluster = cluster
        self._specs = {}
        self._submitted = set()
        self._started = set()
        self._completed = set()
        self._last_time = start_time
        self.checked_events = 0

    def _advance_clock(self, time: float) -> None:
        if time < self._last_time - 1e-9:
            raise SimulationError(
                f"observed time went backwards: {self._last_time:.3f} -> {time:.3f}"
            )
        self._last_time = max(self._last_time, time)

    def on_job_submitted(self, time: float, spec: JobSpec) -> None:
        self._advance_clock(time)
        if spec.job_id in self._submitted:
            raise SimulationError(f"job {spec.job_id} submitted twice")
        if time < spec.submit_time - 1e-6:
            raise SimulationError(
                f"job {spec.job_id} submitted at t={time:.3f}, before its "
                f"release time {spec.submit_time:.3f}"
            )
        self._submitted.add(spec.job_id)
        self._specs[spec.job_id] = spec

    def on_job_started(self, time: float, spec: JobSpec, allocation: JobAllocation) -> None:
        self._advance_clock(time)
        self._require_submitted(spec.job_id, "started")
        self._require_not_completed(spec.job_id, "started")
        if len(allocation.nodes) != spec.num_tasks:
            raise SimulationError(
                f"job {spec.job_id} started with {len(allocation.nodes)} tasks "
                f"instead of {spec.num_tasks}"
            )
        self._started.add(spec.job_id)

    def on_job_resumed(self, time: float, spec: JobSpec, allocation: JobAllocation) -> None:
        self._advance_clock(time)
        self._require_submitted(spec.job_id, "resumed")
        self._require_not_completed(spec.job_id, "resumed")

    def on_job_preempted(self, time: float, spec: JobSpec) -> None:
        self._advance_clock(time)
        self._require_submitted(spec.job_id, "preempted")
        self._require_not_completed(spec.job_id, "preempted")

    def on_job_migrated(
        self,
        time: float,
        spec: JobSpec,
        old_nodes: Tuple[int, ...],
        allocation: JobAllocation,
    ) -> None:
        self._advance_clock(time)
        self._require_submitted(spec.job_id, "migrated")
        self._require_not_completed(spec.job_id, "migrated")
        if sorted(old_nodes) == sorted(allocation.nodes):
            raise SimulationError(
                f"job {spec.job_id} reported as migrated onto the same node multiset"
            )

    def on_job_completed(self, time: float, spec: JobSpec) -> None:
        self._advance_clock(time)
        self._require_submitted(spec.job_id, "completed")
        if spec.job_id in self._completed:
            raise SimulationError(f"job {spec.job_id} completed twice")
        if spec.job_id not in self._started:
            raise SimulationError(
                f"job {spec.job_id} completed without ever having started"
            )
        self._completed.add(spec.job_id)

    # -- per-event capacity checks -------------------------------------------------
    def on_allocation_applied(self, time: float, running: Dict[int, JobAllocation]) -> None:
        self._advance_clock(time)
        if self.cluster is None:
            raise SimulationError("allocation applied before the simulation started")
        memory = [0.0] * self.cluster.num_nodes
        cpu = [0.0] * self.cluster.num_nodes
        for job_id, allocation in running.items():
            if job_id in self._completed:
                raise SimulationError(
                    f"completed job {job_id} still holds an allocation"
                )
            spec = self._specs.get(job_id)
            if spec is None:
                raise SimulationError(
                    f"running job {job_id} was never observed as submitted"
                )
            if not (0.0 < allocation.yield_value <= 1.0 + 1e-9):
                raise SimulationError(
                    f"job {job_id} runs at an out-of-range yield "
                    f"{allocation.yield_value}"
                )
            for node in allocation.nodes:
                if not (0 <= node < self.cluster.num_nodes):
                    raise SimulationError(
                        f"job {job_id} placed on node {node}, outside the cluster"
                    )
                memory[node] += spec.mem_requirement
                cpu[node] += spec.cpu_need * allocation.yield_value
        for node in range(self.cluster.num_nodes):
            if memory[node] > self.cluster.mem_capacity(node) + CAPACITY_EPSILON:
                raise SimulationError(
                    f"node {node} memory oversubscribed at t={time:.1f}: "
                    f"{memory[node]:.4f}"
                )
            if cpu[node] > self.cluster.cpu_capacity(node) + CAPACITY_EPSILON:
                raise SimulationError(
                    f"node {node} CPU oversubscribed at t={time:.1f}: {cpu[node]:.4f}"
                )
        self.checked_events += 1

    def on_simulation_end(self, time: float) -> None:
        self._advance_clock(time)
        unfinished = self._submitted - self._completed
        if unfinished:
            raise SimulationError(
                f"simulation ended with unfinished jobs: {sorted(unfinished)}"
            )

    # -- helpers -------------------------------------------------------------------
    def _require_submitted(self, job_id: int, action: str) -> None:
        if job_id not in self._submitted:
            raise SimulationError(f"job {job_id} {action} before being submitted")

    def _require_not_completed(self, job_id: int, action: str) -> None:
        if job_id in self._completed:
            raise SimulationError(f"job {job_id} {action} after completing")
