"""Job specifications and dynamic job state.

A *job* in the DFRS model (paper §II-B1) consists of one or more identical
*tasks* that must progress at the same rate.  Each task is characterised by

* a **memory requirement** — fraction of a node's memory, fixed for the whole
  execution, which must never be oversubscribed on a node, and
* a **CPU need** — fraction of a node's CPU resource the task would use if it
  ran alone on the node (dedicated mode).

A task allocated a CPU fraction smaller than its need runs proportionally
slower.  The ratio ``allocated / need`` is the task's **yield**; because all
tasks of a job receive identical fractions the job has a single yield.

The *execution time* stored in the specification is the time the job takes on
a dedicated cluster (yield 1.0 throughout).  It is used by the simulation
engine to decide when a job completes and by the (clairvoyant) batch
schedulers as a perfect runtime estimate.  DFRS schedulers never read it.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..exceptions import WorkloadError

__all__ = ["JobState", "JobSpec", "Job", "MINIMUM_YIELD"]

#: Smallest yield a scheduler may assign to a running job.  The paper's
#: DYNMCB8-STRETCH-PER heuristically assigns 0.01 "so that no job consumes
#: memory without making progress"; we use the same floor everywhere.
MINIMUM_YIELD = 0.01


class JobState(enum.Enum):
    """Lifecycle of a job inside the simulation."""

    #: Submitted but never yet allocated any resources.
    PENDING = "pending"
    #: Currently holds an allocation and makes progress (or pays a penalty).
    RUNNING = "running"
    #: Previously ran, currently preempted (saved to storage).
    PAUSED = "paused"
    #: All of its work has been performed.
    COMPLETED = "completed"


@dataclass(frozen=True)
class JobSpec:
    """Immutable description of a job as found in a workload trace.

    Parameters
    ----------
    job_id:
        Unique non-negative identifier within a workload.
    submit_time:
        Submission (release) time in seconds from the start of the trace.
    num_tasks:
        Number of parallel tasks; every task must be hosted by some node and a
        node may host several tasks of the same job provided memory permits.
    cpu_need:
        Per-task CPU need as a fraction of one node's CPU resource, in
        ``(0, 1]``.
    mem_requirement:
        Per-task memory requirement as a fraction of one node's memory, in
        ``(0, 1]``.
    execution_time:
        Job duration, in seconds, on a dedicated cluster (yield 1.0).
    """

    job_id: int
    submit_time: float
    num_tasks: int
    cpu_need: float
    mem_requirement: float
    execution_time: float

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise WorkloadError(f"job_id must be non-negative, got {self.job_id}")
        if not math.isfinite(self.submit_time) or self.submit_time < 0:
            raise WorkloadError(
                f"job {self.job_id}: submit_time must be finite and >= 0, "
                f"got {self.submit_time}"
            )
        if self.num_tasks < 1:
            raise WorkloadError(
                f"job {self.job_id}: num_tasks must be >= 1, got {self.num_tasks}"
            )
        if not (0.0 < self.cpu_need <= 1.0):
            raise WorkloadError(
                f"job {self.job_id}: cpu_need must be in (0, 1], got {self.cpu_need}"
            )
        if not (0.0 < self.mem_requirement <= 1.0):
            raise WorkloadError(
                f"job {self.job_id}: mem_requirement must be in (0, 1], "
                f"got {self.mem_requirement}"
            )
        if not math.isfinite(self.execution_time) or self.execution_time <= 0:
            raise WorkloadError(
                f"job {self.job_id}: execution_time must be finite and > 0, "
                f"got {self.execution_time}"
            )

    @property
    def total_cpu_need(self) -> float:
        """CPU need summed over all tasks (used by the greedy yield heuristic)."""
        return self.num_tasks * self.cpu_need

    @property
    def total_memory(self) -> float:
        """Memory requirement summed over all tasks, in node-memory units."""
        return self.num_tasks * self.mem_requirement

    def dedicated_work(self) -> float:
        """Total work of the job expressed in dedicated-time seconds."""
        return self.execution_time


@dataclass
class Job:
    """Dynamic state of a job inside the simulation engine.

    The engine is the only component that mutates instances of this class;
    schedulers observe jobs through read-only :class:`~repro.schedulers.base.
    JobView` snapshots.
    """

    spec: JobSpec
    state: JobState = JobState.PENDING
    #: Remaining work in dedicated-time seconds; drains at rate ``yield``.
    remaining_work: float = field(default=0.0)
    #: Integral of the yield since submission (paper §III-A).
    virtual_time: float = 0.0
    #: Wall-clock seconds of zero progress still owed due to rescheduling.
    penalty_remaining: float = 0.0
    #: Node index for each task while RUNNING, ``None`` otherwise.
    assignment: Optional[Tuple[int, ...]] = None
    #: Current yield while RUNNING (0.0 otherwise).
    current_yield: float = 0.0
    #: Node assignment held the last time the job ran (for resume bookkeeping).
    last_assignment: Optional[Tuple[int, ...]] = None
    first_start_time: Optional[float] = None
    completion_time: Optional[float] = None
    preemption_count: int = 0
    migration_count: int = 0
    #: Number of failed scheduling attempts (greedy bounded backoff).
    backoff_count: int = 0
    #: Execution-time-model multiplier on the dedicated work (1.0 = the
    #: trace is exact); set once at admission, before any progress is made.
    work_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.remaining_work == 0.0:
            self.remaining_work = self.scaled_work()

    def scaled_work(self) -> float:
        """Dedicated work under the execution-time model's multiplier."""
        work = self.spec.dedicated_work()
        if self.work_scale == 1.0:
            return work
        return work * self.work_scale

    # -- convenience accessors ------------------------------------------------
    @property
    def job_id(self) -> int:
        return self.spec.job_id

    @property
    def submit_time(self) -> float:
        return self.spec.submit_time

    def flow_time(self, now: float) -> float:
        """Time elapsed since submission (paper: "flow time")."""
        return max(0.0, now - self.spec.submit_time)

    def is_active(self) -> bool:
        """True while the job still has work to perform."""
        return self.state in (JobState.PENDING, JobState.RUNNING, JobState.PAUSED)

    def predicted_completion(self, now: float) -> float:
        """Completion instant under the current allocation, or ``+inf``.

        The job first pays any outstanding rescheduling penalty (zero
        progress) and then drains its remaining work at its current yield.
        """
        if self.state is JobState.COMPLETED:
            return self.completion_time if self.completion_time is not None else now
        if self.state is not JobState.RUNNING or self.current_yield <= 0.0:
            return math.inf
        completion = (
            now + self.penalty_remaining + self.remaining_work / self.current_yield
        )
        if completion <= now:
            # At large simulated times one float ulp can exceed the residual
            # work's drain time, making ``now + residual`` round back to
            # ``now``; the event loop would then spin at constant time without
            # ever completing the job.  Nudge the prediction one ulp into the
            # future so simulated time always advances (and the residual is
            # drained by that step).
            return math.nextafter(now, math.inf)
        return completion

    def advance(self, duration: float) -> None:
        """Advance the job by ``duration`` wall-clock seconds.

        Only RUNNING jobs make progress.  The outstanding penalty is drained
        first; the remainder of the interval accrues virtual time and reduces
        the remaining work at the current yield.
        """
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        if self.state is not JobState.RUNNING or duration == 0.0:
            return
        if self.penalty_remaining > 0.0:
            penalty_used = min(self.penalty_remaining, duration)
            self.penalty_remaining -= penalty_used
            duration -= penalty_used
        if duration <= 0.0:
            return
        self.virtual_time += self.current_yield * duration
        self.remaining_work -= self.current_yield * duration
        if self.remaining_work < 1e-9:
            self.remaining_work = 0.0

    def turnaround_time(self) -> float:
        """Turn-around (flow) time of a completed job."""
        if self.completion_time is None:
            raise ValueError(f"job {self.job_id} has not completed")
        return self.completion_time - self.spec.submit_time
