"""Allocation data structures shared by the engine and the schedulers.

An :class:`AllocationDecision` is the complete output of one scheduler
invocation: for every job that should be *running* after the event it gives a
:class:`JobAllocation` (one node per task plus a yield).  Jobs omitted from
the decision are left pending or paused.  The engine compares consecutive
decisions to detect starts, preemptions, resumes, and migrations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import AllocationError, InfeasibleAllocationError
from .cluster import CAPACITY_EPSILON, Cluster, ClusterUsage
from .job import MINIMUM_YIELD, JobSpec

__all__ = ["JobAllocation", "AllocationDecision", "validate_decision"]


@dataclass(frozen=True)
class JobAllocation:
    """Placement and CPU share of a single running job.

    Parameters
    ----------
    nodes:
        Node index hosting each task (``len(nodes) == num_tasks``).  A node
        may appear several times if it hosts several tasks of the job.
    yield_value:
        Fraction of its CPU *need* the job receives, identical for all tasks
        (paper §II-B1), in ``[MINIMUM_YIELD, 1]``.
    """

    nodes: Tuple[int, ...]
    yield_value: float

    def __post_init__(self) -> None:
        if not self.nodes:
            raise AllocationError("an allocation must place at least one task")
        if not (0.0 < self.yield_value <= 1.0 + 1e-9):
            raise AllocationError(
                f"yield must be in (0, 1], got {self.yield_value}"
            )

    @staticmethod
    def create(nodes: Sequence[int], yield_value: float) -> "JobAllocation":
        """Build an allocation, clamping the yield into ``[MINIMUM_YIELD, 1]``."""
        clamped = min(1.0, max(MINIMUM_YIELD, yield_value))
        return JobAllocation(tuple(int(n) for n in nodes), clamped)

    def with_yield(self, yield_value: float) -> "JobAllocation":
        """Copy of this allocation with a different yield."""
        return JobAllocation.create(self.nodes, yield_value)

    def node_multiset(self) -> Dict[int, int]:
        """Mapping node -> number of tasks of this job hosted on it."""
        counts: Dict[int, int] = {}
        for node in self.nodes:
            counts[node] = counts.get(node, 0) + 1
        return counts


@dataclass
class AllocationDecision:
    """Complete scheduler output for one event.

    Attributes
    ----------
    running:
        Mapping from job id to its :class:`JobAllocation`.  Any active job not
        present is paused (if it was running) or remains queued.
    wakeups:
        Absolute times at which the scheduler wants to be re-invoked even if
        no submission or completion occurs (periodic ticks, backoff retries).
    """

    running: Dict[int, JobAllocation] = field(default_factory=dict)
    wakeups: List[float] = field(default_factory=list)

    def set(self, job_id: int, nodes: Sequence[int], yield_value: float) -> None:
        """Convenience setter for ``running[job_id]``."""
        self.running[job_id] = JobAllocation.create(nodes, yield_value)

    def request_wakeup(self, time: float) -> None:
        """Ask the engine for a scheduler invocation at absolute ``time``."""
        self.wakeups.append(float(time))

    def job_ids(self) -> Iterable[int]:
        return self.running.keys()


def validate_decision(
    decision: AllocationDecision,
    specs: Mapping[int, JobSpec],
    cluster: Cluster,
    *,
    usage: Optional[ClusterUsage] = None,
) -> ClusterUsage:
    """Check a decision against job arities and node capacities.

    Returns the :class:`ClusterUsage` implied by the decision.  Raises
    :class:`AllocationError` for structural problems (unknown job, wrong task
    count, out-of-range node) and :class:`InfeasibleAllocationError` when a
    node's memory or allocated CPU capacity is exceeded.
    """
    tally = usage if usage is not None else cluster.usage()
    for job_id, alloc in decision.running.items():
        if job_id not in specs:
            raise AllocationError(f"decision references unknown job {job_id}")
        spec = specs[job_id]
        if len(alloc.nodes) != spec.num_tasks:
            raise AllocationError(
                f"job {job_id}: allocation places {len(alloc.nodes)} tasks but "
                f"the job has {spec.num_tasks}"
            )
        for node in alloc.nodes:
            if not (0 <= node < cluster.num_nodes):
                raise AllocationError(
                    f"job {job_id}: node index {node} out of range "
                    f"[0, {cluster.num_nodes})"
                )
        tally.add_job(
            alloc.nodes, spec.cpu_need, spec.mem_requirement, alloc.yield_value
        )
    return tally
