"""Performance metrics used in the paper's evaluation.

* **bounded stretch** (§II-B2): turn-around time over dedicated execution
  time, with both the numerator and the threshold bounded below by 30 s so
  that very short (often failing) jobs do not dominate the metric.
* **yield**: allocated CPU fraction over CPU need — the quantity the DFRS
  algorithms maximise (min-yield) as a proxy for the stretch.
* **degradation factor** (§V): per instance, the ratio of an algorithm's
  maximum stretch to the best maximum stretch achieved by any algorithm on
  that instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence

import numpy as np

__all__ = [
    "STRETCH_BOUND_SECONDS",
    "bounded_stretch",
    "raw_stretch",
    "job_yield",
    "degradation_factors",
    "DegradationStats",
    "aggregate_degradation",
]

#: Threshold of the bounded stretch (and of the priority function numerator).
STRETCH_BOUND_SECONDS = 30.0


def raw_stretch(turnaround_time: float, dedicated_time: float) -> float:
    """Classical (unbounded) stretch: turn-around over dedicated time."""
    if turnaround_time < 0:
        raise ValueError(f"turnaround_time must be >= 0, got {turnaround_time}")
    if dedicated_time <= 0:
        raise ValueError(f"dedicated_time must be > 0, got {dedicated_time}")
    return turnaround_time / dedicated_time


def bounded_stretch(
    turnaround_time: float,
    dedicated_time: float,
    bound: float = STRETCH_BOUND_SECONDS,
) -> float:
    """Bounded stretch with the paper's 30-second threshold.

    Both the turn-around time and the dedicated time are replaced by
    ``max(value, bound)``, which caps the stretch of very short jobs at a
    meaningful value while leaving long jobs untouched.
    """
    if turnaround_time < 0:
        raise ValueError(f"turnaround_time must be >= 0, got {turnaround_time}")
    if dedicated_time <= 0:
        raise ValueError(f"dedicated_time must be > 0, got {dedicated_time}")
    if bound <= 0:
        raise ValueError(f"bound must be > 0, got {bound}")
    return max(turnaround_time, bound) / max(dedicated_time, bound)


def job_yield(allocated_cpu_fraction: float, cpu_need: float) -> float:
    """Yield of a task: allocated CPU fraction over CPU need (§II-B2)."""
    if cpu_need <= 0:
        raise ValueError(f"cpu_need must be > 0, got {cpu_need}")
    if allocated_cpu_fraction < 0:
        raise ValueError(
            f"allocated_cpu_fraction must be >= 0, got {allocated_cpu_fraction}"
        )
    return allocated_cpu_fraction / cpu_need


def degradation_factors(
    max_stretch_by_algorithm: Mapping[str, float]
) -> Dict[str, float]:
    """Per-algorithm degradation factors for one instance.

    The degradation factor of an algorithm is its maximum stretch divided by
    the smallest maximum stretch achieved by any algorithm on the same
    instance; the best algorithm therefore gets exactly 1.0.
    """
    if not max_stretch_by_algorithm:
        return {}
    values = list(max_stretch_by_algorithm.values())
    for name, value in max_stretch_by_algorithm.items():
        if value <= 0:
            raise ValueError(f"algorithm {name}: max stretch must be > 0, got {value}")
    best = min(values)
    return {name: value / best for name, value in max_stretch_by_algorithm.items()}


@dataclass(frozen=True)
class DegradationStats:
    """Average / standard deviation / maximum of degradation factors."""

    average: float
    std: float
    maximum: float
    count: int

    def as_row(self) -> List[float]:
        return [self.average, self.std, self.maximum]


def aggregate_degradation(values: Sequence[float]) -> DegradationStats:
    """Aggregate per-instance degradation factors as in Table I."""
    if not values:
        return DegradationStats(0.0, 0.0, 0.0, 0)
    array = np.asarray(values, dtype=float)
    return DegradationStats(
        average=float(array.mean()),
        std=float(array.std(ddof=0)),
        maximum=float(array.max()),
        count=int(array.size),
    )
