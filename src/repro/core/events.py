"""Event types and the simulation event queue.

The engine is event driven: between two consecutive events every running job
has a constant yield, so job progress can be integrated analytically.  Events
are job submissions, job completions, and scheduler wake-ups (periodic ticks
and backoff retries).  Completions are not stored in the queue — they are
recomputed from job state whenever allocations change — so the queue never
needs invalidation.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["EventType", "Event", "EventQueue"]


class EventType(enum.Enum):
    """Kinds of simulation events, ordered by processing priority at a tick."""

    #: A job's work reached zero (resources are released before scheduling).
    JOB_COMPLETION = "completion"
    #: A node became unavailable (platform failure trace).
    NODE_DOWN = "node-down"
    #: A previously failed node was repaired (platform failure trace).
    NODE_UP = "node-up"
    #: A new job enters the system.
    JOB_SUBMISSION = "submission"
    #: The scheduler asked to be re-invoked (periodic tick or backoff retry).
    SCHEDULER_WAKEUP = "wakeup"


#: Processing order of simultaneous events: completions free resources first,
#: then node availability changes apply (downs evict before ups restore, so
#: the scheduler sees a consistent platform), then submissions are admitted,
#: then wake-ups fire.  Only the relative order matters; the pre-existing
#: types keep their relative order, so default-mode runs are unchanged.
_TYPE_ORDER = {
    EventType.JOB_COMPLETION: 0,
    EventType.NODE_DOWN: 1,
    EventType.NODE_UP: 2,
    EventType.JOB_SUBMISSION: 3,
    EventType.SCHEDULER_WAKEUP: 4,
}


@dataclass(frozen=True, order=False)
class Event:
    """A single simulation event.

    ``job_id`` is set for submissions and completions, ``None`` otherwise;
    ``node`` is set for node availability events, ``None`` otherwise.
    """

    time: float
    event_type: EventType
    job_id: Optional[int] = None
    node: Optional[int] = None

    def sort_key(self) -> Tuple[float, int, int]:
        return (self.time, _TYPE_ORDER[self.event_type], self.job_id or -1)


class EventQueue:
    """Min-heap of future events keyed by (time, type order, insertion order)."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, event: Event) -> None:
        """Insert an event."""
        if not math.isfinite(event.time):
            raise ValueError(f"event time must be finite, got {event.time}")
        heapq.heappush(
            self._heap,
            (event.time, _TYPE_ORDER[event.event_type], next(self._counter), event),
        )

    def peek_time(self) -> float:
        """Time of the earliest queued event, ``+inf`` if the queue is empty."""
        return self._heap[0][0] if self._heap else math.inf

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)[3]

    def pop_until(self, time: float) -> List[Event]:
        """Remove and return every event with ``event.time <= time``."""
        events: List[Event] = []
        while self._heap and self._heap[0][0] <= time + 1e-12:
            events.append(self.pop())
        return events
