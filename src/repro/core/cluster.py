"""Homogeneous cluster model.

The paper (§II-B1) targets a homogeneous cluster with a switched interconnect
and network-attached storage.  Every node exposes two resource dimensions:

* **CPU** — an arbitrarily divisible resource normalised to 1.0 per node.  A
  multi-core node is treated as a single fluid CPU resource (the Xen credit
  scheduler abstraction, §II-A); oversubscription of *needs* is allowed but
  the sum of *allocated* fractions must stay within 1.0.
* **Memory** — normalised to 1.0 per node; the sum of the memory requirements
  of the tasks placed on a node must never exceed 1.0 (no swapping, §II-B1).

:class:`Cluster` is a small immutable description; :class:`ClusterUsage` is a
mutable tally used by the engine and the schedulers to validate and construct
allocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError, InfeasibleAllocationError

__all__ = ["Cluster", "ClusterUsage", "CAPACITY_EPSILON"]

#: Tolerance used when checking capacity constraints, to absorb the
#: floating-point error accumulated by yield binary searches.
CAPACITY_EPSILON = 1e-6


@dataclass(frozen=True)
class Cluster:
    """Description of a homogeneous cluster.

    Parameters
    ----------
    num_nodes:
        Number of physical nodes.
    cores_per_node:
        Number of cores per node.  Only used by workload annotation (a
        sequential task can use at most ``1/cores_per_node`` of the node CPU)
        and by reporting; the scheduling model treats the CPU as fluid.
    node_memory_gb:
        Physical memory per node in GB, used to convert memory fractions into
        bytes for the preemption/migration bandwidth accounting of Table II.
    """

    num_nodes: int
    cores_per_node: int = 4
    node_memory_gb: float = 8.0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.cores_per_node < 1:
            raise ConfigurationError(
                f"cores_per_node must be >= 1, got {self.cores_per_node}"
            )
        if self.node_memory_gb <= 0:
            raise ConfigurationError(
                f"node_memory_gb must be > 0, got {self.node_memory_gb}"
            )

    @property
    def node_ids(self) -> range:
        """Iterable of valid node indices."""
        return range(self.num_nodes)

    def sequential_cpu_need(self) -> float:
        """CPU need of a CPU-bound sequential task on this cluster (§IV-C)."""
        return 1.0 / self.cores_per_node

    def usage(self) -> "ClusterUsage":
        """Return a fresh, empty usage tally for this cluster."""
        return ClusterUsage(self)


class ClusterUsage:
    """Mutable per-node CPU and memory usage tally.

    CPU usage is tracked both as *allocated fraction* (needs × yield, which
    must stay ≤ 1) and as *load* (sum of CPU needs, which may exceed 1 and is
    the quantity Λ used by the GREEDY yield rule).
    """

    __slots__ = ("cluster", "_cpu_alloc", "_cpu_load", "_memory", "_tasks")

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        n = cluster.num_nodes
        self._cpu_alloc = np.zeros(n, dtype=float)
        self._cpu_load = np.zeros(n, dtype=float)
        self._memory = np.zeros(n, dtype=float)
        self._tasks = np.zeros(n, dtype=int)

    # -- inspection -----------------------------------------------------------
    def cpu_allocated(self, node: int) -> float:
        """Sum of allocated CPU fractions on ``node``."""
        return float(self._cpu_alloc[node])

    def cpu_load(self, node: int) -> float:
        """Sum of CPU *needs* of the tasks placed on ``node`` (may exceed 1)."""
        return float(self._cpu_load[node])

    def memory_used(self, node: int) -> float:
        """Sum of memory requirements of the tasks placed on ``node``."""
        return float(self._memory[node])

    def memory_free(self, node: int) -> float:
        """Remaining memory fraction on ``node``."""
        return 1.0 - float(self._memory[node])

    def cpu_free(self, node: int) -> float:
        """Remaining allocatable CPU fraction on ``node``."""
        return 1.0 - float(self._cpu_alloc[node])

    def task_count(self, node: int) -> int:
        """Number of tasks currently placed on ``node``."""
        return int(self._tasks[node])

    def max_cpu_load(self) -> float:
        """Maximum CPU load over all nodes (Λ in the GREEDY yield rule)."""
        return float(self._cpu_load.max()) if self.cluster.num_nodes else 0.0

    def busy_nodes(self) -> int:
        """Number of nodes hosting at least one task."""
        return int(np.count_nonzero(self._tasks))

    def idle_nodes(self) -> int:
        """Number of nodes hosting no task (candidates for power-down)."""
        return self.cluster.num_nodes - self.busy_nodes()

    def memory_vector(self) -> np.ndarray:
        """Copy of the per-node memory usage vector."""
        return self._memory.copy()

    def cpu_load_vector(self) -> np.ndarray:
        """Copy of the per-node CPU load (sum of needs) vector."""
        return self._cpu_load.copy()

    def cpu_alloc_vector(self) -> np.ndarray:
        """Copy of the per-node allocated CPU fraction vector."""
        return self._cpu_alloc.copy()

    # -- mutation -------------------------------------------------------------
    def can_fit_memory(self, node: int, mem_requirement: float) -> bool:
        """True if a task of the given memory requirement fits on ``node``."""
        return self._memory[node] + mem_requirement <= 1.0 + CAPACITY_EPSILON

    def add_task(
        self,
        node: int,
        cpu_need: float,
        mem_requirement: float,
        yield_value: float,
        *,
        check: bool = True,
    ) -> None:
        """Place one task on ``node``.

        With ``check=True`` (default) the memory and allocated-CPU capacity
        constraints are enforced and :class:`InfeasibleAllocationError` is
        raised on violation.
        """
        cpu_fraction = cpu_need * yield_value
        if check:
            if self._memory[node] + mem_requirement > 1.0 + CAPACITY_EPSILON:
                raise InfeasibleAllocationError(
                    f"node {node}: memory {self._memory[node]:.4f} + "
                    f"{mem_requirement:.4f} exceeds capacity"
                )
            if self._cpu_alloc[node] + cpu_fraction > 1.0 + CAPACITY_EPSILON:
                raise InfeasibleAllocationError(
                    f"node {node}: CPU allocation {self._cpu_alloc[node]:.4f} + "
                    f"{cpu_fraction:.4f} exceeds capacity"
                )
        self._memory[node] += mem_requirement
        self._cpu_alloc[node] += cpu_fraction
        self._cpu_load[node] += cpu_need
        self._tasks[node] += 1

    def remove_task(
        self, node: int, cpu_need: float, mem_requirement: float, yield_value: float
    ) -> None:
        """Remove one previously placed task from ``node``."""
        self._memory[node] -= mem_requirement
        self._cpu_alloc[node] -= cpu_need * yield_value
        self._cpu_load[node] -= cpu_need
        self._tasks[node] -= 1
        # Clamp tiny negative residues from floating point arithmetic.
        if -1e-9 < self._memory[node] < 0.0:
            self._memory[node] = 0.0
        if -1e-9 < self._cpu_alloc[node] < 0.0:
            self._cpu_alloc[node] = 0.0
        if -1e-9 < self._cpu_load[node] < 0.0:
            self._cpu_load[node] = 0.0
        if self._tasks[node] < 0:
            raise InfeasibleAllocationError(
                f"node {node}: removed more tasks than were placed"
            )

    def add_job(
        self,
        assignment: Sequence[int],
        cpu_need: float,
        mem_requirement: float,
        yield_value: float,
        *,
        check: bool = True,
    ) -> None:
        """Place all tasks of a job according to ``assignment``."""
        placed: List[int] = []
        try:
            for node in assignment:
                self.add_task(node, cpu_need, mem_requirement, yield_value, check=check)
                placed.append(node)
        except InfeasibleAllocationError:
            for node in placed:
                self.remove_task(node, cpu_need, mem_requirement, yield_value)
            raise

    def nodes_by_cpu_load(self) -> List[int]:
        """Node indices sorted by increasing CPU load, ties by index."""
        order = np.lexsort((np.arange(self.cluster.num_nodes), self._cpu_load))
        return [int(i) for i in order]

    def snapshot(self) -> "ClusterUsage":
        """Deep copy of this usage tally."""
        clone = ClusterUsage(self.cluster)
        clone._cpu_alloc[:] = self._cpu_alloc
        clone._cpu_load[:] = self._cpu_load
        clone._memory[:] = self._memory
        clone._tasks[:] = self._tasks
        return clone
