"""Cluster model: homogeneous by default, per-node capacities when needed.

The paper (§II-B1) targets a homogeneous cluster with a switched interconnect
and network-attached storage.  Every node exposes two resource dimensions:

* **CPU** — an arbitrarily divisible resource normalised to 1.0 per node.  A
  multi-core node is treated as a single fluid CPU resource (the Xen credit
  scheduler abstraction, §II-A); oversubscription of *needs* is allowed but
  the sum of *allocated* fractions must stay within the node's capacity.
* **Memory** — normalised to 1.0 per node; the sum of the memory requirements
  of the tasks placed on a node must never exceed its capacity (no swapping,
  §II-B1).

:mod:`repro.platform` extends this model to heterogeneous clusters: a
:class:`Cluster` may carry optional per-node capacity vectors
(``cpu_capacities`` — relative node speed, ``mem_capacities`` — relative
memory size, both expressed against the 1.0 reference node).  ``None`` (and
all-ones vectors, which are canonicalised to ``None``) means the paper's
homogeneous cluster, and every capacity-aware code path then reduces to the
exact arithmetic of the original model — the homogeneous default stays
byte-identical.

:class:`Cluster` is a small immutable description; :class:`ClusterUsage` is a
mutable tally used by the engine and the schedulers to validate and construct
allocations.  A usage tally may additionally mark nodes *unavailable* (down
under a :mod:`repro.platform` failure trace): unavailable nodes refuse
placements and drop out of the load-ordered candidate list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError, InfeasibleAllocationError

__all__ = ["Cluster", "ClusterUsage", "CAPACITY_EPSILON"]

#: Tolerance used when checking capacity constraints, to absorb the
#: floating-point error accumulated by yield binary searches.
CAPACITY_EPSILON = 1e-6


def _canonical_capacities(
    values: Optional[Sequence[float]], num_nodes: int, label: str
) -> Optional[Tuple[float, ...]]:
    """Validate and canonicalise a per-node capacity vector.

    All-ones vectors collapse to ``None`` so that an explicitly homogeneous
    cluster is *the same object shape* (equality, hash, spec dictionary) as a
    plain one — which is what keeps the homogeneous platform byte-identical
    to the legacy ``Cluster`` path everywhere.
    """
    if values is None:
        return None
    capacities = tuple(float(value) for value in values)
    if len(capacities) != num_nodes:
        raise ConfigurationError(
            f"{label} must list one capacity per node "
            f"({num_nodes}), got {len(capacities)}"
        )
    for node, value in enumerate(capacities):
        if not value > 0.0:
            raise ConfigurationError(
                f"{label}[{node}] must be > 0, got {value}"
            )
    if all(value == 1.0 for value in capacities):
        return None
    return capacities


@dataclass(frozen=True)
class Cluster:
    """Description of a cluster, homogeneous unless capacity vectors are set.

    Parameters
    ----------
    num_nodes:
        Number of physical nodes.
    cores_per_node:
        Number of cores per (reference) node.  Only used by workload
        annotation (a sequential task can use at most ``1/cores_per_node`` of
        the node CPU) and by reporting; the scheduling model treats the CPU
        as fluid.
    node_memory_gb:
        Physical memory of the capacity-1.0 reference node in GB, used to
        convert memory fractions into bytes for the preemption/migration
        bandwidth accounting of Table II.
    cpu_capacities:
        Optional per-node CPU capacity (relative node speed): a node of
        capacity 2.0 can host twice the allocated CPU fraction of the
        reference node.  ``None`` (or all ones) means homogeneous.
    mem_capacities:
        Optional per-node memory capacity relative to the reference node.
        ``None`` (or all ones) means homogeneous.
    """

    num_nodes: int
    cores_per_node: int = 4
    node_memory_gb: float = 8.0
    cpu_capacities: Optional[Tuple[float, ...]] = None
    mem_capacities: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.cores_per_node < 1:
            raise ConfigurationError(
                f"cores_per_node must be >= 1, got {self.cores_per_node}"
            )
        if self.node_memory_gb <= 0:
            raise ConfigurationError(
                f"node_memory_gb must be > 0, got {self.node_memory_gb}"
            )
        object.__setattr__(
            self,
            "cpu_capacities",
            _canonical_capacities(self.cpu_capacities, self.num_nodes, "cpu_capacities"),
        )
        object.__setattr__(
            self,
            "mem_capacities",
            _canonical_capacities(self.mem_capacities, self.num_nodes, "mem_capacities"),
        )

    @property
    def node_ids(self) -> range:
        """Iterable of valid node indices."""
        return range(self.num_nodes)

    @property
    def is_heterogeneous(self) -> bool:
        """True when some node differs from the 1.0 × 1.0 reference node."""
        return self.cpu_capacities is not None or self.mem_capacities is not None

    def cpu_capacity(self, node: int) -> float:
        """CPU capacity (relative speed) of ``node``; 1.0 when homogeneous."""
        return 1.0 if self.cpu_capacities is None else self.cpu_capacities[node]

    def mem_capacity(self, node: int) -> float:
        """Memory capacity of ``node`` relative to the reference node."""
        return 1.0 if self.mem_capacities is None else self.mem_capacities[node]

    def cpu_capacity_vector(self) -> np.ndarray:
        """Per-node CPU capacities as an array (ones when homogeneous)."""
        if self.cpu_capacities is None:
            return np.ones(self.num_nodes, dtype=float)
        return np.array(self.cpu_capacities, dtype=float)

    def mem_capacity_vector(self) -> np.ndarray:
        """Per-node memory capacities as an array (ones when homogeneous)."""
        if self.mem_capacities is None:
            return np.ones(self.num_nodes, dtype=float)
        return np.array(self.mem_capacities, dtype=float)

    def total_cpu_capacity(self) -> float:
        """Sum of per-node CPU capacities (``num_nodes`` when homogeneous)."""
        if self.cpu_capacities is None:
            return float(self.num_nodes)
        return float(sum(self.cpu_capacities))

    def total_mem_capacity(self) -> float:
        """Sum of per-node memory capacities (``num_nodes`` when homogeneous)."""
        if self.mem_capacities is None:
            return float(self.num_nodes)
        return float(sum(self.mem_capacities))

    def node_capacities(self) -> Tuple[Tuple[float, float], ...]:
        """Per-node ``(cpu, memory)`` capacity pairs (for vector packing)."""
        return tuple(
            (self.cpu_capacity(node), self.mem_capacity(node))
            for node in range(self.num_nodes)
        )

    def sequential_cpu_need(self) -> float:
        """CPU need of a CPU-bound sequential task on this cluster (§IV-C)."""
        return 1.0 / self.cores_per_node

    def usage(self, unavailable: Iterable[int] = ()) -> "ClusterUsage":
        """Return a fresh, empty usage tally for this cluster.

        ``unavailable`` marks nodes that are currently down (see
        :mod:`repro.platform`): they refuse placements and drop out of the
        candidate orderings.
        """
        return ClusterUsage(self, unavailable)


class ClusterUsage:
    """Mutable per-node CPU and memory usage tally.

    CPU usage is tracked both as *allocated fraction* (needs × yield, which
    must stay within the node's CPU capacity) and as *load* (sum of CPU
    needs, which may exceed capacity and is the quantity Λ used by the
    GREEDY yield rule; on heterogeneous clusters Λ is normalised by node
    speed).
    """

    __slots__ = (
        "cluster",
        "_cpu_alloc",
        "_cpu_load",
        "_memory",
        "_tasks",
        "_cpu_cap",
        "_mem_cap",
        "_down",
    )

    def __init__(self, cluster: Cluster, unavailable: Iterable[int] = ()) -> None:
        self.cluster = cluster
        n = cluster.num_nodes
        self._cpu_alloc = np.zeros(n, dtype=float)
        self._cpu_load = np.zeros(n, dtype=float)
        self._memory = np.zeros(n, dtype=float)
        self._tasks = np.zeros(n, dtype=int)
        # None on the homogeneous path: capacity checks then use the literal
        # 1.0 constants of the original model (identical float arithmetic).
        self._cpu_cap = (
            None
            if cluster.cpu_capacities is None
            else np.array(cluster.cpu_capacities, dtype=float)
        )
        self._mem_cap = (
            None
            if cluster.mem_capacities is None
            else np.array(cluster.mem_capacities, dtype=float)
        )
        down = frozenset(int(node) for node in unavailable)
        self._down: Optional[FrozenSet[int]] = down or None

    # -- inspection -----------------------------------------------------------
    def cpu_allocated(self, node: int) -> float:
        """Sum of allocated CPU fractions on ``node``."""
        return float(self._cpu_alloc[node])

    def cpu_load(self, node: int) -> float:
        """Sum of CPU *needs* of the tasks placed on ``node`` (may exceed 1)."""
        return float(self._cpu_load[node])

    def memory_used(self, node: int) -> float:
        """Sum of memory requirements of the tasks placed on ``node``."""
        return float(self._memory[node])

    def cpu_capacity(self, node: int) -> float:
        """CPU capacity of ``node`` (1.0 on homogeneous clusters)."""
        return 1.0 if self._cpu_cap is None else float(self._cpu_cap[node])

    def mem_capacity(self, node: int) -> float:
        """Memory capacity of ``node`` (1.0 on homogeneous clusters)."""
        return 1.0 if self._mem_cap is None else float(self._mem_cap[node])

    def memory_free(self, node: int) -> float:
        """Remaining memory fraction on ``node``."""
        if self._mem_cap is None:
            return 1.0 - float(self._memory[node])
        return float(self._mem_cap[node]) - float(self._memory[node])

    def cpu_free(self, node: int) -> float:
        """Remaining allocatable CPU fraction on ``node``."""
        if self._cpu_cap is None:
            return 1.0 - float(self._cpu_alloc[node])
        return float(self._cpu_cap[node]) - float(self._cpu_alloc[node])

    def task_count(self, node: int) -> int:
        """Number of tasks currently placed on ``node``."""
        return int(self._tasks[node])

    def is_available(self, node: int) -> bool:
        """False when ``node`` is marked down (see :meth:`set_unavailable`)."""
        return self._down is None or node not in self._down

    def unavailable_nodes(self) -> FrozenSet[int]:
        """The set of nodes currently marked down."""
        return self._down or frozenset()

    def set_unavailable(self, nodes: Iterable[int]) -> None:
        """Mark ``nodes`` as down (replaces any previous mark)."""
        down = frozenset(int(node) for node in nodes)
        self._down = down or None

    def max_cpu_load(self) -> float:
        """Maximum CPU load over all nodes (Λ in the GREEDY yield rule).

        On heterogeneous clusters the load of each node is normalised by its
        CPU capacity, so Λ stays "load per unit of reference CPU".
        """
        if not self.cluster.num_nodes:
            return 0.0
        if self._cpu_cap is None:
            return float(self._cpu_load.max())
        return float((self._cpu_load / self._cpu_cap).max())

    def busy_nodes(self) -> int:
        """Number of nodes hosting at least one task."""
        return int(np.count_nonzero(self._tasks))

    def idle_nodes(self) -> int:
        """Number of nodes hosting no task (candidates for power-down)."""
        return self.cluster.num_nodes - self.busy_nodes()

    def memory_vector(self) -> np.ndarray:
        """Copy of the per-node memory usage vector."""
        return self._memory.copy()

    def cpu_load_vector(self) -> np.ndarray:
        """Copy of the per-node CPU load (sum of needs) vector."""
        return self._cpu_load.copy()

    def cpu_alloc_vector(self) -> np.ndarray:
        """Copy of the per-node allocated CPU fraction vector."""
        return self._cpu_alloc.copy()

    # -- mutation -------------------------------------------------------------
    def can_fit_memory(self, node: int, mem_requirement: float) -> bool:
        """True if a task of the given memory requirement fits on ``node``.

        Down nodes never fit anything.
        """
        if self._down is not None and node in self._down:
            return False
        if self._mem_cap is None:
            return self._memory[node] + mem_requirement <= 1.0 + CAPACITY_EPSILON
        return (
            self._memory[node] + mem_requirement
            <= self._mem_cap[node] + CAPACITY_EPSILON
        )

    def add_task(
        self,
        node: int,
        cpu_need: float,
        mem_requirement: float,
        yield_value: float,
        *,
        check: bool = True,
    ) -> None:
        """Place one task on ``node``.

        With ``check=True`` (default) the memory and allocated-CPU capacity
        constraints (and node availability) are enforced and
        :class:`InfeasibleAllocationError` is raised on violation.
        """
        cpu_fraction = cpu_need * yield_value
        if check:
            if self._down is not None and node in self._down:
                raise InfeasibleAllocationError(
                    f"node {node} is unavailable (down)"
                )
            mem_limit = 1.0 if self._mem_cap is None else self._mem_cap[node]
            if self._memory[node] + mem_requirement > mem_limit + CAPACITY_EPSILON:
                raise InfeasibleAllocationError(
                    f"node {node}: memory {self._memory[node]:.4f} + "
                    f"{mem_requirement:.4f} exceeds capacity"
                )
            cpu_limit = 1.0 if self._cpu_cap is None else self._cpu_cap[node]
            if self._cpu_alloc[node] + cpu_fraction > cpu_limit + CAPACITY_EPSILON:
                raise InfeasibleAllocationError(
                    f"node {node}: CPU allocation {self._cpu_alloc[node]:.4f} + "
                    f"{cpu_fraction:.4f} exceeds capacity"
                )
        self._memory[node] += mem_requirement
        self._cpu_alloc[node] += cpu_fraction
        self._cpu_load[node] += cpu_need
        self._tasks[node] += 1

    def remove_task(
        self, node: int, cpu_need: float, mem_requirement: float, yield_value: float
    ) -> None:
        """Remove one previously placed task from ``node``."""
        self._memory[node] -= mem_requirement
        self._cpu_alloc[node] -= cpu_need * yield_value
        self._cpu_load[node] -= cpu_need
        self._tasks[node] -= 1
        # Clamp tiny negative residues from floating point arithmetic.
        if -1e-9 < self._memory[node] < 0.0:
            self._memory[node] = 0.0
        if -1e-9 < self._cpu_alloc[node] < 0.0:
            self._cpu_alloc[node] = 0.0
        if -1e-9 < self._cpu_load[node] < 0.0:
            self._cpu_load[node] = 0.0
        if self._tasks[node] < 0:
            raise InfeasibleAllocationError(
                f"node {node}: removed more tasks than were placed"
            )

    def add_job(
        self,
        assignment: Sequence[int],
        cpu_need: float,
        mem_requirement: float,
        yield_value: float,
        *,
        check: bool = True,
    ) -> None:
        """Place all tasks of a job according to ``assignment``."""
        placed: List[int] = []
        try:
            for node in assignment:
                self.add_task(node, cpu_need, mem_requirement, yield_value, check=check)
                placed.append(node)
        except InfeasibleAllocationError:
            for node in placed:
                self.remove_task(node, cpu_need, mem_requirement, yield_value)
            raise

    def nodes_by_cpu_load(self) -> List[int]:
        """Available node indices sorted by increasing CPU load, ties by index.

        On heterogeneous clusters the sort key is the *speed-normalised* load
        (``load / cpu_capacity``), so a fast node half as loaded per unit of
        capacity sorts ahead of a slow node — the natural generalisation of
        the paper's least-loaded rule.  Down nodes are excluded.
        """
        if self._cpu_cap is None:
            keys = self._cpu_load
        else:
            keys = self._cpu_load / self._cpu_cap
        order = np.lexsort((np.arange(self.cluster.num_nodes), keys))
        if self._down is None:
            return [int(i) for i in order]
        return [int(i) for i in order if int(i) not in self._down]

    def snapshot(self) -> "ClusterUsage":
        """Deep copy of this usage tally."""
        clone = ClusterUsage(self.cluster)
        clone._cpu_alloc[:] = self._cpu_alloc
        clone._cpu_load[:] = self._cpu_load
        clone._memory[:] = self._memory
        clone._tasks[:] = self._tasks
        clone._down = self._down
        return clone
