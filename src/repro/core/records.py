"""Per-job and per-run result records.

:class:`SimulationResult` is what :meth:`repro.core.engine.Simulator.run`
returns: the full set of per-job records plus the preemption/migration cost
tally needed for Table II and the scheduler-computation timing needed for the
§V feasibility discussion.

In streaming-metrics mode (``SimulationConfig(streaming_metrics=True)``) the
per-job list is replaced by mergeable online summaries: ``jobs`` stays empty
and ``job_stats`` (a :class:`repro.metrics.JobMetricsAccumulator`) carries
exact count/mean/min/max stretch statistics plus sketched quantiles, so the
result's memory footprint is independent of trace length.  The headline
properties (``max_stretch``, ``mean_stretch``, ``mean_turnaround``,
``num_jobs``, the scheduler-timing reductions) consult whichever form is
present, so analysis code works unchanged in both modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from ..exceptions import ReproError
from .cluster import Cluster
from .job import JobSpec
from .metrics import bounded_stretch

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..metrics import JobMetricsAccumulator, Moments

__all__ = ["JobRecord", "CostSummary", "SimulationResult"]


@dataclass(frozen=True)
class JobRecord:
    """Outcome of a single job in a finished simulation."""

    spec: JobSpec
    first_start_time: float
    completion_time: float
    preemptions: int
    migrations: int

    @property
    def turnaround_time(self) -> float:
        return self.completion_time - self.spec.submit_time

    @property
    def wait_time(self) -> float:
        """Time between submission and the first allocation of resources."""
        return self.first_start_time - self.spec.submit_time

    @property
    def stretch(self) -> float:
        """Bounded stretch of the job (30-second bound, paper §II-B2)."""
        return bounded_stretch(self.turnaround_time, self.spec.execution_time)


@dataclass
class CostSummary:
    """Aggregate preemption/migration cost tally for one simulation run.

    ``node_failures`` counts node-down events applied during the run (zero
    unless the platform carries an availability trace).  ``failure_job_kills``
    counts jobs killed and resubmitted by the ``"resubmit"`` failure policy;
    jobs checkpointed by the ``"migrate"`` policy are tallied as ordinary
    preemptions (that is exactly what they cost).
    """

    preemption_count: int = 0
    migration_count: int = 0
    preemption_gb: float = 0.0
    migration_gb: float = 0.0
    node_failures: int = 0
    failure_job_kills: int = 0
    #: Overhead-model charges (zero unless the run carries an overhead
    #: model): number of charged events and total seconds charged.
    overhead_events: int = 0
    overhead_seconds: float = 0.0

    def record_preemption(self, gb: float) -> None:
        self.preemption_count += 1
        self.preemption_gb += gb

    def record_migration(self, gb: float) -> None:
        self.migration_count += 1
        self.migration_gb += gb

    def record_node_failure(self) -> None:
        self.node_failures += 1

    def record_failure_kill(self) -> None:
        self.failure_job_kills += 1

    def record_overhead(self, seconds: float) -> None:
        self.overhead_events += 1
        self.overhead_seconds += seconds


@dataclass
class SimulationResult:
    """Complete outcome of one simulation run."""

    algorithm: str
    cluster: Cluster
    jobs: List[JobRecord]
    costs: CostSummary
    makespan: float
    #: Wall-clock seconds spent inside scheduler invocations, one per event.
    scheduler_times: List[float] = field(default_factory=list)
    #: Number of jobs the scheduler was handling at each invocation.
    scheduler_job_counts: List[int] = field(default_factory=list)
    #: Time-integral of the number of idle nodes (node·seconds), for the
    #: energy/under-subscription observation of §II-B2.
    idle_node_seconds: float = 0.0
    #: Streaming-metrics summaries (replace ``jobs`` when the engine ran
    #: with ``streaming_metrics=True``; None in the default mode).
    job_stats: Optional["JobMetricsAccumulator"] = None
    scheduler_time_stats: Optional["Moments"] = None
    scheduler_job_count_stats: Optional["Moments"] = None
    #: Energy consumed over the run under the platform's per-node-class
    #: power draw (0.0 unless the platform declares node power).
    energy_joules: float = 0.0
    #: Time-weighted busy-node statistics (streaming-metrics mode only; a
    #: :class:`repro.metrics.TimeWeightedValue`, None otherwise).
    busy_node_stats: Optional[object] = None
    #: Time-weighted *up CPU capacity* statistics (streaming-metrics mode
    #: only): delivered CPU-time = mean x duration, against the cluster's
    #: nominal capacity.  Feeds the ``availability`` collector.
    avail_node_stats: Optional[object] = None
    #: window index -> up-capacity :class:`~repro.metrics.TimeWeightedValue`
    #: when the engine ran with ``availability_window_seconds`` set
    #: (streaming-metrics mode only, windows anchored at the first submit).
    avail_window_stats: Optional[Dict[int, object]] = None
    #: window index -> ``[completions, delivered work]`` (work = tasks x
    #: cpu x nominal seconds) under the same windows; feeds the streaming
    #: ``goodput`` collector.
    goodput_window_stats: Optional[Dict[int, List[float]]] = None

    @property
    def is_streaming(self) -> bool:
        """True when per-job records were reduced to online summaries."""
        return self.job_stats is not None

    # -- stretch statistics ----------------------------------------------------
    def stretches(self) -> np.ndarray:
        """Bounded stretch of every job, as an array.

        Only available with materialized per-job records; a streaming-metrics
        result has no per-job distribution to return.
        """
        if self.is_streaming and not self.jobs:
            raise ReproError(
                "per-job stretches are not materialized in streaming-metrics "
                "mode; use job_stats (moments/quantile sketch) instead"
            )
        return np.array([record.stretch for record in self.jobs], dtype=float)

    @property
    def max_stretch(self) -> float:
        """Maximum bounded stretch (the paper's headline metric).

        Exact in both modes: the streaming accumulator tracks the maximum
        exactly.
        """
        if self.is_streaming and not self.jobs:
            return self.job_stats.stretch.maximum if self.job_stats.count else 0.0
        values = self.stretches()
        return float(values.max()) if values.size else 0.0

    @property
    def mean_stretch(self) -> float:
        if self.is_streaming and not self.jobs:
            return self.job_stats.stretch.mean if self.job_stats.count else 0.0
        values = self.stretches()
        return float(values.mean()) if values.size else 0.0

    def stretch_quantile(self, q: float) -> float:
        """Bounded-stretch quantile, ``q`` in [0, 1].

        Exact (NumPy nearest-rank over the records) in the default mode;
        within the sketch's documented relative-error bound in streaming
        mode.
        """
        if not (0.0 <= q <= 1.0):
            raise ReproError(f"quantile q must be in [0, 1], got {q}")
        if self.is_streaming and not self.jobs:
            return self.job_stats.stretch_quantile(q)
        from ..metrics import nearest_rank

        values = np.sort(self.stretches())
        if not values.size:
            raise ReproError("run finished no jobs; no stretch quantiles")
        return float(values[nearest_rank(q, values.size) - 1])

    @property
    def mean_turnaround(self) -> float:
        if self.is_streaming and not self.jobs:
            return self.job_stats.turnaround.mean if self.job_stats.count else 0.0
        if not self.jobs:
            return 0.0
        return float(np.mean([record.turnaround_time for record in self.jobs]))

    # -- Table II style cost statistics ---------------------------------------
    @property
    def num_jobs(self) -> int:
        if self.is_streaming and not self.jobs:
            return self.job_stats.count
        return len(self.jobs)

    def _hours(self) -> float:
        return max(self.makespan, 1e-9) / 3600.0

    def preemptions_per_hour(self) -> float:
        return self.costs.preemption_count / self._hours()

    def migrations_per_hour(self) -> float:
        return self.costs.migration_count / self._hours()

    def preemptions_per_job(self) -> float:
        return self.costs.preemption_count / max(1, self.num_jobs)

    def migrations_per_job(self) -> float:
        return self.costs.migration_count / max(1, self.num_jobs)

    def preemption_bandwidth_gb_per_sec(self) -> float:
        return self.costs.preemption_gb / max(self.makespan, 1e-9)

    def migration_bandwidth_gb_per_sec(self) -> float:
        return self.costs.migration_gb / max(self.makespan, 1e-9)

    # -- scheduler timing ------------------------------------------------------
    def mean_scheduler_time(self) -> float:
        if self.scheduler_time_stats is not None and not self.scheduler_times:
            stats = self.scheduler_time_stats
            return stats.mean if stats.count else 0.0
        return float(np.mean(self.scheduler_times)) if self.scheduler_times else 0.0

    def max_scheduler_time(self) -> float:
        if self.scheduler_time_stats is not None and not self.scheduler_times:
            stats = self.scheduler_time_stats
            return stats.maximum if stats.count else 0.0
        return float(np.max(self.scheduler_times)) if self.scheduler_times else 0.0

    # -- utilization -----------------------------------------------------------
    def mean_idle_nodes(self) -> float:
        """Average number of idle nodes over the run."""
        if self.makespan <= 0:
            return float(self.cluster.num_nodes)
        return self.idle_node_seconds / self.makespan

    def record_for(self, job_id: int) -> Optional[JobRecord]:
        """Record of a given job id, or ``None`` if it is not in this run."""
        for record in self.jobs:
            if record.spec.job_id == job_id:
                return record
        return None

    def summary(self) -> Dict[str, float]:
        """Compact dictionary of headline statistics for reporting."""
        return {
            "algorithm_max_stretch": self.max_stretch,
            "mean_stretch": self.mean_stretch,
            "mean_turnaround": self.mean_turnaround,
            "preemptions_per_job": self.preemptions_per_job(),
            "migrations_per_job": self.migrations_per_job(),
            "makespan": self.makespan,
        }
