"""Rescheduling penalty and data-movement cost model.

The paper (§IV-A) evaluates every algorithm twice: once with a zero
rescheduling overhead and once with a pessimistic **5-minute wall-clock
penalty** charged for every preemption/resume cycle and for every migration
(all migrations are modelled as pause/resume through storage; schedulers are
unaware of the penalty).

Table II additionally reports the induced network/storage traffic.  We charge
one full copy of the job's resident memory per preemption occurrence and one
per migration occurrence, converted to GB using the cluster's per-node memory
size.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError
from .cluster import Cluster
from .job import JobSpec

__all__ = ["ReschedulingPenaltyModel", "NO_PENALTY", "FIVE_MINUTE_PENALTY"]


@dataclass(frozen=True)
class ReschedulingPenaltyModel:
    """Cost model for preemptions and migrations.

    Parameters
    ----------
    penalty_seconds:
        Wall-clock seconds of zero progress charged to a job each time it is
        resumed after a preemption and each time it is migrated.
    """

    penalty_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.penalty_seconds < 0:
            raise ConfigurationError(
                f"penalty_seconds must be >= 0, got {self.penalty_seconds}"
            )

    def resume_penalty(self, spec: JobSpec) -> float:
        """Zero-progress seconds charged when a paused job is resumed."""
        return self.penalty_seconds

    def migration_penalty(self, spec: JobSpec) -> float:
        """Zero-progress seconds charged when a running job changes nodes."""
        return self.penalty_seconds

    def job_memory_gb(self, spec: JobSpec, cluster: Cluster) -> float:
        """Resident memory of the whole job in GB on the given cluster."""
        return spec.total_memory * cluster.node_memory_gb

    def preemption_bytes_gb(self, spec: JobSpec, cluster: Cluster) -> float:
        """Data written to storage when the job is paused, in GB."""
        return self.job_memory_gb(spec, cluster)

    def migration_bytes_gb(self, spec: JobSpec, cluster: Cluster) -> float:
        """Data moved when the job is migrated (pause + resume), in GB."""
        return self.job_memory_gb(spec, cluster)


#: Convenience instances matching the two experimental settings of the paper.
NO_PENALTY = ReschedulingPenaltyModel(0.0)
FIVE_MINUTE_PENALTY = ReschedulingPenaltyModel(300.0)
