"""Read-only views of the simulation state handed to schedulers.

Schedulers never touch :class:`~repro.core.job.Job` objects directly: at each
event the engine builds one :class:`JobView` per active job and wraps them in
a :class:`SchedulingContext`.  This keeps policies pure (they cannot corrupt
engine state) and lets us enforce the paper's clairvoyance rules: the
``runtime_estimate`` and ``remaining_runtime_estimate`` fields are populated
only for schedulers that declare ``requires_runtime_estimates`` (the batch
baselines, §IV-B); DFRS schedulers receive ``None`` there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .allocation import JobAllocation
from .cluster import Cluster, ClusterUsage
from .job import JobState

__all__ = ["JobView", "SchedulingContext"]


@dataclass(frozen=True)
class JobView:
    """Snapshot of one active job as seen by a scheduler."""

    job_id: int
    num_tasks: int
    cpu_need: float
    mem_requirement: float
    submit_time: float
    state: JobState
    virtual_time: float
    flow_time: float
    backoff_count: int
    #: Current placement (one node per task) if the job is RUNNING.
    assignment: Optional[Tuple[int, ...]]
    #: Current yield if the job is RUNNING, 0.0 otherwise.
    current_yield: float
    #: Placement the job had the last time it ran (useful when resuming).
    last_assignment: Optional[Tuple[int, ...]]
    #: Perfect runtime estimate — only for clairvoyant (batch) schedulers.
    runtime_estimate: Optional[float] = None
    #: Perfect remaining-runtime estimate — only for clairvoyant schedulers.
    remaining_runtime_estimate: Optional[float] = None

    @property
    def total_cpu_need(self) -> float:
        """CPU need summed over all tasks."""
        return self.num_tasks * self.cpu_need

    @property
    def total_memory(self) -> float:
        """Memory requirement summed over all tasks."""
        return self.num_tasks * self.mem_requirement

    @property
    def is_running(self) -> bool:
        return self.state is JobState.RUNNING

    @property
    def is_paused(self) -> bool:
        return self.state is JobState.PAUSED

    @property
    def is_pending(self) -> bool:
        return self.state is JobState.PENDING


@dataclass
class SchedulingContext:
    """Everything a scheduler may look at when making a decision."""

    #: Current simulation time (seconds).
    time: float
    #: Cluster description (node count, cores, memory size).
    cluster: Cluster
    #: Views of every active (pending, running, or paused) job, by id.
    jobs: Dict[int, JobView]
    #: Ids of jobs submitted at this event, in submission order.
    submitted: List[int] = field(default_factory=list)
    #: Ids of jobs that completed at this event.
    completed: List[int] = field(default_factory=list)
    #: True when the event includes a scheduler-requested wake-up.
    is_wakeup: bool = False

    def running_jobs(self) -> List[JobView]:
        """Views of currently running jobs."""
        return [view for view in self.jobs.values() if view.is_running]

    def paused_jobs(self) -> List[JobView]:
        """Views of currently paused jobs."""
        return [view for view in self.jobs.values() if view.is_paused]

    def pending_jobs(self) -> List[JobView]:
        """Views of jobs that have never been started."""
        return [view for view in self.jobs.values() if view.is_pending]

    def usage_from_running(self) -> ClusterUsage:
        """Cluster usage implied by the currently running jobs."""
        usage = self.cluster.usage()
        for view in self.running_jobs():
            assert view.assignment is not None
            usage.add_job(
                view.assignment,
                view.cpu_need,
                view.mem_requirement,
                view.current_yield,
                check=False,
            )
        return usage

    def current_allocations(self) -> Dict[int, JobAllocation]:
        """Current running allocations as :class:`JobAllocation` objects."""
        allocations: Dict[int, JobAllocation] = {}
        for view in self.running_jobs():
            assert view.assignment is not None
            allocations[view.job_id] = JobAllocation.create(
                view.assignment, view.current_yield
            )
        return allocations
