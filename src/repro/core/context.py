"""Read-only views of the simulation state handed to schedulers.

Schedulers never touch :class:`~repro.core.job.Job` objects directly: at each
event the engine builds one :class:`JobView` per active job and wraps them in
a :class:`SchedulingContext`.  This keeps policies pure (they cannot corrupt
engine state) and lets us enforce the paper's clairvoyance rules: the
``runtime_estimate`` and ``remaining_runtime_estimate`` fields are populated
only for schedulers that declare ``requires_runtime_estimates`` (the batch
baselines, §IV-B); DFRS schedulers receive ``None`` there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from .allocation import JobAllocation
from .cluster import Cluster, ClusterUsage
from .job import JobState

__all__ = ["JobView", "SchedulingContext"]


@dataclass(frozen=True)
class JobView:
    """Snapshot of one active job as seen by a scheduler."""

    job_id: int
    num_tasks: int
    cpu_need: float
    mem_requirement: float
    submit_time: float
    state: JobState
    virtual_time: float
    flow_time: float
    backoff_count: int
    #: Current placement (one node per task) if the job is RUNNING.
    assignment: Optional[Tuple[int, ...]]
    #: Current yield if the job is RUNNING, 0.0 otherwise.
    current_yield: float
    #: Placement the job had the last time it ran (useful when resuming).
    last_assignment: Optional[Tuple[int, ...]]
    #: Perfect runtime estimate — only for clairvoyant (batch) schedulers.
    runtime_estimate: Optional[float] = None
    #: Perfect remaining-runtime estimate — only for clairvoyant schedulers.
    remaining_runtime_estimate: Optional[float] = None

    @property
    def total_cpu_need(self) -> float:
        """CPU need summed over all tasks."""
        return self.num_tasks * self.cpu_need

    @property
    def total_memory(self) -> float:
        """Memory requirement summed over all tasks."""
        return self.num_tasks * self.mem_requirement

    @property
    def is_running(self) -> bool:
        return self.state is JobState.RUNNING

    @property
    def is_paused(self) -> bool:
        return self.state is JobState.PAUSED

    @property
    def is_pending(self) -> bool:
        return self.state is JobState.PENDING


@dataclass
class SchedulingContext:
    """Everything a scheduler may look at when making a decision."""

    #: Current simulation time (seconds).
    time: float
    #: Cluster description (node count, cores, memory size).
    cluster: Cluster
    #: Views of every active (pending, running, or paused) job, by id.
    jobs: Dict[int, JobView]
    #: Ids of jobs submitted at this event, in submission order.
    submitted: List[int] = field(default_factory=list)
    #: Ids of jobs that completed at this event.
    completed: List[int] = field(default_factory=list)
    #: True when the event includes a scheduler-requested wake-up.
    is_wakeup: bool = False
    #: Nodes currently unavailable (down under a platform failure trace).
    #: Schedulers must not place tasks on them; the engine rejects decisions
    #: that do.  Empty on static platforms.
    down_nodes: FrozenSet[int] = frozenset()
    #: Ids of jobs evicted at this event because their node failed (killed
    #: and requeued, or checkpoint-paused, per the platform failure policy).
    evicted: List[int] = field(default_factory=list)
    #: True when the engine asks periodic schedulers to repack *now* instead
    #: of waiting for their next tick — set on ``NODE_DOWN`` events when
    #: ``SimulationConfig(repack_on_failure=True)``.  Event-driven
    #: schedulers (which repack at every event anyway) may ignore it.
    repack_requested: bool = False

    def running_jobs(self) -> List[JobView]:
        """Views of currently running jobs."""
        return [view for view in self.jobs.values() if view.is_running]

    def paused_jobs(self) -> List[JobView]:
        """Views of currently paused jobs."""
        return [view for view in self.jobs.values() if view.is_paused]

    def pending_jobs(self) -> List[JobView]:
        """Views of jobs that have never been started."""
        return [view for view in self.jobs.values() if view.is_pending]

    def scratch_usage(self) -> ClusterUsage:
        """Fresh, empty usage tally with the down nodes already marked."""
        return self.cluster.usage(self.down_nodes)

    def packing_capacities(self) -> Optional[Tuple[Tuple[float, float], ...]]:
        """Per-node ``(cpu, memory)`` bin capacities for vector packing.

        ``None`` on the fast path — a homogeneous cluster with every node up
        — which tells the packers to use their original unit-bin code.  Down
        nodes get zero capacity, so no packing ever lands on them.
        """
        if not self.down_nodes and not self.cluster.is_heterogeneous:
            return None
        return tuple(
            (0.0, 0.0)
            if node in self.down_nodes
            else (self.cluster.cpu_capacity(node), self.cluster.mem_capacity(node))
            for node in range(self.cluster.num_nodes)
        )

    def usage_from_running(self) -> ClusterUsage:
        """Cluster usage implied by the currently running jobs."""
        usage = self.cluster.usage(self.down_nodes)
        for view in self.running_jobs():
            assert view.assignment is not None
            usage.add_job(
                view.assignment,
                view.cpu_need,
                view.mem_requirement,
                view.current_yield,
                check=False,
            )
        return usage

    def current_allocations(self) -> Dict[int, JobAllocation]:
        """Current running allocations as :class:`JobAllocation` objects."""
        allocations: Dict[int, JobAllocation] = {}
        for view in self.running_jobs():
            assert view.assignment is not None
            allocations[view.job_id] = JobAllocation.create(
                view.assignment, view.current_yield
            )
        return allocations
