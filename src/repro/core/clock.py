"""The clock seam: simulated time vs. (accelerated) wall-clock time.

The engine's scheduling logic is a pure function of event *timestamps*; the
clock only decides how long the driver waits before processing the next
event.  Under :class:`SimulatedClock` (the default) waiting is free, which
is exactly the original discrete-event behaviour — campaigns are unchanged,
byte for byte.  Under :class:`WallClock` the engine becomes a real-time
replayer: before processing an event at simulated instant ``t`` the driver
sleeps until the wall clock "reaches" ``t`` under the configured
acceleration factor.  Because simulated time stays authoritative — the wall
clock never changes *which* events fire at *which* simulated timestamps —
replaying a trace through :class:`repro.serve.SchedulerService` at any
acceleration produces byte-identical placement decisions to
``Simulator.run_stream`` (pinned by ``tests/serve/test_replay_determinism``).

Wall-clock readings use ``time.monotonic()`` only: the simulation clock
never reads calendar time, so results remain a pure function of the spec
(the DET103 contract).
"""

from __future__ import annotations

import abc
import math
import time
from typing import Optional

from ..exceptions import SimulationError

__all__ = ["Clock", "SimulatedClock", "WallClock"]

#: Longest single sleep of ``WallClock.wait_until`` — chunked so interrupts
#: (Ctrl-C, service shutdown) stay responsive during long simulated gaps.
_MAX_SLEEP_CHUNK_SECONDS = 0.5


class Clock(abc.ABC):
    """How the event-loop driver experiences the passage of simulated time."""

    #: Stable identifier of the clock flavour (diagnostics only; clocks are
    #: driver plumbing, not part of a scenario spec, so there is no registry).
    kind: str = "abstract"

    @abc.abstractmethod
    def start(self, origin: float) -> None:
        """Anchor the clock at simulated instant ``origin``."""

    @abc.abstractmethod
    def now(self) -> float:
        """Current reading in simulated seconds."""

    @abc.abstractmethod
    def wall_seconds_until(self, deadline: float) -> float:
        """Real seconds to wait before ``now()`` reaches ``deadline`` (>= 0)."""

    @abc.abstractmethod
    def wait_until(self, deadline: float) -> None:
        """Block until ``now()`` reaches simulated instant ``deadline``."""


class SimulatedClock(Clock):
    """Zero-cost clock: waiting *is* advancing.

    This is the discrete-event default — ``wait_until`` jumps the reading
    straight to the deadline, so the event loop runs as fast as the CPU
    allows and behaves exactly as it did before the clock seam existed.
    """

    kind = "simulated"

    def __init__(self) -> None:
        self._now = 0.0

    def start(self, origin: float) -> None:
        self._now = origin

    def now(self) -> float:
        return self._now

    def wall_seconds_until(self, deadline: float) -> float:
        return 0.0

    def wait_until(self, deadline: float) -> None:
        if deadline > self._now:
            self._now = deadline


class WallClock(Clock):
    """Real-time clock with a configurable acceleration factor.

    ``acceleration`` is simulated seconds per wall-clock second: ``1.0``
    replays a trace in real time, ``3600.0`` compresses an hour of trace
    into one second.  Readings derive from ``time.monotonic()`` relative to
    the anchor taken at :meth:`start`, so the reading is monotonic and
    immune to calendar adjustments.
    """

    kind = "wall"

    def __init__(self, acceleration: float = 1.0) -> None:
        if not (math.isfinite(acceleration) and acceleration > 0.0):
            raise SimulationError(
                f"clock acceleration must be finite and > 0, got {acceleration}"
            )
        self.acceleration = float(acceleration)
        self._origin = 0.0
        self._anchor: Optional[float] = None

    def start(self, origin: float) -> None:
        self._origin = origin
        self._anchor = time.monotonic()

    def now(self) -> float:
        if self._anchor is None:
            return self._origin
        return self._origin + (time.monotonic() - self._anchor) * self.acceleration

    def wall_seconds_until(self, deadline: float) -> float:
        return max(0.0, (deadline - self.now()) / self.acceleration)

    def wait_until(self, deadline: float) -> None:
        while True:
            remaining = self.wall_seconds_until(deadline)
            if remaining <= 0.0:
                return
            time.sleep(min(remaining, _MAX_SLEEP_CHUNK_SECONDS))
