"""Observer hooks for the simulation engine.

The engine exposes a small observer protocol so that analysis tooling can
watch a simulation unfold without the engine having to know anything about
what is being measured.  Observers receive callbacks for the lifecycle of
every job (submission, start, preemption, resume, migration, completion) and
for every applied allocation decision.

Three ready-made observers cover the needs of :mod:`repro.analysis`:

* :class:`EventLogRecorder` — flat, ordered log of everything that happened,
  convenient for debugging and for asserting engine behaviour in tests;
* :class:`AllocationTraceRecorder` — per-job allocation intervals (who ran
  where, at which yield, from when to when), the raw material of Gantt-style
  analyses and per-job yield profiles;
* :class:`UtilizationRecorder` — per-event snapshots of cluster-wide CPU,
  memory, and job-population counters, the raw material of utilization and
  energy studies (paper §II-B2's "turn off idle nodes" remark).

Observers must never mutate the objects they are handed; the engine passes
immutable specs/allocations and copies of aggregate counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..exceptions import ConfigurationError
from .allocation import JobAllocation
from .cluster import Cluster
from .job import JobSpec

__all__ = [
    "SimulationObserver",
    "ObservedEvent",
    "EventLogRecorder",
    "AllocationInterval",
    "AllocationTraceRecorder",
    "UtilizationSample",
    "UtilizationRecorder",
    "AvailabilityRecorder",
    "available_recorders",
    "create_recorder",
    "register_recorder",
]


class SimulationObserver:
    """Base class with no-op hooks; subclass and override what you need.

    The engine calls the hooks in this order within one event:
    ``on_job_submitted`` (for each submission), ``on_job_completed`` (for each
    completion), then one of ``on_job_started`` / ``on_job_preempted`` /
    ``on_job_resumed`` / ``on_job_migrated`` / ``on_yield_changed`` per
    affected job, and finally ``on_allocation_applied`` with the full running
    set.  ``on_simulation_start`` / ``on_simulation_end`` bracket the run.
    """

    def on_simulation_start(self, cluster: Cluster, start_time: float) -> None:
        """Called once before the first event is processed."""

    def on_job_submitted(self, time: float, spec: JobSpec) -> None:
        """Called when a job's submission event fires."""

    def on_job_started(
        self, time: float, spec: JobSpec, allocation: JobAllocation
    ) -> None:
        """Called the first (and any subsequent) time a pending job starts."""

    def on_job_preempted(self, time: float, spec: JobSpec) -> None:
        """Called when a running job is paused (memory saved to storage)."""

    def on_job_evicted(
        self, time: float, spec: JobSpec, node: int, killed: bool
    ) -> None:
        """Called when a node failure evicts a running job, just before the
        matching :meth:`on_job_preempted`.

        ``node`` is the failed node and ``killed`` distinguishes the two
        failure policies: ``True`` under ``"resubmit"`` (progress lost, job
        requeued from scratch) and ``False`` under ``"migrate"`` (job
        checkpointed like an ordinary preemption).  Scheduler-initiated
        preemptions never pass through this hook, so observers that need
        *cause* attribution (the flight recorder) can tell the two apart.
        """

    def on_job_resumed(
        self, time: float, spec: JobSpec, allocation: JobAllocation
    ) -> None:
        """Called when a paused job is given resources again."""

    def on_job_migrated(
        self,
        time: float,
        spec: JobSpec,
        old_nodes: Tuple[int, ...],
        allocation: JobAllocation,
    ) -> None:
        """Called when a running job's node multiset changes."""

    def on_yield_changed(
        self, time: float, spec: JobSpec, old_yield: float, new_yield: float
    ) -> None:
        """Called when only the CPU fraction of a running job changes."""

    def on_job_completed(self, time: float, spec: JobSpec) -> None:
        """Called when a job finishes all of its work."""

    def on_node_down(self, time: float, node: int) -> None:
        """Called when a node fails (platform availability trace).

        Jobs evicted by the failure are additionally reported through
        ``on_job_preempted`` (both failure policies close their allocation
        the same way; only the engine-side bookkeeping differs).
        """

    def on_node_up(self, time: float, node: int) -> None:
        """Called when a previously failed node is repaired."""

    def on_allocation_applied(
        self, time: float, running: Dict[int, JobAllocation]
    ) -> None:
        """Called after every event with the complete set of running jobs."""

    def on_simulation_end(self, time: float) -> None:
        """Called once after the last event has been processed."""


# --------------------------------------------------------------------------- #
# Event log                                                                    #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ObservedEvent:
    """One entry of the :class:`EventLogRecorder` log."""

    time: float
    kind: str
    job_id: Optional[int] = None
    detail: str = ""


class EventLogRecorder(SimulationObserver):
    """Record a flat, time-ordered log of everything the engine did.

    The ``kind`` field takes the values ``"submit"``, ``"start"``,
    ``"preempt"``, ``"resume"``, ``"migrate"``, ``"yield"``, ``"complete"``,
    ``"sim-start"``, and ``"sim-end"``.
    """

    def __init__(self) -> None:
        self.events: List[ObservedEvent] = []

    def _record(self, time: float, kind: str, job_id: Optional[int] = None, detail: str = "") -> None:
        self.events.append(ObservedEvent(time=time, kind=kind, job_id=job_id, detail=detail))

    def on_simulation_start(self, cluster: Cluster, start_time: float) -> None:
        self._record(start_time, "sim-start", detail=f"nodes={cluster.num_nodes}")

    def on_job_submitted(self, time: float, spec: JobSpec) -> None:
        self._record(time, "submit", spec.job_id)

    def on_job_started(self, time: float, spec: JobSpec, allocation: JobAllocation) -> None:
        self._record(time, "start", spec.job_id, detail=f"yield={allocation.yield_value:.3f}")

    def on_job_preempted(self, time: float, spec: JobSpec) -> None:
        self._record(time, "preempt", spec.job_id)

    def on_job_resumed(self, time: float, spec: JobSpec, allocation: JobAllocation) -> None:
        self._record(time, "resume", spec.job_id, detail=f"yield={allocation.yield_value:.3f}")

    def on_job_migrated(
        self,
        time: float,
        spec: JobSpec,
        old_nodes: Tuple[int, ...],
        allocation: JobAllocation,
    ) -> None:
        self._record(
            time,
            "migrate",
            spec.job_id,
            detail=f"{sorted(old_nodes)}->{sorted(allocation.nodes)}",
        )

    def on_yield_changed(
        self, time: float, spec: JobSpec, old_yield: float, new_yield: float
    ) -> None:
        self._record(time, "yield", spec.job_id, detail=f"{old_yield:.3f}->{new_yield:.3f}")

    def on_job_completed(self, time: float, spec: JobSpec) -> None:
        self._record(time, "complete", spec.job_id)

    def on_simulation_end(self, time: float) -> None:
        self._record(time, "sim-end")

    # -- queries ---------------------------------------------------------------
    def events_of_kind(self, kind: str) -> List[ObservedEvent]:
        """All recorded events of the given kind, in time order."""
        return [event for event in self.events if event.kind == kind]

    def events_of_job(self, job_id: int) -> List[ObservedEvent]:
        """All recorded events concerning the given job, in time order."""
        return [event for event in self.events if event.job_id == job_id]

    def count(self, kind: str) -> int:
        """Number of recorded events of the given kind."""
        return sum(1 for event in self.events if event.kind == kind)


# --------------------------------------------------------------------------- #
# Allocation trace                                                             #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class AllocationInterval:
    """A maximal interval during which one job kept one placement and yield."""

    job_id: int
    start: float
    end: float
    nodes: Tuple[int, ...]
    yield_value: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def virtual_time(self) -> float:
        """Virtual time accrued during this interval (duration × yield).

        This slightly overestimates the true virtual time of intervals during
        which the job was paying a rescheduling penalty (zero progress); the
        engine's own accounting remains authoritative.
        """
        return self.duration * self.yield_value


class AllocationTraceRecorder(SimulationObserver):
    """Record per-job allocation intervals over the whole simulation.

    After the run, :attr:`intervals` holds one :class:`AllocationInterval` per
    maximal period during which a job's placement and yield were constant.
    """

    def __init__(self) -> None:
        self.intervals: List[AllocationInterval] = []
        self._open: Dict[int, Tuple[float, Tuple[int, ...], float]] = {}
        self._last_time = 0.0

    def on_simulation_start(self, cluster: Cluster, start_time: float) -> None:
        self.intervals = []
        self._open = {}
        self._last_time = start_time

    def on_allocation_applied(self, time: float, running: Dict[int, JobAllocation]) -> None:
        self._last_time = max(self._last_time, time)
        # Close intervals for jobs that stopped running or changed allocation.
        for job_id in list(self._open):
            start, nodes, yield_value = self._open[job_id]
            alloc = running.get(job_id)
            if alloc is None or tuple(alloc.nodes) != nodes or alloc.yield_value != yield_value:
                self._close(job_id, time)
        # Open intervals for new placements.
        for job_id, alloc in running.items():
            if job_id not in self._open:
                self._open[job_id] = (time, tuple(alloc.nodes), alloc.yield_value)

    def on_job_completed(self, time: float, spec: JobSpec) -> None:
        if spec.job_id in self._open:
            self._close(spec.job_id, time)

    def on_simulation_end(self, time: float) -> None:
        for job_id in list(self._open):
            self._close(job_id, time)

    def _close(self, job_id: int, end: float) -> None:
        start, nodes, yield_value = self._open.pop(job_id)
        if end > start:
            self.intervals.append(
                AllocationInterval(
                    job_id=job_id,
                    start=start,
                    end=end,
                    nodes=nodes,
                    yield_value=yield_value,
                )
            )

    # -- queries ---------------------------------------------------------------
    def intervals_of_job(self, job_id: int) -> List[AllocationInterval]:
        """Intervals of one job, sorted by start time."""
        selected = [iv for iv in self.intervals if iv.job_id == job_id]
        return sorted(selected, key=lambda iv: iv.start)

    def job_ids(self) -> List[int]:
        """All job ids that ever held an allocation."""
        return sorted({iv.job_id for iv in self.intervals})

    def busy_node_seconds(self) -> float:
        """Sum over intervals of (number of distinct nodes used × duration)."""
        return sum(len(set(iv.nodes)) * iv.duration for iv in self.intervals)


# --------------------------------------------------------------------------- #
# Utilization trace                                                            #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class UtilizationSample:
    """Cluster-wide counters captured right after one event was processed."""

    time: float
    #: Number of distinct nodes hosting at least one running task.
    busy_nodes: int
    #: Sum over running jobs of (tasks × cpu_need × yield), in node units.
    cpu_allocated: float
    #: Sum over running jobs of (tasks × mem_requirement), in node units.
    memory_used: float
    running_jobs: int
    #: Yield of the worst-off running job (1.0 when nothing runs).
    min_yield: float


class UtilizationRecorder(SimulationObserver):
    """Record cluster-wide utilization counters after every event.

    The resulting samples form a right-continuous step function: the counters
    of sample *i* hold from ``samples[i].time`` until ``samples[i+1].time``.
    Conversion helpers into proper :class:`repro.analysis.timeseries.StepSeries`
    objects live in :mod:`repro.analysis.timeseries`.
    """

    def __init__(self) -> None:
        self.samples: List[UtilizationSample] = []
        self._specs: Dict[int, JobSpec] = {}
        self._cluster: Optional[Cluster] = None

    def on_simulation_start(self, cluster: Cluster, start_time: float) -> None:
        self.samples = []
        self._specs = {}
        self._cluster = cluster

    def on_job_submitted(self, time: float, spec: JobSpec) -> None:
        self._specs[spec.job_id] = spec

    def on_allocation_applied(self, time: float, running: Dict[int, JobAllocation]) -> None:
        busy = set()
        cpu = 0.0
        memory = 0.0
        min_yield = 1.0
        for job_id, alloc in running.items():
            spec = self._specs.get(job_id)
            if spec is None:  # pragma: no cover - defensive; submissions precede starts
                continue
            busy.update(alloc.nodes)
            cpu += spec.num_tasks * spec.cpu_need * alloc.yield_value
            memory += spec.num_tasks * spec.mem_requirement
            min_yield = min(min_yield, alloc.yield_value)
        self.samples.append(
            UtilizationSample(
                time=time,
                busy_nodes=len(busy),
                cpu_allocated=cpu,
                memory_used=memory,
                running_jobs=len(running),
                min_yield=min_yield if running else 1.0,
            )
        )

    def on_simulation_end(self, time: float) -> None:
        # The engine stops iterating as soon as the last job completes, so the
        # final completion does not go through an allocation decision; close
        # the trace with an explicit all-idle sample so that step series span
        # the full simulated interval.
        if self.samples and time > self.samples[-1].time:
            self.samples.append(
                UtilizationSample(
                    time=time,
                    busy_nodes=0,
                    cpu_allocated=0.0,
                    memory_used=0.0,
                    running_jobs=0,
                    min_yield=1.0,
                )
            )

    # -- queries ---------------------------------------------------------------
    def peak_busy_nodes(self) -> int:
        """Largest number of simultaneously busy nodes observed."""
        return max((sample.busy_nodes for sample in self.samples), default=0)

    def peak_cpu_allocated(self) -> float:
        """Largest total allocated CPU (in node units) observed."""
        return max((sample.cpu_allocated for sample in self.samples), default=0.0)

    def peak_memory_used(self) -> float:
        """Largest total memory usage (in node units) observed."""
        return max((sample.memory_used for sample in self.samples), default=0.0)


# --------------------------------------------------------------------------- #
# Availability measurement                                                     #
# --------------------------------------------------------------------------- #
class AvailabilityRecorder(SimulationObserver):
    """Measure delivered vs. nominal CPU capacity over the run.

    The aggregate CPU capacity of *up* nodes is a step function that only
    changes at node-down/node-up events; the recorder keeps it as a list of
    constant-capacity ``(start, end, up_cpu)`` segments.  On static
    platforms this is a single full-capacity segment and delivered equals
    nominal.  A node that was already down when the run began (pre-run slice
    of the availability trace) is discovered at its repair event, and its
    capacity is retroactively removed from every earlier segment — so the
    integral is exact either way.
    """

    def __init__(self) -> None:
        #: Closed constant-capacity segments: ``(start, end, up_cpu)``.
        self.segments: List[Tuple[float, float, float]] = []
        self.start_time = 0.0
        self.end_time = 0.0
        self._cluster: Optional[Cluster] = None
        self._segment_start = 0.0
        self._up_cpu = 0.0
        self._down: set = set()

    def on_simulation_start(self, cluster: Cluster, start_time: float) -> None:
        self._cluster = cluster
        self.segments = []
        self._down = set()
        self.start_time = start_time
        self.end_time = start_time
        self._segment_start = start_time
        self._up_cpu = cluster.total_cpu_capacity()

    def _close_segment(self, time: float) -> None:
        if time > self._segment_start:
            self.segments.append((self._segment_start, time, self._up_cpu))
        self._segment_start = time

    def on_node_down(self, time: float, node: int) -> None:
        if node in self._down or self._cluster is None:
            return
        self._close_segment(time)
        self._down.add(node)
        self._up_cpu -= self._cluster.cpu_capacity(node)

    def on_node_up(self, time: float, node: int) -> None:
        if self._cluster is None:
            return
        if node not in self._down:
            # Down since before the run began: every segment so far
            # overcounted this node's capacity.  Correct retroactively and
            # close the running segment at the corrected level; the current
            # ``_up_cpu`` already counts the node as up from here on.
            capacity = self._cluster.cpu_capacity(node)
            self.segments = [
                (start, end, up - capacity) for start, end, up in self.segments
            ]
            if time > self._segment_start:
                self.segments.append(
                    (self._segment_start, time, self._up_cpu - capacity)
                )
            self._segment_start = time
            return
        self._close_segment(time)
        self._down.discard(node)
        self._up_cpu += self._cluster.cpu_capacity(node)

    def on_simulation_end(self, time: float) -> None:
        self._close_segment(time)
        self.end_time = time

    # -- queries ---------------------------------------------------------------
    def nominal_cpu_capacity(self) -> float:
        """Aggregate CPU capacity of the whole cluster (all nodes up)."""
        return self._cluster.total_cpu_capacity() if self._cluster else 0.0

    def duration(self) -> float:
        """Measured span in simulated seconds."""
        return self.end_time - self.start_time

    def delivered_cpu_seconds(self) -> float:
        """Integral of up-node CPU capacity over the measured span."""
        return sum((end - start) * up for start, end, up in self.segments)


# --------------------------------------------------------------------------- #
# Recorder registry                                                            #
# --------------------------------------------------------------------------- #
#: Name-constructible recorders.  The campaign layer ships recorder *names*
#: (not instances) to worker processes, so anything pluggable into a
#: :class:`repro.campaign.collectors.MetricCollector` must be registered here.
_RECORDER_FACTORIES: Dict[str, Callable[[], SimulationObserver]] = {
    "event-log": EventLogRecorder,
    "allocation-trace": AllocationTraceRecorder,
    "utilization": UtilizationRecorder,
    "availability": AvailabilityRecorder,
}


def available_recorders() -> List[str]:
    """Names accepted by :func:`create_recorder`."""
    return sorted(_RECORDER_FACTORIES)


def register_recorder(name: str, factory: Callable[[], SimulationObserver]) -> None:
    """Register a recorder factory under a short name (idempotent per factory)."""
    existing = _RECORDER_FACTORIES.get(name)
    if existing is not None and existing is not factory:
        raise ConfigurationError(f"recorder name {name!r} is already registered")
    _RECORDER_FACTORIES[name] = factory


def create_recorder(name: str) -> SimulationObserver:
    """Instantiate a registered recorder from its name."""
    try:
        factory = _RECORDER_FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown recorder {name!r}; known recorders: "
            f"{', '.join(available_recorders())}"
        ) from None
    return factory()
