"""Core simulation substrate: cluster model, jobs, allocations, engine, metrics."""

from .allocation import AllocationDecision, JobAllocation, validate_decision
from .clock import Clock, SimulatedClock, WallClock
from .cluster import CAPACITY_EPSILON, Cluster, ClusterUsage
from .context import JobView, SchedulingContext
from .engine import EngineLoad, SimulationConfig, Simulator
from .events import Event, EventQueue, EventType
from .job import MINIMUM_YIELD, Job, JobSpec, JobState
from .metrics import (
    STRETCH_BOUND_SECONDS,
    DegradationStats,
    aggregate_degradation,
    bounded_stretch,
    degradation_factors,
    job_yield,
    raw_stretch,
)
from .invariants import InvariantCheckingObserver
from .observers import (
    AllocationInterval,
    AllocationTraceRecorder,
    AvailabilityRecorder,
    EventLogRecorder,
    ObservedEvent,
    SimulationObserver,
    UtilizationRecorder,
    UtilizationSample,
)
from .penalties import FIVE_MINUTE_PENALTY, NO_PENALTY, ReschedulingPenaltyModel
from .records import CostSummary, JobRecord, SimulationResult

__all__ = [
    "AllocationDecision",
    "JobAllocation",
    "validate_decision",
    "CAPACITY_EPSILON",
    "Clock",
    "SimulatedClock",
    "WallClock",
    "Cluster",
    "ClusterUsage",
    "JobView",
    "SchedulingContext",
    "EngineLoad",
    "SimulationConfig",
    "Simulator",
    "Event",
    "EventQueue",
    "EventType",
    "MINIMUM_YIELD",
    "Job",
    "JobSpec",
    "JobState",
    "STRETCH_BOUND_SECONDS",
    "DegradationStats",
    "aggregate_degradation",
    "bounded_stretch",
    "degradation_factors",
    "job_yield",
    "raw_stretch",
    "InvariantCheckingObserver",
    "AllocationInterval",
    "AllocationTraceRecorder",
    "AvailabilityRecorder",
    "EventLogRecorder",
    "ObservedEvent",
    "SimulationObserver",
    "UtilizationRecorder",
    "UtilizationSample",
    "FIVE_MINUTE_PENALTY",
    "NO_PENALTY",
    "ReschedulingPenaltyModel",
    "CostSummary",
    "JobRecord",
    "SimulationResult",
]
