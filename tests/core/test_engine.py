"""Unit tests for the discrete-event engine (:mod:`repro.core.engine`)."""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

import pytest

from repro.core.allocation import AllocationDecision
from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig, Simulator
from repro.core.job import JobState
from repro.core.penalties import ReschedulingPenaltyModel
from repro.exceptions import SimulationError
from repro.schedulers.base import Scheduler

from ..conftest import make_job


class ScriptedScheduler(Scheduler):
    """Scheduler whose behaviour is driven by a user-supplied callback."""

    name = "scripted"

    def __init__(self, callback: Callable[["ScriptedScheduler", object], AllocationDecision]):
        self._callback = callback
        self.calls: List[object] = []

    def schedule(self, context):
        self.calls.append(context)
        return self._callback(self, context)


def run_everything_once(scheduler_callback, jobs, *, nodes=4, penalty=0.0):
    cluster = Cluster(num_nodes=nodes, cores_per_node=4, node_memory_gb=8.0)
    scheduler = ScriptedScheduler(scheduler_callback)
    simulator = Simulator(
        cluster,
        scheduler,
        SimulationConfig(penalty_model=ReschedulingPenaltyModel(penalty)),
    )
    return simulator.run(jobs), scheduler


def always_run_alone(scheduler, context):
    """Run every active job, one task per node, full yield."""
    decision = AllocationDecision()
    node = 0
    for view in context.jobs.values():
        nodes = list(range(node, node + view.num_tasks))
        node += view.num_tasks
        decision.set(view.job_id, nodes, 1.0)
    return decision


class TestBasicExecution:
    def test_single_job_runs_to_completion(self):
        jobs = [make_job(0, submit=10.0, runtime=100.0)]
        result, scheduler = run_everything_once(always_run_alone, jobs)
        assert result.num_jobs == 1
        record = result.jobs[0]
        assert record.first_start_time == pytest.approx(10.0)
        assert record.completion_time == pytest.approx(110.0)
        assert record.turnaround_time == pytest.approx(100.0)
        assert record.stretch == pytest.approx(1.0)
        assert result.costs.preemption_count == 0
        assert result.costs.migration_count == 0

    def test_half_yield_doubles_runtime(self):
        def half_yield(scheduler, context):
            decision = AllocationDecision()
            for view in context.jobs.values():
                decision.set(view.job_id, [0], 0.5)
            return decision

        jobs = [make_job(0, submit=0.0, runtime=100.0, cpu=1.0)]
        result, _ = run_everything_once(half_yield, jobs)
        assert result.jobs[0].completion_time == pytest.approx(200.0)
        assert result.jobs[0].stretch == pytest.approx(2.0)

    def test_two_jobs_sharing_a_node(self):
        def share(scheduler, context):
            decision = AllocationDecision()
            for view in context.jobs.values():
                decision.set(view.job_id, [0], 0.5)
            return decision

        jobs = [
            make_job(0, submit=0.0, runtime=100.0, cpu=1.0, mem=0.4),
            make_job(1, submit=0.0, runtime=100.0, cpu=1.0, mem=0.4),
        ]
        result, _ = run_everything_once(share, jobs)
        for record in result.jobs:
            assert record.completion_time == pytest.approx(200.0)

    def test_empty_workload_rejected(self):
        with pytest.raises(SimulationError):
            run_everything_once(always_run_alone, [])

    def test_duplicate_job_ids_rejected(self):
        jobs = [make_job(0), make_job(0)]
        with pytest.raises(SimulationError):
            run_everything_once(always_run_alone, jobs)

    def test_makespan_spans_first_submit_to_last_completion(self):
        jobs = [
            make_job(0, submit=100.0, runtime=50.0),
            make_job(1, submit=400.0, runtime=10.0),
        ]
        result, _ = run_everything_once(always_run_alone, jobs)
        assert result.makespan == pytest.approx(310.0)


class TestSchedulerInteraction:
    def test_scheduler_sees_submissions_and_completions(self):
        seen = {"submitted": [], "completed": []}

        def recording(scheduler, context):
            seen["submitted"].extend(context.submitted)
            seen["completed"].extend(context.completed)
            return always_run_alone(scheduler, context)

        jobs = [make_job(0, submit=0.0, runtime=10.0), make_job(1, submit=5.0, runtime=10.0)]
        run_everything_once(recording, jobs)
        assert seen["submitted"] == [0, 1]
        # The engine skips the pointless invocation after the very last
        # completion, so only job 0's completion is observed by the policy.
        assert seen["completed"] == [0]

    def test_deadlock_without_wakeup_raises(self):
        def never_schedule(scheduler, context):
            return AllocationDecision()

        jobs = [make_job(0, runtime=10.0)]
        with pytest.raises(SimulationError, match="deadlock"):
            run_everything_once(never_schedule, jobs)

    def test_wakeup_requests_are_honoured(self):
        def delayed_start(scheduler, context):
            decision = AllocationDecision()
            if context.time < 50.0:
                decision.request_wakeup(50.0)
                return decision
            return always_run_alone(scheduler, context)

        jobs = [make_job(0, submit=0.0, runtime=10.0)]
        result, scheduler = run_everything_once(delayed_start, jobs)
        assert result.jobs[0].first_start_time == pytest.approx(50.0)
        assert result.jobs[0].completion_time == pytest.approx(60.0)

    def test_wakeup_in_the_past_rejected(self):
        def bad_wakeup(scheduler, context):
            decision = always_run_alone(scheduler, context)
            decision.request_wakeup(context.time - 100.0)
            return decision

        jobs = [make_job(0, submit=200.0, runtime=10.0)]
        with pytest.raises(SimulationError, match="past"):
            run_everything_once(bad_wakeup, jobs)

    def test_allocating_completed_job_rejected(self):
        def stubborn(scheduler, context):
            decision = AllocationDecision()
            decision.set(0, [0], 1.0)
            return decision

        jobs = [make_job(0, runtime=10.0), make_job(1, submit=100.0, runtime=10.0)]
        with pytest.raises(Exception):
            run_everything_once(stubborn, jobs)

    def test_clairvoyant_flag_controls_runtime_estimates(self):
        observed: Dict[str, Optional[float]] = {}

        def peek(scheduler, context):
            for view in context.jobs.values():
                observed["estimate"] = view.runtime_estimate
            return always_run_alone(scheduler, context)

        jobs = [make_job(0, runtime=123.0)]
        result, scheduler = run_everything_once(peek, jobs)
        assert observed["estimate"] is None

        def peek2(scheduler, context):
            for view in context.jobs.values():
                observed["estimate"] = view.runtime_estimate
            return always_run_alone(scheduler, context)

        cluster = Cluster(num_nodes=4)
        scheduler = ScriptedScheduler(peek2)
        scheduler.requires_runtime_estimates = True
        Simulator(cluster, scheduler).run(jobs)
        assert observed["estimate"] == pytest.approx(123.0)


class TestPreemptionAndMigrationAccounting:
    def test_pause_and_resume_charges_one_penalty(self):
        # Job 0 runs, gets paused when job 1 arrives, resumes when job 1 ends.
        def pause_for_job1(scheduler, context):
            decision = AllocationDecision()
            views = context.jobs
            if 1 in views and views[1].state is not JobState.COMPLETED:
                decision.set(1, [0], 1.0)
            elif 0 in views:
                decision.set(0, [0], 1.0)
            return decision

        jobs = [
            make_job(0, submit=0.0, runtime=100.0, mem=0.8),
            make_job(1, submit=50.0, runtime=40.0, mem=0.8),
        ]
        result, _ = run_everything_once(pause_for_job1, jobs, penalty=30.0)
        record0 = result.record_for(0)
        record1 = result.record_for(1)
        assert record1.completion_time == pytest.approx(90.0)
        assert record0.preemptions == 1
        assert record0.migrations == 0
        # Job 0 did 50 s of work, was paused for 40 s, pays a 30 s resume
        # penalty, then finishes its remaining 50 s: 90 + 30 + 50 = 170.
        assert record0.completion_time == pytest.approx(170.0)
        assert result.costs.preemption_count == 1
        assert result.costs.preemption_gb == pytest.approx(0.8 * 8.0)

    def test_migration_charges_penalty_and_counts(self):
        def migrate_once(scheduler, context):
            decision = AllocationDecision()
            for view in context.jobs.values():
                if view.job_id == 0:
                    target = [1] if context.time >= 50.0 else [0]
                else:
                    target = [2]
                decision.set(view.job_id, target, 1.0)
            return decision

        jobs = [
            make_job(0, submit=0.0, runtime=100.0, mem=0.5),
            make_job(1, submit=50.0, runtime=10.0, mem=0.1),
        ]
        result, _ = run_everything_once(migrate_once, jobs, penalty=20.0)
        record0 = result.record_for(0)
        assert record0.migrations >= 1
        assert record0.preemptions == 0
        assert result.costs.migration_gb >= 0.5 * 8.0 - 1e-9
        # One migration at t=50 adds a 20-second stall.
        assert record0.completion_time >= 120.0 - 1e-6

    def test_yield_change_without_node_change_is_free(self):
        def shrink_yield(scheduler, context):
            decision = AllocationDecision()
            value = 1.0 if context.time < 50.0 else 0.5
            for view in context.jobs.values():
                decision.set(view.job_id, [0], value)
            return decision

        jobs = [
            make_job(0, submit=0.0, runtime=100.0),
            make_job(1, submit=50.0, runtime=10.0, mem=0.1),
        ]
        result, _ = run_everything_once(shrink_yield, jobs, penalty=300.0)
        record0 = result.record_for(0)
        assert record0.preemptions == 0
        assert record0.migrations == 0
        # 50 s at yield 1.0 plus 100 s at yield 0.5 -> completes at t=150.
        assert record0.completion_time == pytest.approx(150.0)

    def test_zero_penalty_preemption_still_counted(self):
        def pause_then_resume(scheduler, context):
            decision = AllocationDecision()
            views = context.jobs
            if 1 in views and views[1].state is not JobState.COMPLETED:
                decision.set(1, [0], 1.0)
            elif 0 in views:
                decision.set(0, [0], 1.0)
            return decision

        jobs = [
            make_job(0, submit=0.0, runtime=100.0, mem=0.9),
            make_job(1, submit=10.0, runtime=10.0, mem=0.9),
        ]
        result, _ = run_everything_once(pause_then_resume, jobs, penalty=0.0)
        assert result.costs.preemption_count == 1
        # Without a penalty the preempted job only loses the pause interval.
        assert result.record_for(0).completion_time == pytest.approx(110.0)


class TestGuards:
    def test_max_events_guard_catches_thrashing(self):
        """A scheduler that endlessly requests wake-ups without progress is
        detected by the event-count guard instead of hanging the process."""

        def thrash(scheduler, context):
            decision = AllocationDecision()
            decision.request_wakeup(context.time + 1.0)
            return decision

        cluster = Cluster(num_nodes=2)
        scheduler = ScriptedScheduler(thrash)
        simulator = Simulator(
            cluster, scheduler, SimulationConfig(max_events=50)
        )
        with pytest.raises(SimulationError, match="max_events"):
            simulator.run([make_job(0, runtime=10.0)])

    def test_batch_scheduler_rejects_oversized_job_upfront(self):
        """A job wider than the cluster can never start under exclusive-node
        batch scheduling; the engine refuses the workload instead of
        deadlocking hours into a simulation."""
        cluster = Cluster(num_nodes=2)
        scheduler = ScriptedScheduler(always_run_alone)
        scheduler.exclusive_node_allocation = True
        simulator = Simulator(cluster, scheduler)
        with pytest.raises(SimulationError, match="batch"):
            simulator.run([make_job(0, tasks=4, runtime=10.0)])

    def test_dfrs_accepts_job_wider_than_cluster(self):
        """DFRS can co-locate tasks, so a 4-task job on 2 nodes is fine."""

        def stack_two_per_node(scheduler, context):
            decision = AllocationDecision()
            for view in context.jobs.values():
                decision.set(view.job_id, [0, 0, 1, 1], 0.5)
            return decision

        cluster = Cluster(num_nodes=2)
        scheduler = ScriptedScheduler(stack_two_per_node)
        result = Simulator(cluster, scheduler).run(
            [make_job(0, tasks=4, cpu=1.0, mem=0.4, runtime=100.0)]
        )
        assert result.jobs[0].completion_time == pytest.approx(200.0)


class TestIdleAccounting:
    def test_idle_node_seconds(self):
        jobs = [make_job(0, submit=0.0, runtime=100.0)]
        result, _ = run_everything_once(always_run_alone, jobs, nodes=4)
        # One node busy for 100 s, three idle: 300 idle node-seconds.
        assert result.idle_node_seconds == pytest.approx(300.0)
        assert result.mean_idle_nodes() == pytest.approx(3.0)
