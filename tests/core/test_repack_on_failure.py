"""``repack_on_failure``: immediate repack after NODE_DOWN for periodic DFRS.

A periodic scheduler normally leaves failure victims paused until its next
tick — up to a full period of dead time.  With
``SimulationConfig(repack_on_failure=True)`` the NODE_DOWN event itself
requests a repack, so checkpointed victims resume on surviving nodes
immediately.  These tests pin the recovery-latency win and check that the
shortcut buys it without extra churn (no additional preemptions or
migrations) and without changing failure-free runs at all.
"""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig, Simulator
from repro.core.job import JobSpec
from repro.platform import TraceNodeEventSource
from repro.schedulers.registry import create_scheduler
from repro.serve import PlacementLogObserver

#: Two half-node jobs the multi-capacity packer stacks onto node 0, leaving
#: node 1 empty — the failure then evicts both, and node 1 can host both.
SPECS = [
    JobSpec(0, 0.0, 1, 0.5, 0.4, 1000.0),
    JobSpec(1, 0.0, 1, 0.5, 0.4, 1000.0),
]


def _run(repack, algorithm="dynmcb8-asap-per-600", events=((200.0, 0, "down"),)):
    config = SimulationConfig(
        node_events=TraceNodeEventSource(events_list=tuple(events)),
        failure_policy="migrate",
        repack_on_failure=repack,
    )
    observer = PlacementLogObserver()
    simulator = Simulator(
        Cluster(2), create_scheduler(algorithm), config, observers=[observer]
    )
    result = simulator.run(list(SPECS))
    return result, observer.entries


def _actions(entries, action):
    return [entry for entry in entries if entry[1] == action]


class TestRecoveryLatency:
    def test_without_repack_victims_wait_for_the_next_tick(self):
        result, entries = _run(repack=False)
        resumes = _actions(entries, "resume")
        # Node 0 dies at t=200; the period-600 scheduler only repacks at its
        # next tick, so both victims sit checkpointed for 400 seconds.
        assert [entry[0] for entry in resumes] == [600.0, 600.0]
        assert {record.completion_time for record in result.jobs} == {1400.0}

    def test_with_repack_victims_resume_at_the_failure(self):
        result, entries = _run(repack=True)
        resumes = _actions(entries, "resume")
        assert [entry[0] for entry in resumes] == [200.0, 200.0]
        # Checkpointing kept the 200 s of progress: 1000 s total work ends
        # at exactly t=1000 — the 400 s tick wait is gone.
        assert {record.completion_time for record in result.jobs} == {1000.0}

    def test_repack_does_not_add_churn(self):
        baseline, baseline_entries = _run(repack=False)
        repacked, repacked_entries = _run(repack=True)
        # Same eviction, same number of recovery placements — the shortcut
        # changes *when* the repack happens, not how much work it does.
        assert repacked.costs.preemption_count == baseline.costs.preemption_count
        assert repacked.costs.migration_count == baseline.costs.migration_count
        assert len(_actions(repacked_entries, "resume")) == len(
            _actions(baseline_entries, "resume")
        )
        assert repacked.costs.node_failures == baseline.costs.node_failures == 1

    @pytest.mark.parametrize(
        "algorithm",
        ["dynmcb8-per-600", "dynmcb8-asap-per-600", "dynmcb8-stretch-per-600"],
    )
    def test_every_periodic_variant_recovers_immediately(self, algorithm):
        slow, _ = _run(repack=False, algorithm=algorithm)
        fast, entries = _run(repack=True, algorithm=algorithm)
        assert min(entry[0] for entry in _actions(entries, "resume")) == 200.0
        assert max(record.completion_time for record in fast.jobs) < max(
            record.completion_time for record in slow.jobs
        )


class TestNoBehaviorChangeWithoutFailures:
    @pytest.mark.parametrize("algorithm", ["dynmcb8-asap-per-600", "greedy-pmtn-migr"])
    def test_failure_free_runs_are_byte_identical(self, algorithm):
        def run(repack):
            config = SimulationConfig(repack_on_failure=repack)
            observer = PlacementLogObserver()
            simulator = Simulator(
                Cluster(2),
                create_scheduler(algorithm),
                config,
                observers=[observer],
            )
            simulator.run(list(SPECS))
            return observer.to_json_bytes()

        assert run(True) == run(False)

    def test_event_driven_scheduler_is_unaffected_by_the_flag(self):
        # greedy-pmtn-migr already reacts to NODE_DOWN on its own; the flag
        # must not change its decisions.
        base, base_entries = _run(repack=False, algorithm="greedy-pmtn-migr")
        flagged, flagged_entries = _run(repack=True, algorithm="greedy-pmtn-migr")
        assert flagged_entries == base_entries
