"""Unit tests for :mod:`repro.core.records`."""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.records import CostSummary, JobRecord, SimulationResult

from ..conftest import make_job


def record(job_id=0, submit=0.0, start=10.0, end=110.0, runtime=100.0, **kwargs):
    return JobRecord(
        spec=make_job(job_id, submit=submit, runtime=runtime, **kwargs),
        first_start_time=start,
        completion_time=end,
        preemptions=0,
        migrations=0,
    )


class TestJobRecord:
    def test_derived_times(self):
        r = record(submit=0.0, start=10.0, end=110.0, runtime=100.0)
        assert r.turnaround_time == pytest.approx(110.0)
        assert r.wait_time == pytest.approx(10.0)
        assert r.stretch == pytest.approx(1.1)

    def test_short_job_stretch_is_bounded(self):
        r = record(submit=0.0, start=0.0, end=5.0, runtime=1.0)
        assert r.stretch == pytest.approx(1.0)


class TestCostSummary:
    def test_accumulation(self):
        costs = CostSummary()
        costs.record_preemption(2.0)
        costs.record_preemption(3.0)
        costs.record_migration(1.5)
        assert costs.preemption_count == 2
        assert costs.migration_count == 1
        assert costs.preemption_gb == pytest.approx(5.0)
        assert costs.migration_gb == pytest.approx(1.5)


class TestSimulationResult:
    def _result(self):
        cluster = Cluster(4, node_memory_gb=8.0)
        costs = CostSummary()
        costs.record_preemption(8.0)
        costs.record_migration(4.0)
        jobs = [
            record(0, submit=0.0, start=0.0, end=3600.0, runtime=1800.0),
            record(1, submit=0.0, start=100.0, end=400.0, runtime=100.0),
        ]
        return SimulationResult(
            algorithm="test",
            cluster=cluster,
            jobs=jobs,
            costs=costs,
            makespan=3600.0,
            scheduler_times=[0.001, 0.5, 0.002],
            scheduler_job_counts=[1, 20, 2],
            idle_node_seconds=7200.0,
        )

    def test_stretch_statistics(self):
        result = self._result()
        assert result.num_jobs == 2
        assert result.max_stretch == pytest.approx(4.0)  # job 1: 400/100
        assert result.mean_stretch == pytest.approx((2.0 + 4.0) / 2.0)
        assert result.mean_turnaround == pytest.approx((3600.0 + 400.0) / 2.0)

    def test_cost_rates(self):
        result = self._result()
        assert result.preemptions_per_hour() == pytest.approx(1.0)
        assert result.migrations_per_hour() == pytest.approx(1.0)
        assert result.preemptions_per_job() == pytest.approx(0.5)
        assert result.migrations_per_job() == pytest.approx(0.5)
        assert result.preemption_bandwidth_gb_per_sec() == pytest.approx(8.0 / 3600.0)
        assert result.migration_bandwidth_gb_per_sec() == pytest.approx(4.0 / 3600.0)

    def test_scheduler_timing(self):
        result = self._result()
        assert result.mean_scheduler_time() == pytest.approx((0.001 + 0.5 + 0.002) / 3)
        assert result.max_scheduler_time() == pytest.approx(0.5)

    def test_idle_nodes(self):
        result = self._result()
        assert result.mean_idle_nodes() == pytest.approx(2.0)

    def test_record_lookup_and_summary(self):
        result = self._result()
        assert result.record_for(1).spec.job_id == 1
        assert result.record_for(99) is None
        summary = result.summary()
        assert summary["algorithm_max_stretch"] == pytest.approx(4.0)
        assert summary["makespan"] == pytest.approx(3600.0)

    def test_empty_result_statistics(self):
        result = SimulationResult(
            algorithm="empty",
            cluster=Cluster(2),
            jobs=[],
            costs=CostSummary(),
            makespan=0.0,
        )
        assert result.max_stretch == 0.0
        assert result.mean_stretch == 0.0
        assert result.mean_scheduler_time() == 0.0
        assert result.preemptions_per_job() == 0.0
