"""Failure-injection tests: the engine must reject misbehaving schedulers.

Schedulers are pluggable, so the engine cannot trust them; these tests drive
the simulator with deliberately broken policies and check that each class of
misbehaviour is rejected with a clear exception instead of silently producing
a corrupt schedule.
"""

from __future__ import annotations

import pytest

from repro.core import Cluster, JobSpec, SimulationConfig, Simulator
from repro.core.allocation import AllocationDecision
from repro.exceptions import (
    AllocationError,
    InfeasibleAllocationError,
    SimulationError,
)
from repro.schedulers import create_scheduler
from repro.schedulers.base import Scheduler


CLUSTER = Cluster(num_nodes=2, cores_per_node=4, node_memory_gb=8.0)


def _spec(job_id, submit=0.0, tasks=1, cpu=0.5, mem=0.2, runtime=50.0):
    return JobSpec(job_id, submit, tasks, cpu, mem, runtime)


def _simulate(scheduler, specs, cluster=CLUSTER):
    return Simulator(cluster, scheduler, SimulationConfig()).run(specs)


class _StubScheduler(Scheduler):
    """Scheduler that delegates to a function supplied by the test."""

    name = "stub"

    def __init__(self, policy):
        self._policy = policy

    def schedule(self, context):
        return self._policy(context)


class TestWorkloadValidation:
    def test_empty_workload_rejected(self):
        with pytest.raises(SimulationError):
            _simulate(create_scheduler("fcfs"), [])

    def test_duplicate_job_ids_rejected(self):
        specs = [_spec(0), _spec(0, submit=10.0)]
        with pytest.raises(SimulationError):
            _simulate(create_scheduler("fcfs"), specs)

    def test_batch_job_wider_than_cluster_rejected_up_front(self):
        specs = [_spec(0, tasks=10)]
        with pytest.raises(SimulationError):
            _simulate(create_scheduler("easy"), specs)

    def test_dfrs_job_wider_than_cluster_is_allowed(self):
        # DFRS can co-locate several tasks on one node, so a 4-task job on a
        # 2-node cluster is legitimate as long as memory fits.
        specs = [_spec(0, tasks=4, cpu=1.0, mem=0.2)]
        result = _simulate(create_scheduler("dynmcb8"), specs)
        assert result.num_jobs == 1


class TestDecisionValidation:
    def test_unknown_job_in_decision_rejected(self):
        def policy(context):
            decision = AllocationDecision()
            decision.set(999, [0], 1.0)
            return decision

        with pytest.raises(AllocationError):
            _simulate(_StubScheduler(policy), [_spec(0)])

    def test_wrong_task_count_rejected(self):
        def policy(context):
            decision = AllocationDecision()
            for view in context.jobs.values():
                decision.set(view.job_id, [0, 1], 1.0)  # 2 tasks for a 1-task job
            return decision

        with pytest.raises(AllocationError):
            _simulate(_StubScheduler(policy), [_spec(0, tasks=1)])

    def test_out_of_range_node_rejected(self):
        def policy(context):
            decision = AllocationDecision()
            for view in context.jobs.values():
                decision.set(view.job_id, [17], 1.0)
            return decision

        with pytest.raises(AllocationError):
            _simulate(_StubScheduler(policy), [_spec(0)])

    def test_memory_oversubscription_rejected(self):
        def policy(context):
            decision = AllocationDecision()
            for view in context.jobs.values():
                decision.set(view.job_id, [0], 1.0)  # everyone on node 0
            return decision

        specs = [_spec(0, mem=0.7), _spec(1, mem=0.7)]
        with pytest.raises(InfeasibleAllocationError):
            _simulate(_StubScheduler(policy), specs)

    def test_cpu_oversubscription_rejected(self):
        def policy(context):
            decision = AllocationDecision()
            for view in context.jobs.values():
                decision.set(view.job_id, [0], 1.0)  # full yield for everyone
            return decision

        specs = [_spec(0, cpu=0.8, mem=0.1), _spec(1, cpu=0.8, mem=0.1)]
        with pytest.raises(InfeasibleAllocationError):
            _simulate(_StubScheduler(policy), specs)

    def test_allocating_to_completed_job_rejected(self):
        state = {"completed": None}

        def policy(context):
            decision = AllocationDecision()
            if state["completed"] is not None:
                # Maliciously keep allocating to the job that just completed.
                decision.set(state["completed"], [0], 1.0)
            for view in context.jobs.values():
                decision.set(view.job_id, [0], 1.0)
            if context.completed:
                state["completed"] = context.completed[0]
            return decision

        specs = [_spec(0, runtime=20.0, mem=0.2), _spec(1, submit=100.0, runtime=20.0)]
        with pytest.raises((SimulationError, AllocationError)):
            _simulate(_StubScheduler(policy), specs)


class TestSchedulingLoopProtection:
    def test_deadlock_detected_when_nothing_is_scheduled(self):
        def policy(context):
            return AllocationDecision()  # never schedule anything, never wake up

        with pytest.raises(SimulationError):
            _simulate(_StubScheduler(policy), [_spec(0)])

    def test_wakeup_in_the_past_rejected(self):
        def policy(context):
            decision = AllocationDecision()
            for view in context.jobs.values():
                decision.set(view.job_id, [0], 1.0)
            decision.request_wakeup(context.time - 100.0)
            return decision

        with pytest.raises(SimulationError):
            _simulate(_StubScheduler(policy), [_spec(0, submit=200.0)])

    def test_event_budget_guard_triggers_on_thrashing(self):
        def policy(context):
            decision = AllocationDecision()
            for view in context.jobs.values():
                decision.set(view.job_id, [0], 1.0)
            decision.request_wakeup(context.time + 0.001)  # absurdly fast ticks
            return decision

        simulator = Simulator(
            CLUSTER, _StubScheduler(policy), SimulationConfig(max_events=500)
        )
        with pytest.raises(SimulationError):
            simulator.run([_spec(0, runtime=1e6)])

    def test_none_decision_is_treated_as_empty(self):
        calls = {"count": 0}

        def policy(context):
            calls["count"] += 1
            if calls["count"] == 1:
                return None  # first event: no decision at all
            decision = AllocationDecision()
            for view in context.jobs.values():
                decision.set(view.job_id, [0], 1.0)
            return decision

        # A second submission event arrives later and rescues the first job,
        # so returning None must not crash the engine by itself.
        specs = [_spec(0), _spec(1, submit=10.0)]
        result = _simulate(_StubScheduler(policy), specs)
        assert result.num_jobs == 2
