"""Tests for the invariant-checking observer."""

from __future__ import annotations

import pytest

from repro.core import (
    Cluster,
    InvariantCheckingObserver,
    JobAllocation,
    JobSpec,
    ReschedulingPenaltyModel,
    SimulationConfig,
    Simulator,
)
from repro.exceptions import SimulationError
from repro.schedulers import PAPER_ALGORITHMS, create_scheduler
from repro.workloads import LublinWorkloadGenerator, scale_to_load


def _spec(job_id, submit=0.0, tasks=1, cpu=0.5, mem=0.2, runtime=60.0):
    return JobSpec(job_id, submit, tasks, cpu, mem, runtime)


def _alloc(nodes, yield_value=1.0):
    return JobAllocation.create(nodes, yield_value)


class TestEndToEndWithRealSchedulers:
    @pytest.mark.parametrize("algorithm", ["fcfs", "easy", "conservative", "greedy",
                                           "greedy-pmtn", "greedy-pmtn-migr", "dynmcb8",
                                           "dynmcb8-per-600", "dynmcb8-asap-per-600",
                                           "dynmcb8-stretch-per-600",
                                           "dynmcb8-asap-weighted-per-600"])
    def test_paper_and_extension_algorithms_satisfy_invariants(self, algorithm):
        cluster = Cluster(num_nodes=8, cores_per_node=4, node_memory_gb=8.0)
        workload = LublinWorkloadGenerator(cluster).generate(40, seed=17)
        workload = scale_to_load(workload, 0.7)
        checker = InvariantCheckingObserver()
        result = Simulator(
            cluster,
            create_scheduler(algorithm),
            SimulationConfig(penalty_model=ReschedulingPenaltyModel(300.0)),
            observers=[checker],
        ).run(workload.jobs)
        assert result.num_jobs == workload.num_jobs
        assert checker.checked_events > 0

    def test_checker_resets_between_runs(self):
        cluster = Cluster(num_nodes=4)
        checker = InvariantCheckingObserver()
        specs = [_spec(0), _spec(1, submit=5.0)]
        for _ in range(2):
            Simulator(
                cluster, create_scheduler("greedy-pmtn"), SimulationConfig(), observers=[checker]
            ).run(specs)
        assert checker.checked_events > 0


class TestManualViolationDetection:
    """Drive the observer by hand to check every violation is caught."""

    def _started_checker(self, num_nodes=2):
        checker = InvariantCheckingObserver()
        checker.on_simulation_start(Cluster(num_nodes=num_nodes), 0.0)
        return checker

    def test_duplicate_submission_rejected(self):
        checker = self._started_checker()
        spec = _spec(0)
        checker.on_job_submitted(0.0, spec)
        with pytest.raises(SimulationError):
            checker.on_job_submitted(1.0, spec)

    def test_submission_before_release_time_rejected(self):
        checker = self._started_checker()
        with pytest.raises(SimulationError):
            checker.on_job_submitted(0.0, _spec(0, submit=100.0))

    def test_start_before_submission_rejected(self):
        checker = self._started_checker()
        with pytest.raises(SimulationError):
            checker.on_job_started(0.0, _spec(0), _alloc((0,)))

    def test_start_with_wrong_task_count_rejected(self):
        checker = self._started_checker()
        spec = _spec(0, tasks=2)
        checker.on_job_submitted(0.0, spec)
        with pytest.raises(SimulationError):
            checker.on_job_started(0.0, spec, _alloc((0,)))

    def test_completion_without_start_rejected(self):
        checker = self._started_checker()
        spec = _spec(0)
        checker.on_job_submitted(0.0, spec)
        with pytest.raises(SimulationError):
            checker.on_job_completed(10.0, spec)

    def test_double_completion_rejected(self):
        checker = self._started_checker()
        spec = _spec(0)
        checker.on_job_submitted(0.0, spec)
        checker.on_job_started(0.0, spec, _alloc((0,)))
        checker.on_job_completed(60.0, spec)
        with pytest.raises(SimulationError):
            checker.on_job_completed(61.0, spec)

    def test_action_after_completion_rejected(self):
        checker = self._started_checker()
        spec = _spec(0)
        checker.on_job_submitted(0.0, spec)
        checker.on_job_started(0.0, spec, _alloc((0,)))
        checker.on_job_completed(60.0, spec)
        with pytest.raises(SimulationError):
            checker.on_job_preempted(70.0, spec)

    def test_time_going_backwards_rejected(self):
        checker = self._started_checker()
        checker.on_job_submitted(10.0, _spec(0, submit=0.0))
        with pytest.raises(SimulationError):
            checker.on_job_submitted(5.0, _spec(1, submit=0.0))

    def test_fake_migration_to_same_nodes_rejected(self):
        checker = self._started_checker()
        spec = _spec(0, tasks=2)
        checker.on_job_submitted(0.0, spec)
        checker.on_job_started(0.0, spec, _alloc((0, 1)))
        with pytest.raises(SimulationError):
            checker.on_job_migrated(10.0, spec, (1, 0), _alloc((0, 1)))

    def test_memory_oversubscription_detected(self):
        checker = self._started_checker(num_nodes=1)
        heavy = [_spec(i, mem=0.6) for i in range(2)]
        for spec in heavy:
            checker.on_job_submitted(0.0, spec)
        with pytest.raises(SimulationError):
            checker.on_allocation_applied(
                0.0, {0: _alloc((0,), 0.5), 1: _alloc((0,), 0.5)}
            )

    def test_cpu_oversubscription_detected(self):
        checker = self._started_checker(num_nodes=1)
        for i in range(2):
            checker.on_job_submitted(0.0, _spec(i, cpu=1.0, mem=0.1))
        with pytest.raises(SimulationError):
            checker.on_allocation_applied(
                0.0, {0: _alloc((0,), 0.9), 1: _alloc((0,), 0.9)}
            )

    def test_allocation_for_unknown_job_rejected(self):
        checker = self._started_checker()
        with pytest.raises(SimulationError):
            checker.on_allocation_applied(0.0, {42: _alloc((0,))})

    def test_allocation_on_out_of_range_node_rejected(self):
        checker = self._started_checker(num_nodes=2)
        checker.on_job_submitted(0.0, _spec(0))
        with pytest.raises(SimulationError):
            checker.on_allocation_applied(0.0, {0: _alloc((5,))})

    def test_completed_job_holding_allocation_rejected(self):
        checker = self._started_checker()
        spec = _spec(0)
        checker.on_job_submitted(0.0, spec)
        checker.on_job_started(0.0, spec, _alloc((0,)))
        checker.on_job_completed(60.0, spec)
        with pytest.raises(SimulationError):
            checker.on_allocation_applied(61.0, {0: _alloc((0,))})

    def test_unfinished_jobs_at_end_rejected(self):
        checker = self._started_checker()
        checker.on_job_submitted(0.0, _spec(0))
        with pytest.raises(SimulationError):
            checker.on_simulation_end(100.0)

    def test_clean_run_passes(self):
        checker = self._started_checker()
        spec = _spec(0)
        checker.on_job_submitted(0.0, spec)
        checker.on_job_started(0.0, spec, _alloc((0,)))
        checker.on_allocation_applied(0.0, {0: _alloc((0,))})
        checker.on_job_completed(60.0, spec)
        checker.on_allocation_applied(60.0, {})
        checker.on_simulation_end(60.0)
        assert checker.checked_events == 2
