"""Unit tests for :mod:`repro.core.metrics`."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import (
    STRETCH_BOUND_SECONDS,
    aggregate_degradation,
    bounded_stretch,
    degradation_factors,
    job_yield,
    raw_stretch,
)


class TestStretch:
    def test_raw_stretch(self):
        assert raw_stretch(400.0, 100.0) == pytest.approx(4.0)
        assert raw_stretch(100.0, 100.0) == pytest.approx(1.0)

    def test_raw_stretch_validation(self):
        with pytest.raises(ValueError):
            raw_stretch(-1.0, 100.0)
        with pytest.raises(ValueError):
            raw_stretch(10.0, 0.0)

    def test_bounded_stretch_equals_raw_for_long_jobs(self):
        assert bounded_stretch(7200.0, 3600.0) == pytest.approx(2.0)

    def test_bounded_stretch_caps_short_jobs(self):
        # A 1-second job that waits 15 seconds has raw stretch 16 but bounded
        # stretch 1 (both times are below the 30-second threshold).
        assert bounded_stretch(16.0, 1.0) == pytest.approx(1.0)

    def test_bounded_stretch_mixed_regime(self):
        # 1-second job with a 300-second turnaround: numerator unbounded,
        # denominator bounded at 30.
        assert bounded_stretch(300.0, 1.0) == pytest.approx(10.0)

    def test_bounded_stretch_custom_bound(self):
        assert bounded_stretch(50.0, 10.0, bound=100.0) == pytest.approx(1.0)

    @given(
        turnaround=st.floats(min_value=0.0, max_value=1e7),
        dedicated=st.floats(min_value=1e-3, max_value=1e7),
    )
    def test_bounded_stretch_properties(self, turnaround, dedicated):
        value = bounded_stretch(turnaround, dedicated)
        assert value > 0.0
        # Bounded stretch is at least 1 whenever the turnaround is at least
        # the dedicated time (a job cannot finish faster than dedicated).
        if turnaround >= dedicated:
            assert value >= 1.0 - 1e-12
        # It never exceeds the raw stretch computed with the same bound logic.
        assert value <= max(turnaround, STRETCH_BOUND_SECONDS) / min(
            dedicated, max(dedicated, STRETCH_BOUND_SECONDS)
        ) + 1e-9


class TestYield:
    def test_job_yield(self):
        assert job_yield(0.3, 0.6) == pytest.approx(0.5)
        assert job_yield(0.6, 0.6) == pytest.approx(1.0)

    def test_job_yield_validation(self):
        with pytest.raises(ValueError):
            job_yield(0.5, 0.0)
        with pytest.raises(ValueError):
            job_yield(-0.1, 0.5)


class TestDegradation:
    def test_best_algorithm_gets_one(self):
        factors = degradation_factors({"a": 10.0, "b": 5.0, "c": 50.0})
        assert factors["b"] == pytest.approx(1.0)
        assert factors["a"] == pytest.approx(2.0)
        assert factors["c"] == pytest.approx(10.0)

    def test_empty_input(self):
        assert degradation_factors({}) == {}

    def test_non_positive_stretch_rejected(self):
        with pytest.raises(ValueError):
            degradation_factors({"a": 0.0})

    def test_aggregate(self):
        stats = aggregate_degradation([1.0, 2.0, 3.0])
        assert stats.average == pytest.approx(2.0)
        assert stats.maximum == pytest.approx(3.0)
        assert stats.count == 3
        assert stats.as_row() == [stats.average, stats.std, stats.maximum]

    def test_aggregate_empty(self):
        stats = aggregate_degradation([])
        assert stats.count == 0
        assert stats.average == 0.0

    @given(st.dictionaries(st.text(min_size=1, max_size=5),
                           st.floats(min_value=1e-3, max_value=1e6),
                           min_size=1, max_size=8))
    def test_degradation_factor_properties(self, stretches):
        factors = degradation_factors(stretches)
        assert min(factors.values()) == pytest.approx(1.0)
        for name in stretches:
            assert factors[name] >= 1.0 - 1e-9
