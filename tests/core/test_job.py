"""Unit tests for :mod:`repro.core.job`."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.job import Job, JobSpec, JobState, MINIMUM_YIELD
from repro.exceptions import WorkloadError

from ..conftest import make_job


class TestJobSpecValidation:
    def test_valid_spec_round_trips_fields(self):
        spec = JobSpec(3, 10.0, 4, 0.5, 0.25, 3600.0)
        assert spec.job_id == 3
        assert spec.submit_time == 10.0
        assert spec.num_tasks == 4
        assert spec.cpu_need == 0.5
        assert spec.mem_requirement == 0.25
        assert spec.execution_time == 3600.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"job_id": -1},
            {"submit_time": -5.0},
            {"submit_time": math.nan},
            {"num_tasks": 0},
            {"cpu_need": 0.0},
            {"cpu_need": 1.5},
            {"mem_requirement": 0.0},
            {"mem_requirement": 1.2},
            {"execution_time": 0.0},
            {"execution_time": -10.0},
            {"execution_time": math.inf},
        ],
    )
    def test_invalid_specs_are_rejected(self, kwargs):
        base = dict(
            job_id=1,
            submit_time=0.0,
            num_tasks=2,
            cpu_need=0.5,
            mem_requirement=0.1,
            execution_time=100.0,
        )
        base.update(kwargs)
        with pytest.raises(WorkloadError):
            JobSpec(**base)

    def test_totals(self):
        spec = JobSpec(0, 0.0, 8, 0.25, 0.1, 60.0)
        assert spec.total_cpu_need == pytest.approx(2.0)
        assert spec.total_memory == pytest.approx(0.8)
        assert spec.dedicated_work() == pytest.approx(60.0)


class TestJobProgress:
    def test_initial_state(self):
        job = Job(spec=make_job(1, runtime=200.0))
        assert job.state is JobState.PENDING
        assert job.remaining_work == pytest.approx(200.0)
        assert job.virtual_time == 0.0
        assert not math.isfinite(job.predicted_completion(0.0))

    def test_advance_only_progresses_running_jobs(self):
        job = Job(spec=make_job(1, runtime=100.0))
        job.advance(50.0)
        assert job.remaining_work == pytest.approx(100.0)
        job.state = JobState.RUNNING
        job.current_yield = 0.5
        job.advance(50.0)
        assert job.remaining_work == pytest.approx(75.0)
        assert job.virtual_time == pytest.approx(25.0)

    def test_penalty_is_drained_before_progress(self):
        job = Job(spec=make_job(1, runtime=100.0))
        job.state = JobState.RUNNING
        job.current_yield = 1.0
        job.penalty_remaining = 30.0
        job.advance(40.0)
        assert job.penalty_remaining == pytest.approx(0.0)
        assert job.remaining_work == pytest.approx(90.0)
        assert job.virtual_time == pytest.approx(10.0)

    def test_penalty_longer_than_interval(self):
        job = Job(spec=make_job(1, runtime=100.0))
        job.state = JobState.RUNNING
        job.current_yield = 1.0
        job.penalty_remaining = 100.0
        job.advance(40.0)
        assert job.penalty_remaining == pytest.approx(60.0)
        assert job.remaining_work == pytest.approx(100.0)

    def test_predicted_completion_includes_penalty(self):
        job = Job(spec=make_job(1, runtime=100.0))
        job.state = JobState.RUNNING
        job.current_yield = 0.5
        job.penalty_remaining = 10.0
        assert job.predicted_completion(1000.0) == pytest.approx(1000.0 + 10.0 + 200.0)

    def test_negative_advance_rejected(self):
        job = Job(spec=make_job(1))
        with pytest.raises(ValueError):
            job.advance(-1.0)

    def test_flow_time_and_turnaround(self):
        job = Job(spec=make_job(1, submit=100.0, runtime=50.0))
        assert job.flow_time(130.0) == pytest.approx(30.0)
        assert job.flow_time(50.0) == 0.0
        with pytest.raises(ValueError):
            job.turnaround_time()
        job.completion_time = 400.0
        assert job.turnaround_time() == pytest.approx(300.0)

    @given(
        yield_value=st.floats(min_value=MINIMUM_YIELD, max_value=1.0),
        runtime=st.floats(min_value=1.0, max_value=1e5),
        steps=st.integers(min_value=1, max_value=20),
    )
    def test_work_conservation_property(self, yield_value, runtime, steps):
        """Virtual time plus remaining work always equals the dedicated work."""
        job = Job(spec=make_job(1, runtime=runtime))
        job.state = JobState.RUNNING
        job.current_yield = yield_value
        step = runtime / (yield_value * steps * 2)
        for _ in range(steps):
            job.advance(step)
        assert job.virtual_time + job.remaining_work == pytest.approx(runtime, rel=1e-6)
        assert job.remaining_work >= 0.0
