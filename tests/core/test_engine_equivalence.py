"""Equivalence of the O(active)-event-loop engine and the legacy full scan.

The refactored engine (active-job table + lazily invalidated completion-time
min-heap + busy-node refcounts) must be *byte-identical* to the seed
semantics, which are preserved verbatim behind
``SimulationConfig(legacy_event_loop=True)``.  These property-style tests
run both modes over seeded Lublin traces under the paper's algorithm
families and compare every externally observable quantity without any
tolerance; further cases exercise the lazy heap invalidation on migration
and preemption directly.
"""

from __future__ import annotations

import math

import pytest

from repro.core.allocation import AllocationDecision
from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig, Simulator
from repro.core.job import JobState
from repro.core.penalties import ReschedulingPenaltyModel
from repro.schedulers.base import Scheduler
from repro.schedulers.registry import create_scheduler
from repro.workloads.lublin import LublinWorkloadGenerator

from ..conftest import make_job

#: (algorithm, cluster nodes, trace length) — DFRS schedulers are far more
#: expensive per event than the batch ones, so they get smaller traces to
#: keep the tier-1 suite fast.
ALGORITHM_SCALES = [
    ("fcfs", 32, 120),
    ("easy", 32, 120),
    ("greedy", 16, 60),
    ("dynmcb8-asap-per-600", 16, 60),
]


def _fingerprint(result):
    """Every externally observable field of a SimulationResult, exactly."""
    return (
        result.algorithm,
        result.makespan,
        result.idle_node_seconds,
        result.scheduler_job_counts,
        [
            (
                record.spec.job_id,
                record.first_start_time,
                record.completion_time,
                record.preemptions,
                record.migrations,
            )
            for record in result.jobs
        ],
        (
            result.costs.preemption_count,
            result.costs.migration_count,
            result.costs.preemption_gb,
            result.costs.migration_gb,
        ),
    )


def _simulate(workload, algorithm, *, legacy, penalty=300.0):
    simulator = Simulator(
        workload.cluster,
        create_scheduler(algorithm),
        SimulationConfig(
            penalty_model=ReschedulingPenaltyModel(penalty),
            legacy_event_loop=legacy,
        ),
    )
    return simulator.run(workload.jobs)


class TestLegacyFastEquivalence:
    @pytest.mark.parametrize("algorithm,nodes,num_jobs", ALGORITHM_SCALES)
    @pytest.mark.parametrize("seed", [11, 42])
    def test_byte_identical_on_lublin_traces(self, algorithm, nodes, num_jobs, seed):
        cluster = Cluster(num_nodes=nodes, cores_per_node=4, node_memory_gb=8.0)
        workload = LublinWorkloadGenerator(cluster).generate(num_jobs, seed=seed)
        legacy = _simulate(workload, algorithm, legacy=True)
        fast = _simulate(workload, algorithm, legacy=False)
        assert _fingerprint(fast) == _fingerprint(legacy)

    @pytest.mark.parametrize("algorithm", ["easy", "dynmcb8-asap-per-600"])
    def test_byte_identical_without_penalty(self, algorithm):
        cluster = Cluster(num_nodes=16, cores_per_node=4, node_memory_gb=8.0)
        workload = LublinWorkloadGenerator(cluster).generate(50, seed=7)
        legacy = _simulate(workload, algorithm, legacy=True, penalty=0.0)
        fast = _simulate(workload, algorithm, legacy=False, penalty=0.0)
        assert _fingerprint(fast) == _fingerprint(legacy)

    def test_byte_identical_on_unsorted_submissions(self):
        """The sorted-spec fast path must not be assumed: out-of-order
        submit times fall back to explicit spec-order iteration."""
        jobs = [
            make_job(0, submit=50.0, runtime=80.0, mem=0.2),
            make_job(1, submit=0.0, runtime=120.0, mem=0.2),
            make_job(2, submit=25.0, runtime=60.0, mem=0.2),
            make_job(3, submit=0.0, runtime=40.0, mem=0.2),
        ]
        results = {}
        for legacy in (True, False):
            cluster = Cluster(num_nodes=4, cores_per_node=4, node_memory_gb=8.0)
            simulator = Simulator(
                cluster,
                create_scheduler("fcfs"),
                SimulationConfig(legacy_event_loop=legacy),
            )
            results[legacy] = simulator.run(jobs)
        assert _fingerprint(results[False]) == _fingerprint(results[True])


class ScriptedScheduler(Scheduler):
    """Scheduler whose behaviour is driven by a user-supplied callback."""

    name = "scripted"

    def __init__(self, callback):
        self._callback = callback

    def schedule(self, context):
        return self._callback(context)


class TestLazyHeapInvalidation:
    def _simulator(self, callback, *, nodes=4, penalty=0.0):
        cluster = Cluster(num_nodes=nodes, cores_per_node=4, node_memory_gb=8.0)
        return Simulator(
            cluster,
            ScriptedScheduler(callback),
            SimulationConfig(penalty_model=ReschedulingPenaltyModel(penalty)),
        )

    def test_migration_requeues_and_invalidates(self):
        """A migration pushes a fresh heap entry; the stale one is skipped."""

        def migrate_at_wakeup(context):
            decision = AllocationDecision()
            for view in context.jobs.values():
                nodes = [1] if context.is_wakeup else [0]
                decision.set(view.job_id, nodes, 1.0)
            if not context.is_wakeup:
                decision.request_wakeup(50.0)
            return decision

        simulator = self._simulator(migrate_at_wakeup, penalty=30.0)
        result = simulator.run([make_job(0, runtime=100.0)])
        record = result.jobs[0]
        assert record.migrations == 1
        # 100s of work + 30s migration penalty, no progress lost.
        assert record.completion_time == pytest.approx(130.0)
        # The stale pre-migration entry was lazily discarded: the heap holds
        # no live entries once the simulation has drained.
        assert math.isinf(simulator._next_completion_time())

    def test_preemption_invalidates_without_requeue(self):
        """A preempted job has no completion; its heap entry goes stale and
        the engine relies on the requested wake-up instead."""
        seen_states = []

        def preempt_then_resume(context):
            decision = AllocationDecision()
            for view in context.jobs.values():
                seen_states.append((context.time, view.state))
                if context.time < 50.0:
                    decision.set(view.job_id, [0], 1.0)
                    decision.request_wakeup(50.0)
                elif view.state is JobState.PAUSED or context.time >= 100.0:
                    decision.set(view.job_id, [0], 1.0)
                elif view.state is JobState.RUNNING:
                    decision.request_wakeup(100.0)
            return decision

        simulator = self._simulator(preempt_then_resume)
        result = simulator.run([make_job(0, runtime=100.0)])
        record = result.jobs[0]
        assert record.preemptions == 1
        # 50s progress, 50s paused, then the remaining 50s.
        assert record.completion_time == pytest.approx(150.0)
        assert (50.0, JobState.RUNNING) in seen_states

    def test_yield_shrink_pushes_new_completion(self):
        """Changing only the yield re-predicts the completion instant."""

        def shrink_at_wakeup(context):
            decision = AllocationDecision()
            for view in context.jobs.values():
                decision.set(view.job_id, [0], 0.5 if context.is_wakeup else 1.0)
            if not context.is_wakeup:
                decision.request_wakeup(50.0)
            return decision

        simulator = self._simulator(shrink_at_wakeup)
        result = simulator.run([make_job(0, runtime=100.0)])
        # 50s at yield 1.0 + 100s at yield 0.5.
        assert result.jobs[0].completion_time == pytest.approx(150.0)

    def test_stale_entries_accumulate_then_drain(self):
        """Repeated reallocations leave stale heap entries behind; they are
        discarded lazily and never surface as events."""
        bounces = 10

        def bounce(context):
            decision = AllocationDecision()
            for view in context.jobs.values():
                tick = int(context.time // 10.0)
                decision.set(view.job_id, [tick % 2], 1.0)
            if context.time < 10.0 * bounces:
                decision.request_wakeup(context.time + 10.0)
            return decision

        simulator = self._simulator(bounce)
        result = simulator.run([make_job(0, runtime=10.0 * bounces + 50.0)])
        record = result.jobs[0]
        assert record.migrations == bounces
        assert record.completion_time == pytest.approx(10.0 * bounces + 50.0)
        assert math.isinf(simulator._next_completion_time())


class TestIncrementalBusyNodes:
    def test_idle_node_seconds_matches_legacy(self):
        cluster = Cluster(num_nodes=16, cores_per_node=4, node_memory_gb=8.0)
        workload = LublinWorkloadGenerator(cluster).generate(60, seed=3)
        legacy = _simulate(workload, "greedy", legacy=True)
        fast = _simulate(workload, "greedy", legacy=False)
        assert fast.idle_node_seconds == legacy.idle_node_seconds

    def test_refcounts_drain_to_zero(self):
        def run_all(context):
            decision = AllocationDecision()
            node = 0
            for view in context.jobs.values():
                decision.set(view.job_id, [node % 4], 1.0)
                node += 1
            return decision

        cluster = Cluster(num_nodes=4, cores_per_node=4, node_memory_gb=8.0)
        simulator = Simulator(cluster, ScriptedScheduler(run_all))
        simulator.run([make_job(i, runtime=50.0 + i, mem=0.2) for i in range(4)])
        assert simulator._busy_count == 0
        assert simulator._node_refcount == {}
        assert simulator._active == {}
