"""Engine streaming-metrics mode: online summaries instead of job records."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig, Simulator
from repro.exceptions import ReproError
from repro.schedulers.registry import create_scheduler
from repro.traces import DiurnalPoissonTraceSource

CLUSTER = Cluster(32, 4, 8.0)

NUM_JOBS = 1500


def _source(num_jobs: int = NUM_JOBS, seed: int = 3) -> DiurnalPoissonTraceSource:
    # Sub-critical load so the active-job population stays small and the
    # suite stays fast; stretches still spread over several decades.
    return DiurnalPoissonTraceSource(
        num_jobs=num_jobs,
        seed=seed,
        mean_interarrival_seconds=360.0,
        runtime_log_mean=5.0,
        runtime_log_sigma=1.2,
        max_runtime_seconds=14400.0,
        serial_fraction=0.6,
    )


def _run(algorithm: str = "fcfs", *, streaming: bool, num_jobs: int = NUM_JOBS):
    config = SimulationConfig(streaming_metrics=streaming)
    simulator = Simulator(CLUSTER, create_scheduler(algorithm), config)
    result = simulator.run_stream(_source(num_jobs).jobs(CLUSTER))
    return simulator, result


@pytest.fixture(scope="module")
def materialized_run():
    return _run(streaming=False)


@pytest.fixture(scope="module")
def streamed_run():
    return _run(streaming=True)


class TestStreamingResult:
    def test_headline_statistics_match_materialized(self, materialized_run, streamed_run):
        _, materialized = materialized_run
        _, streamed = streamed_run

        assert streamed.is_streaming and not materialized.is_streaming
        assert streamed.jobs == []
        assert streamed.num_jobs == materialized.num_jobs == NUM_JOBS
        # max/min are tracked exactly; means via Welford within rounding.
        assert streamed.max_stretch == materialized.max_stretch
        assert streamed.mean_stretch == pytest.approx(
            materialized.mean_stretch, rel=1e-9
        )
        assert streamed.mean_turnaround == pytest.approx(
            materialized.mean_turnaround, rel=1e-9
        )
        assert streamed.makespan == materialized.makespan
        assert streamed.costs.preemption_count == materialized.costs.preemption_count

    def test_quantiles_within_documented_bound(self, materialized_run, streamed_run):
        _, materialized = materialized_run
        _, streamed = streamed_run
        alpha = streamed.job_stats.stretch_sketch.relative_error
        for q in (0.5, 0.9, 0.99):
            exact = materialized.stretch_quantile(q)
            estimate = streamed.stretch_quantile(q)
            assert abs(estimate - exact) <= alpha * exact + 1e-12

    def test_result_memory_is_bounded(self, streamed_run):
        # The whole point: no per-job records, no per-event timing vectors.
        simulator, streamed = streamed_run
        assert streamed.jobs == []
        assert streamed.scheduler_times == []
        assert streamed.scheduler_time_stats is not None
        assert streamed.scheduler_time_stats.count > 0
        assert simulator.peak_resident_jobs < NUM_JOBS

    def test_scheduler_timing_reductions(self, streamed_run):
        _, streamed = streamed_run
        assert streamed.mean_scheduler_time() > 0.0
        assert streamed.max_scheduler_time() >= streamed.mean_scheduler_time()
        assert streamed.scheduler_job_count_stats.maximum >= 1

    def test_stretches_raise_in_streaming_mode(self, streamed_run):
        _, streamed = streamed_run
        with pytest.raises(ReproError, match="streaming-metrics"):
            streamed.stretches()

    def test_materialized_intake_also_streams_metrics(self):
        # streaming_metrics is orthogonal to the intake mode: run() with a
        # materialized list reduces records the same way.
        specs = list(_source(400).jobs(CLUSTER))
        config = SimulationConfig(streaming_metrics=True)
        simulator = Simulator(CLUSTER, create_scheduler("fcfs"), config)
        result = simulator.run(specs)
        reference = Simulator(CLUSTER, create_scheduler("fcfs")).run(specs)
        assert result.num_jobs == reference.num_jobs == 400
        assert result.max_stretch == reference.max_stretch

    def test_summary_dictionary_works(self):
        _, streamed = _run(streaming=True, num_jobs=400)
        summary = streamed.summary()
        assert summary["algorithm_max_stretch"] == streamed.max_stretch
        assert math.isfinite(summary["mean_turnaround"])

    def test_custom_relative_error_is_honoured(self):
        config = SimulationConfig(streaming_metrics=True, metrics_relative_error=0.05)
        simulator = Simulator(CLUSTER, create_scheduler("fcfs"), config)
        result = simulator.run_stream(_source(300).jobs(CLUSTER))
        assert result.job_stats.stretch_sketch.relative_error == 0.05

    def test_default_mode_unchanged(self, materialized_run):
        _, materialized = materialized_run
        assert materialized.job_stats is None
        assert materialized.scheduler_time_stats is None
        assert len(materialized.jobs) == NUM_JOBS
        assert len(materialized.scheduler_times) > 0
