"""Unit tests for :mod:`repro.core.allocation`."""

from __future__ import annotations

import pytest

from repro.core.allocation import AllocationDecision, JobAllocation, validate_decision
from repro.core.job import MINIMUM_YIELD
from repro.exceptions import AllocationError, InfeasibleAllocationError

from ..conftest import make_job


class TestJobAllocation:
    def test_create_clamps_yield(self):
        alloc = JobAllocation.create([0, 1], 1.5)
        assert alloc.yield_value == pytest.approx(1.0)
        alloc = JobAllocation.create([0], 0.0001)
        assert alloc.yield_value == pytest.approx(MINIMUM_YIELD)

    def test_empty_nodes_rejected(self):
        with pytest.raises(AllocationError):
            JobAllocation(tuple(), 1.0)

    def test_bad_yield_rejected(self):
        with pytest.raises(AllocationError):
            JobAllocation((0,), 0.0)
        with pytest.raises(AllocationError):
            JobAllocation((0,), 1.5)

    def test_with_yield(self):
        alloc = JobAllocation((0, 1), 0.5)
        new = alloc.with_yield(0.7)
        assert new.nodes == (0, 1)
        assert new.yield_value == pytest.approx(0.7)
        assert alloc.yield_value == pytest.approx(0.5)

    def test_node_multiset(self):
        alloc = JobAllocation((2, 2, 5), 1.0)
        assert alloc.node_multiset() == {2: 2, 5: 1}


class TestAllocationDecision:
    def test_set_and_wakeups(self):
        decision = AllocationDecision()
        decision.set(7, [1, 2], 0.8)
        decision.request_wakeup(100.0)
        assert 7 in decision.running
        assert decision.running[7].nodes == (1, 2)
        assert decision.wakeups == [100.0]
        assert list(decision.job_ids()) == [7]


class TestValidateDecision:
    def test_valid_decision(self, small_cluster):
        specs = {1: make_job(1, tasks=2, cpu=0.5, mem=0.2)}
        decision = AllocationDecision()
        decision.set(1, [0, 1], 1.0)
        usage = validate_decision(decision, specs, small_cluster)
        assert usage.cpu_allocated(0) == pytest.approx(0.5)
        assert usage.memory_used(1) == pytest.approx(0.2)

    def test_unknown_job_rejected(self, small_cluster):
        decision = AllocationDecision()
        decision.set(99, [0], 1.0)
        with pytest.raises(AllocationError):
            validate_decision(decision, {}, small_cluster)

    def test_wrong_arity_rejected(self, small_cluster):
        specs = {1: make_job(1, tasks=3)}
        decision = AllocationDecision()
        decision.set(1, [0, 1], 1.0)
        with pytest.raises(AllocationError):
            validate_decision(decision, specs, small_cluster)

    def test_out_of_range_node_rejected(self, small_cluster):
        specs = {1: make_job(1, tasks=1)}
        decision = AllocationDecision()
        decision.set(1, [small_cluster.num_nodes], 1.0)
        with pytest.raises(AllocationError):
            validate_decision(decision, specs, small_cluster)

    def test_memory_overcommit_rejected(self, small_cluster):
        specs = {
            1: make_job(1, tasks=1, mem=0.7),
            2: make_job(2, tasks=1, mem=0.7),
        }
        decision = AllocationDecision()
        decision.set(1, [0], 0.5)
        decision.set(2, [0], 0.5)
        with pytest.raises(InfeasibleAllocationError):
            validate_decision(decision, specs, small_cluster)

    def test_cpu_overcommit_rejected(self, small_cluster):
        specs = {
            1: make_job(1, tasks=1, cpu=1.0, mem=0.1),
            2: make_job(2, tasks=1, cpu=1.0, mem=0.1),
        }
        decision = AllocationDecision()
        decision.set(1, [0], 0.8)
        decision.set(2, [0], 0.8)
        with pytest.raises(InfeasibleAllocationError):
            validate_decision(decision, specs, small_cluster)

    def test_cpu_sharing_within_capacity_accepted(self, small_cluster):
        specs = {
            1: make_job(1, tasks=1, cpu=1.0, mem=0.1),
            2: make_job(2, tasks=1, cpu=1.0, mem=0.1),
        }
        decision = AllocationDecision()
        decision.set(1, [0], 0.5)
        decision.set(2, [0], 0.5)
        usage = validate_decision(decision, specs, small_cluster)
        assert usage.cpu_allocated(0) == pytest.approx(1.0)
