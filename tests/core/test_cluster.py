"""Unit tests for :mod:`repro.core.cluster`."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.cluster import CAPACITY_EPSILON, Cluster, ClusterUsage
from repro.exceptions import ConfigurationError, InfeasibleAllocationError


class TestCluster:
    def test_defaults(self):
        cluster = Cluster(num_nodes=128)
        assert cluster.cores_per_node == 4
        assert cluster.node_memory_gb == 8.0
        assert list(cluster.node_ids) == list(range(128))
        assert cluster.sequential_cpu_need() == pytest.approx(0.25)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 0},
            {"num_nodes": -3},
            {"num_nodes": 4, "cores_per_node": 0},
            {"num_nodes": 4, "node_memory_gb": 0.0},
        ],
    )
    def test_invalid_cluster(self, kwargs):
        with pytest.raises(ConfigurationError):
            Cluster(**kwargs)


class TestClusterUsage:
    def test_add_and_remove_task(self, small_cluster):
        usage = small_cluster.usage()
        usage.add_task(0, cpu_need=0.5, mem_requirement=0.3, yield_value=0.8)
        assert usage.cpu_load(0) == pytest.approx(0.5)
        assert usage.cpu_allocated(0) == pytest.approx(0.4)
        assert usage.memory_used(0) == pytest.approx(0.3)
        assert usage.task_count(0) == 1
        assert usage.busy_nodes() == 1
        assert usage.idle_nodes() == small_cluster.num_nodes - 1
        usage.remove_task(0, 0.5, 0.3, 0.8)
        assert usage.cpu_load(0) == pytest.approx(0.0)
        assert usage.memory_used(0) == pytest.approx(0.0)
        assert usage.task_count(0) == 0

    def test_memory_capacity_enforced(self, small_cluster):
        usage = small_cluster.usage()
        usage.add_task(1, 0.1, 0.7, 1.0)
        with pytest.raises(InfeasibleAllocationError):
            usage.add_task(1, 0.1, 0.4, 1.0)

    def test_cpu_allocation_capacity_enforced(self, small_cluster):
        usage = small_cluster.usage()
        usage.add_task(2, 1.0, 0.1, 0.7)
        with pytest.raises(InfeasibleAllocationError):
            usage.add_task(2, 1.0, 0.1, 0.5)

    def test_cpu_load_may_exceed_capacity(self, small_cluster):
        """CPU *needs* can be oversubscribed as long as allocations are not."""
        usage = small_cluster.usage()
        usage.add_task(0, 1.0, 0.1, 0.4)
        usage.add_task(0, 1.0, 0.1, 0.4)
        assert usage.cpu_load(0) == pytest.approx(2.0)
        assert usage.cpu_allocated(0) == pytest.approx(0.8)
        assert usage.max_cpu_load() == pytest.approx(2.0)

    def test_add_job_rolls_back_on_failure(self, small_cluster):
        usage = small_cluster.usage()
        usage.add_task(0, 0.1, 0.9, 1.0)
        with pytest.raises(InfeasibleAllocationError):
            # Second task cannot fit on node 0 anymore.
            usage.add_job([1, 0], cpu_need=0.1, mem_requirement=0.5, yield_value=1.0)
        assert usage.memory_used(1) == pytest.approx(0.0)
        assert usage.task_count(1) == 0

    def test_nodes_by_cpu_load_orders_ties_by_index(self, small_cluster):
        usage = small_cluster.usage()
        usage.add_task(3, 0.5, 0.1, 1.0)
        order = usage.nodes_by_cpu_load()
        assert order[0] == 0
        assert order[-1] == 3

    def test_snapshot_is_independent(self, small_cluster):
        usage = small_cluster.usage()
        usage.add_task(0, 0.5, 0.5, 1.0)
        clone = usage.snapshot()
        clone.add_task(0, 0.1, 0.1, 1.0)
        assert usage.task_count(0) == 1
        assert clone.task_count(0) == 2

    def test_can_fit_memory(self, small_cluster):
        usage = small_cluster.usage()
        usage.add_task(0, 0.1, 0.95, 1.0)
        assert not usage.can_fit_memory(0, 0.1)
        assert usage.can_fit_memory(1, 0.1)

    @given(
        placements=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.floats(min_value=0.01, max_value=0.3),
                st.floats(min_value=0.01, max_value=0.12),
                st.floats(min_value=0.01, max_value=1.0),
            ),
            max_size=20,
        )
    )
    def test_usage_invariants_property(self, placements):
        """Adding then removing all tasks returns the tally to zero."""
        cluster = Cluster(num_nodes=8)
        usage = cluster.usage()
        added = []
        for node, cpu, mem, yd in placements:
            try:
                usage.add_task(node, cpu, mem, yd)
            except InfeasibleAllocationError:
                continue
            added.append((node, cpu, mem, yd))
            assert usage.memory_used(node) <= 1.0 + CAPACITY_EPSILON
            assert usage.cpu_allocated(node) <= 1.0 + CAPACITY_EPSILON
        for node, cpu, mem, yd in added:
            usage.remove_task(node, cpu, mem, yd)
        for node in cluster.node_ids:
            assert usage.task_count(node) == 0
            assert usage.memory_used(node) == pytest.approx(0.0, abs=1e-6)
            assert usage.cpu_allocated(node) == pytest.approx(0.0, abs=1e-6)
