"""Unit tests for :mod:`repro.core.events`."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.events import Event, EventQueue, EventType


class TestEventQueue:
    def test_empty_queue(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert not queue
        assert queue.peek_time() == math.inf
        with pytest.raises(IndexError):
            queue.pop()

    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(Event(30.0, EventType.JOB_SUBMISSION, 1))
        queue.push(Event(10.0, EventType.JOB_SUBMISSION, 2))
        queue.push(Event(20.0, EventType.SCHEDULER_WAKEUP))
        times = [queue.pop().time for _ in range(3)]
        assert times == [10.0, 20.0, 30.0]

    def test_simultaneous_events_ordered_by_type(self):
        """Completions are processed before submissions, then wake-ups."""
        queue = EventQueue()
        queue.push(Event(5.0, EventType.SCHEDULER_WAKEUP))
        queue.push(Event(5.0, EventType.JOB_SUBMISSION, 3))
        queue.push(Event(5.0, EventType.JOB_COMPLETION, 4))
        types = [queue.pop().event_type for _ in range(3)]
        assert types == [
            EventType.JOB_COMPLETION,
            EventType.JOB_SUBMISSION,
            EventType.SCHEDULER_WAKEUP,
        ]

    def test_pop_until(self):
        queue = EventQueue()
        for t in (1.0, 2.0, 3.0, 10.0):
            queue.push(Event(t, EventType.JOB_SUBMISSION, int(t)))
        events = queue.pop_until(3.0)
        assert [e.time for e in events] == [1.0, 2.0, 3.0]
        assert len(queue) == 1
        assert queue.peek_time() == 10.0

    def test_non_finite_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push(Event(math.inf, EventType.SCHEDULER_WAKEUP))

    @given(st.lists(st.floats(min_value=0.0, max_value=1e9), max_size=50))
    def test_pop_order_is_sorted_property(self, times):
        queue = EventQueue()
        for t in times:
            queue.push(Event(t, EventType.JOB_SUBMISSION, 0))
        popped = [queue.pop().time for _ in range(len(times))]
        assert popped == sorted(times)
