"""Tests for the exception hierarchy contract."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    AllocationError,
    ConfigurationError,
    InfeasibleAllocationError,
    ReproError,
    SchedulingError,
    SimulationError,
    TraceFormatError,
    WorkloadError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            ConfigurationError,
            AllocationError,
            InfeasibleAllocationError,
            SchedulingError,
            WorkloadError,
            TraceFormatError,
            SimulationError,
        ],
    )
    def test_everything_derives_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)
        with pytest.raises(ReproError):
            raise exception_type("boom")

    def test_specialisations(self):
        assert issubclass(InfeasibleAllocationError, AllocationError)
        assert issubclass(TraceFormatError, WorkloadError)

    def test_repro_error_is_an_exception(self):
        assert issubclass(ReproError, Exception)
