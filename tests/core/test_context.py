"""Unit tests for :mod:`repro.core.context`."""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.context import JobView, SchedulingContext
from repro.core.job import JobState


def make_view(job_id, state, assignment=None, current_yield=0.0, **kwargs):
    defaults = dict(
        num_tasks=2,
        cpu_need=0.5,
        mem_requirement=0.25,
        submit_time=0.0,
        virtual_time=0.0,
        flow_time=0.0,
        backoff_count=0,
        last_assignment=assignment,
    )
    defaults.update(kwargs)
    return JobView(
        job_id=job_id,
        state=state,
        assignment=assignment,
        current_yield=current_yield,
        **defaults,
    )


class TestJobView:
    def test_totals_and_state_flags(self):
        view = make_view(1, JobState.PENDING)
        assert view.total_cpu_need == pytest.approx(1.0)
        assert view.total_memory == pytest.approx(0.5)
        assert view.is_pending and not view.is_running and not view.is_paused

    def test_running_flags(self):
        view = make_view(1, JobState.RUNNING, assignment=(0, 1), current_yield=0.7)
        assert view.is_running
        assert view.assignment == (0, 1)


class TestSchedulingContext:
    def _context(self):
        cluster = Cluster(4)
        views = {
            0: make_view(0, JobState.RUNNING, assignment=(0, 1), current_yield=0.8),
            1: make_view(1, JobState.PAUSED),
            2: make_view(2, JobState.PENDING),
        }
        return SchedulingContext(time=100.0, cluster=cluster, jobs=views)

    def test_state_partitions(self):
        ctx = self._context()
        assert [v.job_id for v in ctx.running_jobs()] == [0]
        assert [v.job_id for v in ctx.paused_jobs()] == [1]
        assert [v.job_id for v in ctx.pending_jobs()] == [2]

    def test_usage_from_running(self):
        ctx = self._context()
        usage = ctx.usage_from_running()
        assert usage.cpu_load(0) == pytest.approx(0.5)
        assert usage.cpu_allocated(0) == pytest.approx(0.4)
        assert usage.memory_used(1) == pytest.approx(0.25)
        assert usage.busy_nodes() == 2

    def test_current_allocations(self):
        ctx = self._context()
        allocations = ctx.current_allocations()
        assert set(allocations) == {0}
        assert allocations[0].nodes == (0, 1)
        assert allocations[0].yield_value == pytest.approx(0.8)
