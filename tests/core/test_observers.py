"""Tests for the engine observer hooks and the built-in recorders."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    AllocationTraceRecorder,
    Cluster,
    EventLogRecorder,
    JobSpec,
    ReschedulingPenaltyModel,
    SimulationConfig,
    SimulationObserver,
    Simulator,
    UtilizationRecorder,
)
from repro.schedulers import create_scheduler


def _spec(job_id, submit, tasks=1, cpu=0.5, mem=0.2, runtime=100.0):
    return JobSpec(
        job_id=job_id,
        submit_time=submit,
        num_tasks=tasks,
        cpu_need=cpu,
        mem_requirement=mem,
        execution_time=runtime,
    )


def _run(specs, algorithm="greedy-pmtn", nodes=4, penalty=0.0, observers=()):
    cluster = Cluster(num_nodes=nodes, cores_per_node=4, node_memory_gb=8.0)
    simulator = Simulator(
        cluster,
        create_scheduler(algorithm),
        SimulationConfig(penalty_model=ReschedulingPenaltyModel(penalty)),
        observers=list(observers),
    )
    return simulator.run(specs)


class TestSimulationObserverBase:
    def test_base_observer_hooks_are_noops(self):
        observer = SimulationObserver()
        cluster = Cluster(num_nodes=2)
        spec = _spec(0, 0.0)
        # None of the default hooks should raise or return anything.
        assert observer.on_simulation_start(cluster, 0.0) is None
        assert observer.on_job_submitted(0.0, spec) is None
        assert observer.on_job_completed(1.0, spec) is None
        assert observer.on_simulation_end(2.0) is None

    def test_simulation_runs_unchanged_without_observers(self):
        specs = [_spec(0, 0.0), _spec(1, 10.0)]
        result_plain = _run(specs)
        result_observed = _run(specs, observers=[EventLogRecorder()])
        assert result_plain.max_stretch == pytest.approx(result_observed.max_stretch)
        assert result_plain.makespan == pytest.approx(result_observed.makespan)


class TestEventLogRecorder:
    def test_records_submission_start_and_completion(self):
        log = EventLogRecorder()
        specs = [_spec(0, 0.0, runtime=50.0)]
        _run(specs, observers=[log])
        kinds = [event.kind for event in log.events]
        assert kinds[0] == "sim-start"
        assert kinds[-1] == "sim-end"
        assert log.count("submit") == 1
        assert log.count("start") == 1
        assert log.count("complete") == 1

    def test_submission_precedes_start_which_precedes_completion(self):
        log = EventLogRecorder()
        _run([_spec(0, 5.0, runtime=40.0)], observers=[log])
        events = log.events_of_job(0)
        kinds = [event.kind for event in events]
        assert kinds.index("submit") < kinds.index("start") < kinds.index("complete")

    def test_every_job_gets_a_completion_event(self):
        log = EventLogRecorder()
        specs = [_spec(i, i * 5.0, runtime=30.0 + i) for i in range(6)]
        _run(specs, observers=[log])
        completed = {event.job_id for event in log.events_of_kind("complete")}
        assert completed == set(range(6))

    def test_event_times_are_non_decreasing(self):
        log = EventLogRecorder()
        specs = [_spec(i, i * 3.0, runtime=25.0) for i in range(8)]
        _run(specs, observers=[log])
        times = [event.time for event in log.events]
        assert times == sorted(times)

    def test_preemption_events_recorded_under_memory_pressure(self):
        # Two memory-heavy jobs on one node force the preempting greedy
        # algorithm to pause one of them when the second arrives.
        log = EventLogRecorder()
        specs = [
            _spec(0, 0.0, cpu=1.0, mem=0.9, runtime=500.0),
            _spec(1, 10.0, cpu=1.0, mem=0.9, runtime=500.0),
        ]
        _run(specs, algorithm="greedy-pmtn", nodes=1, observers=[log])
        assert log.count("preempt") >= 1
        assert log.count("resume") >= 1

    def test_events_of_kind_filters_correctly(self):
        log = EventLogRecorder()
        _run([_spec(0, 0.0)], observers=[log])
        for kind in ("submit", "start", "complete"):
            events = log.events_of_kind(kind)
            assert all(event.kind == kind for event in events)

    def test_counts_match_simulation_result_costs(self):
        log = EventLogRecorder()
        specs = [
            _spec(i, i * 2.0, cpu=1.0, mem=0.6, runtime=300.0) for i in range(5)
        ]
        result = _run(specs, algorithm="dynmcb8", nodes=2, observers=[log])
        assert log.count("preempt") == result.costs.preemption_count
        assert log.count("migrate") == result.costs.migration_count


class TestAllocationTraceRecorder:
    def test_single_job_yields_one_interval(self):
        trace = AllocationTraceRecorder()
        _run([_spec(0, 0.0, runtime=60.0)], observers=[trace])
        intervals = trace.intervals_of_job(0)
        assert len(intervals) >= 1
        assert intervals[0].start == pytest.approx(0.0)
        assert intervals[-1].end >= 60.0 - 1e-6

    def test_intervals_do_not_overlap_per_job(self):
        trace = AllocationTraceRecorder()
        specs = [_spec(i, i * 4.0, cpu=1.0, mem=0.5, runtime=200.0) for i in range(6)]
        _run(specs, algorithm="dynmcb8", nodes=2, observers=[trace])
        for job_id in trace.job_ids():
            intervals = trace.intervals_of_job(job_id)
            for earlier, later in zip(intervals, intervals[1:]):
                assert earlier.end <= later.start + 1e-9

    def test_interval_durations_are_positive(self):
        trace = AllocationTraceRecorder()
        specs = [_spec(i, i * 3.0, runtime=50.0) for i in range(5)]
        _run(specs, observers=[trace])
        assert all(interval.duration > 0 for interval in trace.intervals)

    def test_virtual_time_reconstruction_close_to_execution_time(self):
        # With no penalty, the sum of duration x yield over a job's intervals
        # must equal its dedicated execution time.
        trace = AllocationTraceRecorder()
        specs = [_spec(i, i * 10.0, cpu=0.8, mem=0.3, runtime=120.0) for i in range(4)]
        _run(specs, algorithm="dynmcb8-per-600", nodes=2, observers=[trace])
        for job_id in trace.job_ids():
            accrued = sum(iv.virtual_time for iv in trace.intervals_of_job(job_id))
            assert accrued == pytest.approx(120.0, rel=1e-6)

    def test_nodes_are_within_cluster_range(self):
        trace = AllocationTraceRecorder()
        specs = [_spec(i, i * 2.0, tasks=2, runtime=80.0) for i in range(4)]
        _run(specs, nodes=4, observers=[trace])
        for interval in trace.intervals:
            assert all(0 <= node < 4 for node in interval.nodes)

    def test_busy_node_seconds_positive(self):
        trace = AllocationTraceRecorder()
        _run([_spec(0, 0.0, runtime=100.0)], observers=[trace])
        assert trace.busy_node_seconds() >= 100.0 - 1e-6


class TestUtilizationRecorder:
    def test_samples_are_recorded_for_every_event(self):
        recorder = UtilizationRecorder()
        specs = [_spec(i, i * 5.0, runtime=40.0) for i in range(5)]
        _run(specs, observers=[recorder])
        assert len(recorder.samples) >= 5  # at least one sample per submission

    def test_memory_never_exceeds_cluster_capacity(self):
        recorder = UtilizationRecorder()
        specs = [_spec(i, i * 1.0, cpu=1.0, mem=0.7, runtime=200.0) for i in range(8)]
        _run(specs, algorithm="dynmcb8", nodes=3, observers=[recorder])
        assert recorder.peak_memory_used() <= 3.0 + 1e-6

    def test_cpu_allocated_never_exceeds_cluster_capacity(self):
        recorder = UtilizationRecorder()
        specs = [_spec(i, i * 1.0, cpu=1.0, mem=0.2, runtime=150.0) for i in range(10)]
        _run(specs, algorithm="dynmcb8", nodes=4, observers=[recorder])
        assert recorder.peak_cpu_allocated() <= 4.0 + 1e-6

    def test_busy_nodes_bounded_by_cluster_size(self):
        recorder = UtilizationRecorder()
        specs = [_spec(i, i * 1.0, tasks=2, runtime=100.0) for i in range(6)]
        _run(specs, nodes=4, observers=[recorder])
        assert recorder.peak_busy_nodes() <= 4

    def test_min_yield_in_unit_interval(self):
        recorder = UtilizationRecorder()
        specs = [_spec(i, i * 1.0, cpu=1.0, mem=0.1, runtime=100.0) for i in range(10)]
        _run(specs, algorithm="greedy-pmtn", nodes=2, observers=[recorder])
        for sample in recorder.samples:
            assert 0.0 < sample.min_yield <= 1.0 + 1e-9

    def test_times_non_decreasing(self):
        recorder = UtilizationRecorder()
        specs = [_spec(i, i * 7.0, runtime=60.0) for i in range(5)]
        _run(specs, observers=[recorder])
        times = [sample.time for sample in recorder.samples]
        assert times == sorted(times)

    def test_empty_recorder_peaks_are_zero(self):
        recorder = UtilizationRecorder()
        assert recorder.peak_busy_nodes() == 0
        assert recorder.peak_cpu_allocated() == 0.0
        assert recorder.peak_memory_used() == 0.0


class TestMultipleObservers:
    def test_all_observers_receive_callbacks(self):
        log = EventLogRecorder()
        trace = AllocationTraceRecorder()
        util = UtilizationRecorder()
        specs = [_spec(i, i * 5.0, runtime=50.0) for i in range(4)]
        _run(specs, observers=[log, trace, util])
        assert log.count("complete") == 4
        assert len(trace.intervals) >= 4
        assert len(util.samples) >= 4

    def test_observer_state_reset_between_runs(self):
        log = EventLogRecorder()
        specs = [_spec(0, 0.0, runtime=40.0)]
        _run(specs, observers=[log])
        first_count = len(log.events)
        _run(specs, observers=[log])
        # on_simulation_start resets nothing in the log recorder by design;
        # the trace and utilization recorders do reset.
        assert len(log.events) >= first_count
        trace = AllocationTraceRecorder()
        _run(specs, observers=[trace])
        _run(specs, observers=[trace])
        assert len(trace.intervals_of_job(0)) >= 1

    def test_custom_observer_subclass_receives_lifecycle(self):
        class Counter(SimulationObserver):
            def __init__(self):
                self.started = 0
                self.completed = 0
                self.ended = False

            def on_job_started(self, time, spec, allocation):
                self.started += 1

            def on_job_completed(self, time, spec):
                self.completed += 1

            def on_simulation_end(self, time):
                self.ended = True

        counter = Counter()
        specs = [_spec(i, i * 2.0, runtime=30.0) for i in range(3)]
        _run(specs, observers=[counter])
        assert counter.started >= 3
        assert counter.completed == 3
        assert counter.ended is True
