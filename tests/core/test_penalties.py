"""Unit tests for :mod:`repro.core.penalties`."""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.penalties import (
    FIVE_MINUTE_PENALTY,
    NO_PENALTY,
    ReschedulingPenaltyModel,
)
from repro.exceptions import ConfigurationError

from ..conftest import make_job


class TestPenaltyModel:
    def test_constants(self):
        assert NO_PENALTY.penalty_seconds == 0.0
        assert FIVE_MINUTE_PENALTY.penalty_seconds == 300.0

    def test_negative_penalty_rejected(self):
        with pytest.raises(ConfigurationError):
            ReschedulingPenaltyModel(-1.0)

    def test_penalty_values(self):
        model = ReschedulingPenaltyModel(120.0)
        spec = make_job(1, tasks=4, mem=0.25)
        assert model.resume_penalty(spec) == pytest.approx(120.0)
        assert model.migration_penalty(spec) == pytest.approx(120.0)

    def test_memory_accounting_scales_with_node_memory(self):
        model = ReschedulingPenaltyModel(300.0)
        cluster = Cluster(num_nodes=128, cores_per_node=4, node_memory_gb=8.0)
        spec = make_job(1, tasks=128, mem=1.0)
        # 128 tasks x 100% of an 8 GB node = 1 TB, the paper's footnote example.
        assert model.job_memory_gb(spec, cluster) == pytest.approx(1024.0)
        assert model.preemption_bytes_gb(spec, cluster) == pytest.approx(1024.0)
        assert model.migration_bytes_gb(spec, cluster) == pytest.approx(1024.0)

    def test_small_job_memory(self):
        model = NO_PENALTY
        cluster = Cluster(num_nodes=4, node_memory_gb=2.0)
        spec = make_job(1, tasks=2, mem=0.5)
        assert model.job_memory_gb(spec, cluster) == pytest.approx(2.0)
