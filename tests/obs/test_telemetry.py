"""Telemetry sink unit tests: intake, bundles, merge algebra, ambient sink."""

from __future__ import annotations

import json
import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.metrics import Moments, SumAccumulator
from repro.metrics.jobs import bundle_to_dict
from repro.obs import (
    NoTelemetry,
    StatsTelemetry,
    Telemetry,
    TracingTelemetry,
    as_telemetry,
    current_telemetry,
    merge_telemetry_bundles,
    push_telemetry,
    summarize_bundle,
    telemetry_config_from_dict,
    timed_phase,
)


def sink_with(counters=(), gauges=(), phases=(), **kwargs) -> Telemetry:
    telemetry = Telemetry(**kwargs)
    for name, n in counters:
        telemetry.count(name, n)
    for name, value in gauges:
        telemetry.gauge(name, value)
    for name, duration in phases:
        telemetry.record_phase(name, 10.0, 10.0 + duration)
    return telemetry


class TestIntake:
    def test_counters_accumulate(self):
        telemetry = sink_with(counters=[("events", 3), ("events", 2), ("other", 1)])
        assert telemetry.counters == {"events": 5, "other": 1}

    def test_bundle_prefixes_by_family(self):
        telemetry = sink_with(
            counters=[("c", 1)], gauges=[("g", 2.0)], phases=[("p", 0.5)]
        )
        bundle = telemetry.bundle()
        assert set(bundle) == {"counter.c", "gauge.g", "phase.p"}
        assert isinstance(bundle["counter.c"], SumAccumulator)
        assert isinstance(bundle["gauge.g"], Moments)
        assert isinstance(bundle["phase.p"], Moments)
        assert bundle["phase.p"].mean == pytest.approx(0.5)

    def test_pending_phases_flush_into_bundle(self):
        telemetry = Telemetry()
        for _ in range(5000):  # crosses the internal flush threshold
            telemetry.record_phase("hot", 0.0, 1e-6)
        assert telemetry.bundle()["phase.hot"].n == 5000

    def test_summary_is_json_safe(self):
        telemetry = sink_with(
            counters=[("c", 1)], gauges=[("g", 2.0)], phases=[("p", 0.5)]
        )
        summary = telemetry.summary()
        assert json.loads(json.dumps(summary)) == summary
        assert summary["phases"]["p"]["count"] == 1
        assert summary["phases"]["p"]["total_seconds"] == pytest.approx(0.5)

    def test_span_capture_is_bounded(self):
        telemetry = Telemetry(capture_spans=True, max_spans=3)
        for index in range(5):
            telemetry.record_phase("p", float(index), float(index) + 0.1)
        assert len(telemetry.span_events()) == 3
        assert telemetry.dropped_spans == 2
        assert telemetry.summary()["dropped_spans"] == 2

    def test_stats_sink_keeps_no_spans(self):
        telemetry = sink_with(phases=[("p", 0.5)])
        assert telemetry.span_events() == []
        assert telemetry.bundle()["phase.p"].n == 1


class TestMergeAlgebra:
    def bundles(self):
        a = sink_with(counters=[("c", 1)], phases=[("p", 0.1), ("q", 0.2)])
        b = sink_with(counters=[("c", 2)], phases=[("p", 0.3)])
        c = sink_with(gauges=[("g", 5.0)], phases=[("q", 0.4)])
        return [bundle_to_dict(t.bundle()) for t in (a, b, c)]

    def test_union_wise_merge(self):
        merged = merge_telemetry_bundles(self.bundles())
        assert merged["counter.c"].total == pytest.approx(3.0)
        assert merged["phase.p"].n == 2
        assert merged["phase.q"].n == 2
        assert merged["gauge.g"].n == 1

    def test_merge_is_associative_and_order_insensitive(self):
        bundles = self.bundles()
        left = summarize_bundle(
            merge_telemetry_bundles(
                [bundle_to_dict(merge_telemetry_bundles(bundles[:2])), bundles[2]]
            )
        )
        right = summarize_bundle(
            merge_telemetry_bundles(
                [bundles[0], bundle_to_dict(merge_telemetry_bundles(bundles[1:]))]
            )
        )
        flat = summarize_bundle(merge_telemetry_bundles(bundles))
        reversed_ = summarize_bundle(merge_telemetry_bundles(bundles[::-1]))
        assert left == right == flat
        assert reversed_["counters"] == flat["counters"]
        assert reversed_["phases"].keys() == flat["phases"].keys()
        for name in flat["phases"]:
            for key, value in flat["phases"][name].items():
                assert reversed_["phases"][name][key] == pytest.approx(value)

    def test_merged_bundle_round_trips_through_json(self):
        merged = merge_telemetry_bundles(self.bundles())
        as_dict = bundle_to_dict(merged)
        assert json.loads(json.dumps(as_dict)) == as_dict
        assert summarize_bundle(merge_telemetry_bundles([as_dict])) == (
            summarize_bundle(merged)
        )


class TestAmbientSink:
    def test_push_returns_previous(self):
        assert current_telemetry() is None
        sink = Telemetry()
        assert push_telemetry(sink) is None
        try:
            assert current_telemetry() is sink
        finally:
            assert push_telemetry(None) is sink
        assert current_telemetry() is None

    def test_timed_phase_records_into_ambient_sink(self):
        @timed_phase("unit.work")
        def work(x):
            return x * 2

        assert work(3) == 6  # uninstrumented: plain call
        sink = Telemetry()
        previous = push_telemetry(sink)
        try:
            assert work(4) == 8
        finally:
            push_telemetry(previous)
        assert sink.bundle()["phase.unit.work"].n == 1

    def test_ambient_sink_is_thread_local(self):
        sink = Telemetry()
        push_telemetry(sink)
        seen = []
        try:
            thread = threading.Thread(target=lambda: seen.append(current_telemetry()))
            thread.start()
            thread.join()
        finally:
            push_telemetry(None)
        assert seen == [None]


class TestSpecs:
    def test_as_telemetry_coercions(self):
        assert as_telemetry(None) is None
        assert as_telemetry({"type": "off"}) is None
        sink = Telemetry()
        assert as_telemetry(sink) is sink
        stats = as_telemetry({"type": "stats"})
        assert isinstance(stats, Telemetry) and not stats.capture_spans
        tracing = as_telemetry(TracingTelemetry(max_spans=9))
        assert tracing.capture_spans and tracing.max_spans == 9

    def test_as_telemetry_rejects_junk(self):
        with pytest.raises(ConfigurationError):
            as_telemetry(42)

    def test_spec_round_trips(self):
        for spec in (NoTelemetry(), StatsTelemetry(), TracingTelemetry(max_spans=7)):
            data = spec.to_dict()
            assert telemetry_config_from_dict(data).to_dict() == data

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigurationError):
            telemetry_config_from_dict({"type": "nope"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            telemetry_config_from_dict({"type": "stats", "bogus": 1})
