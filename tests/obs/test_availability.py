"""Windowed availability measurement: recorder, collector, streaming parity."""

from __future__ import annotations

import json

import pytest

from repro.campaign import AvailabilityCollector, Campaign
from repro.campaign.scenario import CollectorSpec, LublinSource, Scenario
from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig, Simulator
from repro.core.job import JobSpec
from repro.core.observers import AvailabilityRecorder, create_recorder
from repro.exceptions import ConfigurationError, SimulationError
from repro.platform import HomogeneousPlatform, TraceNodeEventSource
from repro.schedulers import create_scheduler


def _jobs(n=6, runtime=1000.0, spacing=500.0):
    return [
        JobSpec(
            job_id=i,
            submit_time=i * spacing,
            num_tasks=2,
            cpu_need=1.0,
            mem_requirement=0.4,
            execution_time=runtime,
        )
        for i in range(n)
    ]


def _failure_scenario(**overrides):
    options = dict(
        name="avail",
        source=LublinSource(num_traces=2, num_jobs=25, seed_base=9),
        algorithms=("greedy-pmtn-migr",),
        platform=HomogeneousPlatform(
            nodes=8,
            events=TraceNodeEventSource(
                events_list=(
                    (5_000.0, 3, "down"),
                    (60_000.0, 3, "up"),
                    (80_000.0, 1, "down"),
                    (140_000.0, 1, "up"),
                )
            ),
            failure_policy="migrate",
        ),
        collectors=(
            CollectorSpec("availability", options={"window_seconds": 7200.0}),
        ),
    )
    options.update(overrides)
    return Scenario(**options)


class TestAvailabilityRecorder:
    def _run(self, events=(), jobs=None):
        recorder = AvailabilityRecorder()
        source = TraceNodeEventSource(events_list=tuple(events)) if events else None
        config = SimulationConfig(node_events=source, failure_policy="migrate")
        engine = Simulator(
            Cluster(4, 4, 8.0),
            create_scheduler("greedy-pmtn-migr"),
            config,
            observers=[recorder],
        )
        engine.run(jobs if jobs is not None else _jobs())
        return recorder

    def test_no_failures_is_fully_available(self):
        recorder = self._run()
        assert recorder.delivered_cpu_seconds() == pytest.approx(
            recorder.nominal_cpu_capacity() * recorder.duration()
        )

    def test_downtime_subtracts_node_capacity(self):
        recorder = self._run(events=[(1000.0, 0, "down"), (2000.0, 0, "up")])
        nominal = recorder.nominal_cpu_capacity()
        expected = nominal * recorder.duration() - (nominal / 4) * 1000.0
        assert recorder.delivered_cpu_seconds() == pytest.approx(expected)

    def test_registered_as_recorder_factory(self):
        assert isinstance(create_recorder("availability"), AvailabilityRecorder)


class TestEngineWindowStats:
    def test_window_durations_tile_the_run_exactly(self):
        # Window accumulators ride the streaming-metrics seam (engine only
        # allocates them there; materialized runs window via the recorder).
        config = SimulationConfig(
            streaming_metrics=True, availability_window_seconds=600.0
        )
        engine = Simulator(
            Cluster(4, 4, 8.0), create_scheduler("greedy-pmtn-migr"), config
        )
        result = engine.run(_jobs())
        stats = result.avail_window_stats
        assert stats is not None and len(stats) > 1
        total = sum(window.duration for window in stats.values())
        span = result.makespan - min(job.submit_time for job in _jobs())
        assert total == pytest.approx(span)

    def test_invalid_window_rejected(self):
        for bad in (0.0, -5.0, float("nan"), float("inf")):
            with pytest.raises(SimulationError):
                Simulator(
                    Cluster(4, 4, 8.0),
                    create_scheduler("fcfs"),
                    SimulationConfig(availability_window_seconds=bad),
                )


class TestAvailabilityCollector:
    def test_window_options_validated(self):
        with pytest.raises(ConfigurationError):
            AvailabilityCollector(window_seconds=0.0)
        with pytest.raises(ConfigurationError):
            AvailabilityCollector(window_seconds=float("nan"))

    def test_materialized_rows(self):
        outcome = Campaign().run(_failure_scenario())
        for row in outcome.rows:
            metrics = row.metrics
            assert 0.0 < metrics["availability"] < 1.0
            assert metrics["delivered_cpu_hours"] < metrics["nominal_cpu_hours"]
            assert metrics["downtime_cpu_hours"] > 0.0
            assert metrics["availability_windows"] >= 1
            assert (
                metrics["min_window_availability"]
                <= metrics["mean_window_availability"]
            )
            assert json.loads(json.dumps(metrics)) == metrics

    def test_streaming_rows_match_materialized_exactly(self):
        scenario = _failure_scenario()
        materialized = Campaign().run(scenario)
        streamed = Campaign(streaming=True).run(scenario)
        fields = (
            "availability",
            "delivered_cpu_hours",
            "nominal_cpu_hours",
            "downtime_cpu_hours",
            "availability_windows",
            "min_window_availability",
            "mean_window_availability",
        )
        # Streaming rows merge the instances of each cell into one row, so
        # compare against the capacity-weighted merge of the per-run rows.
        assert len(streamed.rows) == 1
        merged = streamed.rows[0].metrics
        per_run = [row.metrics for row in materialized.rows]
        delivered = sum(m["delivered_cpu_hours"] for m in per_run)
        nominal = sum(m["nominal_cpu_hours"] for m in per_run)
        assert merged["delivered_cpu_hours"] == pytest.approx(delivered)
        assert merged["nominal_cpu_hours"] == pytest.approx(nominal)
        assert merged["availability"] == pytest.approx(delivered / nominal)
        assert merged["availability_windows"] == sum(
            m["availability_windows"] for m in per_run
        )
        assert merged["min_window_availability"] == pytest.approx(
            min(m["min_window_availability"] for m in per_run)
        )
        for field in fields:
            assert field in merged

    def test_conflicting_window_widths_rejected_when_streaming(self):
        scenario = _failure_scenario(
            collectors=(
                CollectorSpec("availability", options={"window_seconds": 3600.0}),
                CollectorSpec("availability", options={"window_seconds": 7200.0}),
            ),
        )
        with pytest.raises(ConfigurationError):
            Campaign(streaming=True).run(scenario)
