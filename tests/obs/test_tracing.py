"""Chrome trace-event export: schema, ordering, and the trace_span helper."""

from __future__ import annotations

import json

import pytest

from repro.obs import Telemetry, chrome_trace_events, trace_span, write_chrome_trace


def tracing_sink() -> Telemetry:
    telemetry = Telemetry(capture_spans=True)
    telemetry.record_phase("alpha", 100.0, 100.5)
    telemetry.record_phase("beta", 100.2, 100.3)
    telemetry.count("events", 7)
    return telemetry


class TestTraceSpan:
    def test_noop_on_none(self):
        with trace_span("anything", None):
            pass  # must not raise

    def test_records_phase_and_span(self):
        telemetry = Telemetry(capture_spans=True)
        with trace_span("work", telemetry):
            pass
        assert telemetry.bundle()["phase.work"].n == 1
        assert [name for name, _, _ in telemetry.span_events()] == ["work"]

    def test_records_on_exception(self):
        telemetry = Telemetry()
        with pytest.raises(ValueError):
            with trace_span("work", telemetry):
                raise ValueError("boom")
        assert telemetry.bundle()["phase.work"].n == 1


class TestChromeTraceSchema:
    def test_event_list_shape(self):
        events = chrome_trace_events(tracing_sink())
        metadata, first, second = events
        assert metadata == {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro-dfrs"},
        }
        # Complete events, sorted by start, microseconds relative to the
        # earliest span — epoch offsets never leak into the artifact.
        assert first["ph"] == second["ph"] == "X"
        assert first["name"] == "alpha" and first["ts"] == 0.0
        assert first["dur"] == pytest.approx(0.5e6)
        assert second["name"] == "beta" and second["ts"] == pytest.approx(0.2e6)
        assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(first)

    def test_empty_sink_has_only_metadata(self):
        events = chrome_trace_events(Telemetry(capture_spans=True))
        assert [event["ph"] for event in events] == ["M"]

    def test_pid_tid_pass_through(self):
        events = chrome_trace_events(tracing_sink(), pid=3, tid=9)
        assert all(e["pid"] == 3 and e["tid"] == 9 for e in events)


class TestWriteChromeTrace:
    def test_file_is_perfetto_loadable_object_form(self, tmp_path):
        target = write_chrome_trace(tracing_sink(), tmp_path / "trace.json")
        payload = json.loads(target.read_text())
        assert set(payload) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["counters"] == {"events": 7}
        assert payload["otherData"]["dropped_spans"] == 0
        assert len(payload["traceEvents"]) == 3
