"""The tentpole guarantee: telemetry never changes simulated results.

An instrumented run must make byte-identical placement decisions to an
uninstrumented one — for every paper algorithm, on every driver (``run``,
``run_stream``, and a serving-layer replay).  The disabled path is the
default, so this also pins that enabling telemetry is purely additive.
"""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig, Simulator
from repro.obs import Telemetry
from repro.schedulers import PAPER_ALGORITHMS, create_scheduler
from repro.serve import PlacementLogObserver, SchedulerService
from repro.traces import DiurnalPoissonTraceSource

CLUSTER = Cluster(16, 4, 8.0)

#: Sub-critical arrivals with enough churn to exercise preemption and
#: migration paths (the replay-determinism recipe, shortened).
TRACE = DiurnalPoissonTraceSource(
    num_jobs=100,
    seed=11,
    mean_interarrival_seconds=90.0,
    runtime_log_mean=5.0,
    runtime_log_sigma=1.0,
    max_runtime_seconds=7200.0,
    serial_fraction=0.6,
)


def _run_log(algorithm, telemetry):
    observer = PlacementLogObserver()
    config = SimulationConfig(telemetry=telemetry)
    engine = Simulator(
        CLUSTER, create_scheduler(algorithm), config, observers=[observer]
    )
    workload = list(TRACE.jobs(CLUSTER))
    result = engine.run(workload)
    return observer.to_json_bytes(), result, engine


def _stream_log(algorithm, telemetry):
    observer = PlacementLogObserver()
    config = SimulationConfig(streaming_metrics=True, telemetry=telemetry)
    engine = Simulator(
        CLUSTER, create_scheduler(algorithm), config, observers=[observer]
    )
    result = engine.run_stream(TRACE.jobs(CLUSTER))
    return observer.to_json_bytes(), result, engine


def _replay_log(algorithm, telemetry):
    observer = PlacementLogObserver()
    service = SchedulerService(
        CLUSTER,
        algorithm,
        config=SimulationConfig(streaming_metrics=True),
        observers=[observer],
        telemetry=telemetry,
    )
    report = service.replay(TRACE)
    return observer.to_json_bytes(), report, service


@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
class TestByteIdentity:
    def test_run_is_byte_identical(self, algorithm):
        bare_bytes, bare_result, _ = _run_log(algorithm, None)
        inst_bytes, inst_result, engine = _run_log(algorithm, {"type": "stats"})
        assert inst_bytes == bare_bytes
        assert inst_result.makespan == bare_result.makespan
        assert engine.telemetry is not None
        summary = engine.telemetry.summary()
        assert summary["counters"]["engine.events"] > 0
        assert summary["phases"]["engine.schedule"]["count"] > 0

    def test_run_stream_is_byte_identical(self, algorithm):
        bare_bytes, bare_result, bare_engine = _stream_log(algorithm, None)
        inst_bytes, inst_result, engine = _stream_log(algorithm, {"type": "stats"})
        assert inst_bytes == bare_bytes
        assert inst_result.makespan == bare_result.makespan
        assert engine.events_processed == bare_engine.events_processed
        assert (
            engine.telemetry.summary()["phases"]["engine.stream_intake"]["count"] > 0
        )

    def test_serve_replay_is_byte_identical(self, algorithm):
        bare_bytes, bare_report, _ = _replay_log(algorithm, None)
        inst_bytes, inst_report, service = _replay_log(
            algorithm, {"type": "stats"}
        )
        assert inst_bytes == bare_bytes
        assert inst_report.placements == bare_report.placements
        assert inst_report.completions == bare_report.completions
        assert "telemetry" in service.metrics_snapshot()

    def test_flight_recorder_keeps_run_byte_identical(self, algorithm):
        bare_bytes, _, _ = _run_log(algorithm, None)
        inst_bytes, _, engine = _run_log(
            algorithm, {"type": "stats", "flight": 65_536}
        )
        assert inst_bytes == bare_bytes
        assert len(engine.telemetry.flight) > 0
        assert engine.telemetry.flight.dropped == 0

    def test_flight_recorder_keeps_run_stream_byte_identical(self, algorithm):
        bare_bytes, _, _ = _stream_log(algorithm, None)
        inst_bytes, _, engine = _stream_log(
            algorithm, {"type": "stats", "flight": 65_536}
        )
        assert inst_bytes == bare_bytes
        assert len(engine.telemetry.flight) > 0

    def test_flight_recorder_keeps_serve_replay_byte_identical(self, algorithm):
        bare_bytes, _, _ = _replay_log(algorithm, None)
        inst_bytes, _, service = _replay_log(
            algorithm, {"type": "stats", "flight": 65_536}
        )
        assert inst_bytes == bare_bytes
        assert len(service.telemetry.flight) > 0


class TestInstrumentCoverage:
    def test_tracing_sink_captures_spans(self):
        sink = Telemetry(capture_spans=True)
        _, _, engine = _run_log("greedy-pmtn-migr", sink)
        assert engine.telemetry is sink
        names = {name for name, _, _ in sink.span_events()}
        assert "engine.schedule" in names
        assert "engine.apply" in names

    def test_packer_phases_appear_for_dynmcb8(self):
        _, _, engine = _run_log("dynmcb8", {"type": "stats"})
        assert "packing.mcb8" in engine.telemetry.summary()["phases"]

    def test_disabled_engine_has_no_sink(self):
        _, _, engine = _run_log("fcfs", None)
        assert engine.telemetry is None
