"""Tests for the long-haul soak harness (repro.obs.soak)."""

from __future__ import annotations

import json

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig
from repro.exceptions import ConfigurationError
from repro.obs.soak import (
    SoakConfig,
    SoakReport,
    current_rss_mb,
    rss_slope_mb_per_min,
    run_soak,
)
from repro.traces import DiurnalPoissonTraceSource

CLUSTER = Cluster(16, 4, 8.0)

TRACE = DiurnalPoissonTraceSource(
    num_jobs=2_000,
    seed=11,
    mean_interarrival_seconds=90.0,
    runtime_log_mean=5.0,
    runtime_log_sigma=1.0,
    max_runtime_seconds=7200.0,
    serial_fraction=0.6,
)


class TestRssSlope:
    def test_too_few_samples_is_flat(self):
        assert rss_slope_mb_per_min([]) == 0.0
        assert rss_slope_mb_per_min([(0.0, 100.0)]) == 0.0

    def test_constant_rss_is_flat(self):
        samples = [(float(t), 50.0) for t in range(10)]
        assert rss_slope_mb_per_min(samples) == pytest.approx(0.0)

    def test_linear_growth_recovered(self):
        # 2 MB per second = 120 MB per minute.
        samples = [(float(t), 100.0 + 2.0 * t) for t in range(10)]
        assert rss_slope_mb_per_min(samples) == pytest.approx(120.0)

    def test_shrinking_rss_is_negative(self):
        samples = [(float(t), 100.0 - 1.0 * t) for t in range(10)]
        assert rss_slope_mb_per_min(samples) == pytest.approx(-60.0)

    def test_zero_time_variance_is_flat(self):
        assert rss_slope_mb_per_min([(1.0, 10.0), (1.0, 90.0)]) == 0.0


class TestCurrentRss:
    def test_reads_positive_resident_size(self):
        rss = current_rss_mb()
        assert rss is not None
        assert rss > 1.0


class TestSoakConfig:
    def test_defaults_valid(self):
        config = SoakConfig()
        assert config.acceleration > 0
        assert config.wall_seconds > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"acceleration": 0.0},
            {"acceleration": -1.0},
            {"wall_seconds": 0.0},
            {"scrape_interval_seconds": -2.0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SoakConfig(**kwargs)


class TestInvariantChecking:
    def _report(self, **overrides):
        fields = dict(
            algorithm="fcfs",
            workload="t",
            nodes=16,
            acceleration=3600.0,
            wall_seconds=10.0,
            sim_seconds=36_000.0,
            submitted=100,
            accepted=100,
            placements=100,
            completions=90,
            placements_per_wall_sec=10.0,
        )
        fields.update(overrides)
        return SoakReport(**fields)

    def test_healthy_report(self):
        report = self._report()
        assert report.healthy
        payload = report.bench_payload()
        assert payload["healthy"] is True
        assert payload["violations"] == []
        assert payload["benchmark"] == "serve-soak"

    def test_violations_flip_health(self):
        report = self._report(violations=["rss slope 99 exceeds bound"])
        assert not report.healthy
        assert report.bench_payload()["healthy"] is False


class TestEndToEndSoak:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        log = tmp_path_factory.mktemp("soak") / "health.jsonl"
        config = SoakConfig(
            acceleration=50_000.0,
            wall_seconds=2.0,
            scrape_interval_seconds=0.25,
            max_drain_seconds=10.0,
            max_rss_slope_mb_per_min=1_000.0,
            min_placements_per_sec=0.1,
            max_queue_depth=100_000,
        )
        result = run_soak(
            CLUSTER,
            "greedy-pmtn-migr",
            TRACE,
            config=config,
            engine_config=SimulationConfig(streaming_metrics=True),
            health_log=str(log),
        )
        return result, log

    def test_soak_is_healthy_and_made_progress(self, report):
        result, _ = report
        assert result.healthy, result.violations
        assert result.submitted > 0
        assert result.placements > 0
        assert result.completions > 0
        assert result.sim_seconds > 0.0
        assert result.wall_seconds >= 2.0

    def test_health_samples_scraped_over_protocol(self, report):
        result, _ = report
        assert len(result.samples) >= 3
        for sample in result.samples:
            assert sample["rss_mb"] > 0.0
            assert sample["prom_bytes"] > 0
            assert sample["queue_depth"] >= 0
        assert result.prometheus is not None
        assert "repro_serve_placements_total" in result.prometheus
        assert "repro_serve_queue_depth" in result.prometheus

    def test_health_log_is_json_lines(self, report):
        result, log = report
        lines = log.read_text(encoding="utf-8").splitlines()
        assert len(lines) == len(result.samples)
        parsed = [json.loads(line) for line in lines]
        walls = [row["wall_seconds"] for row in parsed]
        assert walls == sorted(walls)

    def test_bench_payload_shape(self, report):
        result, _ = report
        payload = result.bench_payload()
        assert payload["jobs_submitted"] == result.submitted
        assert payload["samples"] == len(result.samples)
        assert payload["drained"] is result.drained
        json.dumps(payload)  # must be JSON-serialisable as-is

    def test_empty_trace_rejected(self):
        class EmptySource:
            def jobs(self, cluster):
                return iter(())

            def default_name(self):
                return "empty"

        with pytest.raises(ConfigurationError):
            run_soak(
                CLUSTER,
                "fcfs",
                EmptySource(),
                config=SoakConfig(wall_seconds=1.0),
            )
