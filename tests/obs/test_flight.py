"""Tests for the per-job flight recorder (repro.obs.flight).

The load-bearing guarantees: the recorded event sequence is identical
across all three drivers (``run``, ``run_stream``, serve replay) for the
same workload — including under node failures — the ring buffer drops
oldest-first without crashing, and the Chrome-trace export is well-formed
trace-event JSON.
"""

from __future__ import annotations

import json

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig, Simulator
from repro.exceptions import ConfigurationError
from repro.obs import Telemetry
from repro.obs.flight import (
    EVENT_KINDS,
    FlightRecorder,
    flight_trace_events,
    write_flight_jsonl,
    write_flight_trace,
)
from repro.platform.events import ExponentialFailureSource
from repro.schedulers.registry import create_scheduler
from repro.serve import SchedulerService
from repro.traces import DiurnalPoissonTraceSource

CLUSTER = Cluster(16, 4, 8.0)
ALGORITHM = "greedy-pmtn-migr"

TRACE = DiurnalPoissonTraceSource(
    num_jobs=80,
    seed=11,
    mean_interarrival_seconds=90.0,
    runtime_log_mean=5.0,
    runtime_log_sigma=1.0,
    max_runtime_seconds=7200.0,
    serial_fraction=0.6,
)

FAILURES = ExponentialFailureSource(
    mtbf_seconds=20_000.0,
    mttr_seconds=2_000.0,
    horizon_seconds=40_000.0,
    seed=3,
)


def _flight_sink(capacity=1_000_000):
    sink = Telemetry(capture_spans=False)
    sink.flight = FlightRecorder(capacity)
    return sink


def _failure_config(**kwargs):
    return SimulationConfig(
        node_events=FAILURES, failure_policy="migrate", **kwargs
    )


def _run_events():
    sink = _flight_sink()
    engine = Simulator(
        CLUSTER,
        create_scheduler(ALGORITHM),
        _failure_config(telemetry=sink),
    )
    engine.run(list(TRACE.jobs(CLUSTER)))
    return sink.flight.events()


def _stream_events():
    sink = _flight_sink()
    engine = Simulator(
        CLUSTER,
        create_scheduler(ALGORITHM),
        _failure_config(streaming_metrics=True, telemetry=sink),
    )
    engine.run_stream(TRACE.jobs(CLUSTER))
    return sink.flight.events()


def _replay_events():
    service = SchedulerService(
        CLUSTER,
        ALGORITHM,
        config=_failure_config(streaming_metrics=True),
        telemetry={"type": "stats", "flight": 1_000_000},
    )
    service.replay(TRACE)
    assert service.telemetry is not None
    return service.telemetry.flight.events()


@pytest.fixture(scope="module")
def run_events():
    return _run_events()


class TestDriverParity:
    def test_failure_paths_are_exercised(self, run_events):
        kinds = {event.kind for event in run_events}
        # The fixture must cover the interesting transitions, or the parity
        # assertions below prove nothing.
        assert {"submit", "start", "complete", "preempt", "resume"} <= kinds
        assert "checkpoint" in kinds or "failure-kill" in kinds
        causes = {event.cause for event in run_events}
        assert any(cause.startswith("node-failure:") for cause in causes)

    def test_run_stream_records_identical_sequence(self, run_events):
        assert _stream_events() == run_events

    def test_serve_replay_records_identical_sequence(self, run_events):
        assert _replay_events() == run_events

    def test_event_kinds_are_in_vocabulary(self, run_events):
        assert {event.kind for event in run_events} <= set(EVENT_KINDS)

    def test_closing_events_carry_vacated_nodes(self, run_events):
        started = {
            event.job_id for event in run_events if event.kind == "start"
        }
        for event in run_events:
            if event.kind in ("preempt", "checkpoint", "failure-kill"):
                if event.job_id in started:
                    assert event.nodes, event


class TestRingBuffer:
    def test_overflow_drops_oldest_without_crashing(self):
        recorder = FlightRecorder(capacity=10)
        for i in range(25):
            recorder.record(float(i), "submit", i)
        assert len(recorder) == 10
        assert recorder.dropped == 15
        times = [event.time for event in recorder.events()]
        assert times == [float(i) for i in range(15, 25)]

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            FlightRecorder(capacity=0)
        with pytest.raises(ConfigurationError):
            FlightRecorder(capacity=-5)

    def test_engine_run_with_tiny_ring_survives(self):
        sink = _flight_sink(capacity=16)
        engine = Simulator(
            CLUSTER,
            create_scheduler(ALGORITHM),
            _failure_config(telemetry=sink),
        )
        engine.run(list(TRACE.jobs(CLUSTER)))
        assert len(sink.flight) == 16
        assert sink.flight.dropped > 0
        # The ring keeps the latest window of history.
        full = _run_events()
        assert sink.flight.events() == full[-16:]

    def test_query_helpers(self):
        recorder = FlightRecorder(capacity=100)
        recorder.record(0.0, "submit", 1)
        recorder.record(1.0, "start", 1, nodes=(0,), cause="scheduler")
        recorder.record(0.5, "submit", 2)
        assert [e.kind for e in recorder.events_of_job(1)] == [
            "submit",
            "start",
        ]
        assert len(recorder.events_of_kind("submit")) == 2


class TestExports:
    def test_jsonl_roundtrip(self, run_events, tmp_path):
        sink = _flight_sink()
        engine = Simulator(
            CLUSTER,
            create_scheduler(ALGORITHM),
            _failure_config(telemetry=sink),
        )
        engine.run(list(TRACE.jobs(CLUSTER)))
        path = tmp_path / "flight.jsonl"
        count = write_flight_jsonl(sink.flight, path)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert count == len(lines) == len(run_events)
        for line, event in zip(lines, run_events):
            assert json.loads(line) == event.to_dict()

    def test_chrome_trace_is_valid_trace_event_json(self, tmp_path):
        sink = _flight_sink()
        engine = Simulator(
            CLUSTER,
            create_scheduler(ALGORITHM),
            _failure_config(telemetry=sink),
        )
        engine.run(list(TRACE.jobs(CLUSTER)))
        path = tmp_path / "flight.json"
        write_flight_trace(sink.flight, path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert isinstance(payload["traceEvents"], list)
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["events"] == len(sink.flight)
        assert payload["otherData"]["dropped"] == 0
        phases = set()
        for event in payload["traceEvents"]:
            phases.add(event["ph"])
            assert event["ph"] in ("M", "X", "i")
            assert isinstance(event["name"], str)
            assert event["pid"] == 1
            if event["ph"] == "M":
                assert "name" in event["args"]
            else:
                assert isinstance(event["ts"], float)
                assert event["ts"] >= 0.0
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
            if event["ph"] == "i":
                assert event["s"] == "t"
        assert phases == {"M", "X", "i"}

    def test_every_job_gets_a_lane(self):
        recorder = FlightRecorder(capacity=100)
        recorder.record(0.0, "submit", 7)
        recorder.record(1.0, "start", 7, nodes=(2,), cause="scheduler")
        recorder.record(5.0, "complete", 7, nodes=(2,))
        events = flight_trace_events(recorder)
        lanes = [
            e for e in events if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert [lane["tid"] for lane in lanes] == [7]
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 1
        assert slices[0]["ts"] == pytest.approx(1e6)
        assert slices[0]["dur"] == pytest.approx(4e6)
        assert slices[0]["args"]["until"] == "complete"

    def test_truncated_ring_still_exports_closed_slices(self):
        recorder = FlightRecorder(capacity=2)
        recorder.record(0.0, "submit", 1)
        recorder.record(1.0, "start", 1, nodes=(0,), cause="scheduler")
        recorder.record(2.0, "resume", 2, nodes=(1,), cause="scheduler")
        events = flight_trace_events(recorder)
        slices = [e for e in events if e["ph"] == "X"]
        # Both open slices are closed at the last recorded instant.
        assert {s["args"]["until"] for s in slices} == {"open"}
        assert all(s["dur"] >= 0.0 for s in slices)
