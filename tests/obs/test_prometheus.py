"""Prometheus text exposition: 0.0.4 format conformance and determinism."""

from __future__ import annotations

import re

import pytest

from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    Telemetry,
    render_prometheus,
    render_summary_dict,
    render_telemetry,
)

#: A sample line: name, optional {labels}, then a number.
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]"
)


def service_snapshot():
    return {
        "sim_time": 1000.0,
        "wall_seconds": 2.5,
        "submitted": 10,
        "accepted": 9,
        "rejected": 1,
        "shed": 0,
        "cancelled": 0,
        "starts": 9,
        "resumes": 2,
        "migrations": 1,
        "preemptions": 2,
        "completions": 9,
        "placements": 12,
        "placements_per_wall_sec": 4.8,
        "queue_latency": {"p50": 1.0, "p90": 3.0, "p99": 9.5, "mean": 2.0, "max": 9.9},
        "bundle": {"ignored": {"type": "sum", "total": 1.0, "n": 1}},
    }


def instrumented_sink() -> Telemetry:
    telemetry = Telemetry()
    telemetry.count("engine.events", 100)
    telemetry.gauge("engine.active_jobs", 5.0)
    telemetry.record_phase("engine.schedule", 0.0, 0.25)
    telemetry.record_phase("packing.mcb8", 0.0, 0.125)
    return telemetry


def parse_blocks(text):
    """{metric name: (type, [sample lines])} — asserts HELP/TYPE pairing."""
    blocks = {}
    current = None
    for line in text.splitlines():
        if line.startswith("# HELP "):
            name = line.split()[2]
            assert name not in blocks, f"duplicate HELP block for {name}"
            blocks[name] = current = {"type": None, "samples": []}
            blocks[name]["name"] = name
        elif line.startswith("# TYPE "):
            _, _, name, metric_type = line.split(None, 3)
            assert current is not None and current["name"] == name
            current["type"] = metric_type
        else:
            assert current is not None, f"sample before any header: {line}"
            assert _SAMPLE.match(line), f"malformed sample line: {line}"
            assert line.split("{")[0].split()[0].startswith(current["name"])
            current["samples"].append(line)
    return blocks


class TestRenderPrometheus:
    def test_content_type_constant(self):
        assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain; version=0.0.4")

    def test_counters_get_total_suffix_and_one_block_each(self):
        blocks = parse_blocks(render_prometheus(service_snapshot()))
        assert blocks["repro_serve_submitted_total"]["type"] == "counter"
        assert blocks["repro_serve_submitted_total"]["samples"] == [
            "repro_serve_submitted_total 10"
        ]
        assert blocks["repro_serve_sim_time"]["type"] == "gauge"
        assert "repro_serve_queue_latency_seconds" in blocks

    def test_latency_quantile_labels(self):
        blocks = parse_blocks(render_prometheus(service_snapshot()))
        summary = blocks["repro_serve_queue_latency_seconds"]
        assert summary["type"] == "summary"
        assert summary["samples"] == [
            'repro_serve_queue_latency_seconds{quantile="0.5"} 1',
            'repro_serve_queue_latency_seconds{quantile="0.9"} 3',
            'repro_serve_queue_latency_seconds{quantile="0.99"} 9.5',
        ]

    def test_bundle_field_is_not_scraped(self):
        assert "ignored" not in render_prometheus(service_snapshot())

    def test_telemetry_appends_engine_namespace(self):
        text = render_prometheus(service_snapshot(), telemetry=instrumented_sink())
        blocks = parse_blocks(text)
        assert blocks["repro_engine_engine_events_total"]["samples"] == [
            "repro_engine_engine_events_total 100"
        ]
        phase_block = blocks["repro_engine_phase_seconds_total"]
        assert phase_block["type"] == "counter"
        assert len(phase_block["samples"]) == 2  # one labelled sample per phase
        assert any('phase="packing.mcb8"' in line for line in phase_block["samples"])

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""

    def test_output_is_deterministic(self):
        first = render_prometheus(service_snapshot(), telemetry=instrumented_sink())
        second = render_prometheus(service_snapshot(), telemetry=instrumented_sink())
        assert first == second


class TestRenderTelemetry:
    def test_phases_share_one_block_with_labels(self):
        lines = render_telemetry(instrumented_sink())
        text = "\n".join(lines)
        blocks = parse_blocks(text)
        seconds = blocks["repro_phase_seconds_total"]["samples"]
        counts = blocks["repro_phase_count"]["samples"]
        assert len(seconds) == len(counts) == 2
        assert 'repro_phase_count{phase="engine.schedule"} 1' in counts

    def test_metric_names_sanitised(self):
        telemetry = Telemetry()
        telemetry.count("weird-name.with space", 1)
        text = "\n".join(render_telemetry(telemetry))
        assert "repro_weird_name_with_space_total 1" in text


class TestRenderSummaryDict:
    def test_renders_merged_summary_without_live_sink(self):
        summary = instrumented_sink().summary()
        text = render_summary_dict(summary, prefix="repro_cell")
        blocks = parse_blocks(text)
        assert blocks["repro_cell_engine_events_total"]["samples"] == [
            "repro_cell_engine_events_total 100"
        ]
        seconds = blocks["repro_cell_phase_seconds_total"]["samples"]
        assert any('phase="engine.schedule"' in line for line in seconds)
        assert any("0.25" in line for line in seconds)

    def test_empty_summary_renders_empty(self):
        assert render_summary_dict({"counters": {}, "phases": {}}) == ""
