"""Scenario telemetry block: demotion, hashing, and campaign row wiring."""

from __future__ import annotations

import json

import pytest

from repro.campaign.executor import Campaign
from repro.campaign.scenario import (
    LublinSource,
    Scenario,
    scenario_from_dict,
    scenario_hash,
)
from repro.core.cluster import Cluster
from repro.exceptions import ConfigurationError
from repro.obs import StatsTelemetry, Telemetry

CLUSTER = Cluster(16, 4, 8.0)


def tiny_scenario(**overrides) -> Scenario:
    fields = dict(
        name="obs-tiny",
        source=LublinSource(num_traces=2, num_jobs=15, seed_base=5),
        cluster=CLUSTER,
        algorithms=("fcfs", "greedy-pmtn"),
        penalty_seconds=300.0,
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestTelemetryBlock:
    def test_off_block_demotes_to_absent(self):
        scenario = tiny_scenario(telemetry={"type": "off"})
        assert scenario.telemetry is None
        assert "telemetry" not in scenario.to_dict()

    def test_off_block_keeps_hash_byte_identical(self):
        assert scenario_hash(tiny_scenario(telemetry={"type": "off"})) == (
            scenario_hash(tiny_scenario())
        )

    def test_stats_block_changes_hash_and_round_trips(self):
        scenario = tiny_scenario(telemetry={"type": "stats"})
        assert scenario.telemetry == {"type": "stats"}
        assert scenario_hash(scenario) != scenario_hash(tiny_scenario())
        rebuilt = scenario_from_dict(scenario.to_dict())
        assert scenario_hash(rebuilt) == scenario_hash(scenario)

    def test_config_object_accepted(self):
        scenario = tiny_scenario(telemetry=StatsTelemetry())
        assert scenario.telemetry == {"type": "stats"}

    def test_live_sink_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_scenario(telemetry=Telemetry())

    def test_unknown_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_scenario(telemetry={"type": "nope"})

    def test_simulation_config_carries_the_spec(self):
        config = tiny_scenario(telemetry={"type": "stats"}).simulation_config()
        assert config.telemetry == {"type": "stats"}
        assert tiny_scenario().simulation_config().telemetry is None


class TestCampaignRows:
    @pytest.fixture(scope="class")
    def outcome(self):
        return Campaign().run(tiny_scenario(telemetry={"type": "stats"}))

    def test_every_row_carries_a_telemetry_summary(self, outcome):
        for row in outcome.rows:
            summary = row.metrics["telemetry"]
            assert summary["counters"]["engine.events"] > 0
            assert summary["phases"]["engine.schedule"]["count"] > 0

    def test_summary_is_json_safe(self, outcome):
        for row in outcome.rows:
            summary = row.metrics["telemetry"]
            assert json.loads(json.dumps(summary)) == summary

    def test_uninstrumented_rows_are_unchanged(self):
        plain = Campaign().run(tiny_scenario())
        for row in plain.rows:
            assert "telemetry" not in row.metrics

    def test_result_metrics_match_uninstrumented_run(self, outcome):
        plain = Campaign().run(tiny_scenario())
        for inst_row, plain_row in zip(outcome.rows, plain.rows):
            assert inst_row.key() == plain_row.key()
            for name, value in plain_row.metrics.items():
                assert inst_row.metrics[name] == value, name


class TestStreamingCampaignRows:
    def test_streaming_rows_merge_telemetry_bundles(self):
        scenario = tiny_scenario(telemetry={"type": "stats"})
        outcome = Campaign(streaming=True).run(scenario)
        for row in outcome.rows:
            summary = row.metrics["telemetry"]
            assert summary["counters"]["engine.events"] > 0
            # Merged across 2 instances: at least one intake per instance.
            assert summary["phases"]["engine.stream_intake"]["count"] >= 2
            assert json.loads(json.dumps(summary)) == summary
