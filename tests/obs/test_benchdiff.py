"""Tests for the bench regression gate (repro.obs.benchdiff)."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.obs.benchdiff import (
    BenchComparison,
    compare_bench_payloads,
    diff_bench_files,
    load_bench_entries,
)


def _entry(rate, *, algorithm="fcfs", field="events_per_wall_sec", **extra):
    entry = {"benchmark": "engine", "algorithm": algorithm, field: rate}
    entry.update(extra)
    return entry


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


class TestLoadEntries:
    def test_entries_wrapper(self, tmp_path):
        path = _write(tmp_path, "a.json", {"entries": [_entry(1.0)]})
        assert load_bench_entries(path) == [_entry(1.0)]

    def test_bare_list(self, tmp_path):
        path = _write(tmp_path, "a.json", [_entry(1.0), _entry(2.0)])
        assert len(load_bench_entries(path)) == 2

    def test_single_dict(self, tmp_path):
        path = _write(tmp_path, "a.json", _entry(1.0))
        assert load_bench_entries(path) == [_entry(1.0)]

    def test_garbage_rejected(self, tmp_path):
        path = _write(tmp_path, "a.json", "not a payload")
        with pytest.raises(ConfigurationError):
            load_bench_entries(path)
        path = _write(tmp_path, "b.json", {"entries": [1, 2]})
        with pytest.raises(ConfigurationError):
            load_bench_entries(path)


class TestCompare:
    def test_matching_entries_compared(self):
        comparisons, notes = compare_bench_payloads(
            [_entry(90.0)], [_entry(100.0)]
        )
        assert notes == []
        assert len(comparisons) == 1
        comparison = comparisons[0]
        assert comparison.ratio == pytest.approx(0.9)
        assert not comparison.regressed(0.25)
        assert comparison.regressed(0.05)

    def test_unmatched_fresh_entry_noted_not_fatal(self):
        comparisons, notes = compare_bench_payloads(
            [_entry(90.0, algorithm="brand-new")], [_entry(100.0)]
        )
        assert comparisons == []
        assert any("no committed counterpart" in note for note in notes)

    def test_entry_without_rate_field_skipped(self):
        fresh = [{"benchmark": "engine", "algorithm": "fcfs", "notes": "x"}]
        comparisons, notes = compare_bench_payloads(fresh, [_entry(100.0)])
        assert comparisons == []
        assert any("no rate field" in note for note in notes)

    def test_rate_field_mismatch_skipped(self):
        fresh = [_entry(90.0, field="placements_per_wall_sec")]
        comparisons, notes = compare_bench_payloads(fresh, [_entry(100.0)])
        assert comparisons == []
        assert any("rate field mismatch" in note for note in notes)

    def test_committed_collisions_use_slowest_baseline(self):
        committed = [_entry(100.0), _entry(60.0), _entry(140.0)]
        comparisons, _ = compare_bench_payloads([_entry(59.0)], committed)
        assert comparisons[0].committed_rate == 60.0
        assert not comparisons[0].regressed(0.25)

    def test_key_fields_intersected_with_present_fields(self):
        # Entries lacking num_jobs/workload still pair on what they share.
        fresh = [_entry(80.0)]
        committed = [_entry(100.0, num_jobs=10_000)]
        comparisons, notes = compare_bench_payloads(fresh, committed)
        assert comparisons == []  # keys differ: one has num_jobs
        comparisons, _ = compare_bench_payloads(
            fresh, committed, key_fields=("benchmark", "algorithm")
        )
        assert len(comparisons) == 1

    def test_zero_committed_rate_never_divides(self):
        comparison = BenchComparison(
            key=(("algorithm", "fcfs"),),
            rate_field="events_per_wall_sec",
            fresh_rate=10.0,
            committed_rate=0.0,
        )
        assert comparison.ratio == 1.0
        assert not comparison.regressed(0.25)


class TestDiffFiles:
    def test_regression_detected(self, tmp_path):
        fresh = _write(tmp_path, "fresh.json", {"entries": [_entry(70.0)]})
        committed = _write(
            tmp_path, "committed.json", {"entries": [_entry(100.0)]}
        )
        comparisons, regressed, notes = diff_bench_files(fresh, committed)
        assert len(comparisons) == 1
        assert len(regressed) == 1
        assert notes == []

    def test_within_threshold_passes(self, tmp_path):
        fresh = _write(tmp_path, "fresh.json", {"entries": [_entry(80.0)]})
        committed = _write(
            tmp_path, "committed.json", {"entries": [_entry(100.0)]}
        )
        _, regressed, _ = diff_bench_files(fresh, committed)
        assert regressed == []

    def test_threshold_validated(self, tmp_path):
        fresh = _write(tmp_path, "fresh.json", {"entries": [_entry(80.0)]})
        with pytest.raises(ConfigurationError):
            diff_bench_files(fresh, fresh, threshold=0.0)
        with pytest.raises(ConfigurationError):
            diff_bench_files(fresh, fresh, threshold=1.5)

    def test_against_committed_artifacts(self):
        # The repo's own artifacts gate cleanly against themselves.
        for artifact in (
            "BENCH_engine.json",
            "BENCH_serve.json",
            "BENCH_soak.json",
        ):
            comparisons, regressed, _ = diff_bench_files(artifact, artifact)
            assert comparisons, artifact
            assert regressed == [], artifact


class TestCli:
    def test_cli_pass_and_fail(self, tmp_path, capsys):
        from repro.cli import main

        fresh = _write(tmp_path, "fresh.json", {"entries": [_entry(50.0)]})
        committed = _write(
            tmp_path, "committed.json", {"entries": [_entry(100.0)]}
        )
        assert main(["obs", "bench-diff", fresh, fresh]) == 0
        out = capsys.readouterr().out
        assert "within 25%" in out
        assert main(["obs", "bench-diff", fresh, committed]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        # A looser threshold lets the same pair pass.
        assert (
            main(
                [
                    "obs",
                    "bench-diff",
                    fresh,
                    committed,
                    "--threshold",
                    "0.6",
                ]
            )
            == 0
        )
