"""Tests for the SLO and goodput campaign collectors (repro.obs.slo)."""

from __future__ import annotations

import pytest

from repro.campaign.collectors import available_collectors, create_collector
from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig, Simulator
from repro.exceptions import ConfigurationError
from repro.obs.slo import DEFAULT_SLO_FACTOR, GoodputCollector, SloCollector
from repro.schedulers.registry import create_scheduler
from repro.traces import DiurnalPoissonTraceSource
from repro.workloads.lublin import LublinWorkloadGenerator

CLUSTER = Cluster(16, 4, 8.0)
WINDOW = 3600.0


@pytest.fixture(scope="module")
def finished_run():
    workload = LublinWorkloadGenerator(CLUSTER).generate(40, seed=5, name="t")
    simulator = Simulator(
        CLUSTER, create_scheduler("greedy-pmtn"), SimulationConfig()
    )
    result = simulator.run(workload.jobs)
    return workload, result


@pytest.fixture(scope="module")
def streaming_run():
    trace = DiurnalPoissonTraceSource(
        num_jobs=150,
        seed=11,
        mean_interarrival_seconds=90.0,
        runtime_log_mean=5.0,
        runtime_log_sigma=1.0,
        max_runtime_seconds=7200.0,
        serial_fraction=0.6,
    )
    config = SimulationConfig(
        streaming_metrics=True, availability_window_seconds=WINDOW
    )
    engine = Simulator(CLUSTER, create_scheduler("greedy-pmtn-migr"), config)
    return engine.run_stream(trace.jobs(CLUSTER))


@pytest.fixture(scope="module")
def materialized_run():
    trace = DiurnalPoissonTraceSource(
        num_jobs=150,
        seed=11,
        mean_interarrival_seconds=90.0,
        runtime_log_mean=5.0,
        runtime_log_sigma=1.0,
        max_runtime_seconds=7200.0,
        serial_fraction=0.6,
    )
    engine = Simulator(
        CLUSTER, create_scheduler("greedy-pmtn-migr"), SimulationConfig()
    )
    return engine.run(list(trace.jobs(CLUSTER)))


class TestRegistry:
    def test_collectors_registered(self):
        assert {"slo", "goodput"} <= set(available_collectors())

    def test_create_with_options(self):
        collector = create_collector("slo", slo_factor=5.0)
        assert isinstance(collector, SloCollector)
        assert collector.slo_factor == 5.0
        goodput = create_collector("goodput", window_seconds=600.0)
        assert isinstance(goodput, GoodputCollector)
        assert goodput.window_seconds == 600.0

    def test_invalid_options_rejected(self):
        with pytest.raises(ConfigurationError):
            SloCollector(slo_factor=0.0)
        with pytest.raises(ConfigurationError):
            SloCollector(slo_factor=float("inf"))
        with pytest.raises(ConfigurationError):
            GoodputCollector(window_seconds=-1.0)


class TestSloCollector:
    def test_exact_attainment_matches_per_job_predicate(self, finished_run):
        workload, result = finished_run
        row = SloCollector(slo_factor=3.0).collect(result, {}, workload)
        expected = sum(
            1
            for record in result.jobs
            if record.turnaround_time <= 3.0 * record.spec.execution_time
        )
        assert row["slo_attained"] == expected
        assert row["slo_total"] == len(result.jobs)
        assert row["slo_attainment"] == expected / len(result.jobs)
        assert row["slo_factor"] == 3.0
        assert row["jct_p50"] <= row["jct_p90"] <= row["jct_p99"]
        assert row["jct_max"] >= row["jct_p99"]

    def test_generous_factor_attains_everything(self, finished_run):
        workload, result = finished_run
        row = SloCollector(slo_factor=1e9).collect(result, {}, workload)
        assert row["slo_attainment"] == 1.0

    def test_default_factor(self):
        assert SloCollector().slo_factor == DEFAULT_SLO_FACTOR

    def test_streaming_matches_materialized(
        self, streaming_run, materialized_run
    ):
        collector = SloCollector(slo_factor=5.0)
        exact = collector.collect(materialized_run, {}, None)
        partials = collector.stream_partials(streaming_run)
        row = collector.stream_finalize(partials)
        assert row["slo_total"] == exact["slo_total"]
        # The sketch boundary and the 30 s bounded-stretch floor are the two
        # documented approximations; attained counts stay within a few jobs.
        assert abs(row["slo_attained"] - exact["slo_attained"]) <= max(
            3, 0.05 * exact["slo_total"]
        )
        assert row["jct_mean"] == pytest.approx(exact["jct_mean"], rel=1e-9)
        assert row["jct_max"] == pytest.approx(exact["jct_max"], rel=1e-9)
        assert row["jct_p50"] == pytest.approx(exact["jct_p50"], rel=0.05)
        assert row["jct_p90"] == pytest.approx(exact["jct_p90"], rel=0.05)


class TestGoodputCollector:
    def test_streaming_matches_materialized_exactly(
        self, streaming_run, materialized_run
    ):
        collector = GoodputCollector(window_seconds=WINDOW)
        exact = collector.collect(materialized_run, {}, None)
        partials = collector.stream_partials(streaming_run)
        row = collector.stream_finalize(partials)
        for column, value in exact.items():
            assert row[column] == pytest.approx(value, rel=1e-9), column

    def test_goodput_accounts_only_completed_work(self, finished_run):
        workload, result = finished_run
        row = GoodputCollector(window_seconds=WINDOW).collect(
            result, {}, workload
        )
        expected = sum(
            record.spec.num_tasks
            * record.spec.cpu_need
            * record.spec.execution_time
            for record in result.jobs
        )
        assert row["goodput_node_seconds"] == pytest.approx(expected)
        assert 0.0 < row["goodput_fraction"] <= 1.0
        assert row["goodput_windows"] >= 1
        assert (
            row["min_window_jobs_per_hour"]
            <= row["mean_window_jobs_per_hour"]
            <= row["max_window_jobs_per_hour"]
        )

    def test_streaming_without_engine_windows_rejected(self, finished_run):
        _, result = finished_run
        with pytest.raises(ConfigurationError):
            GoodputCollector().stream_partials(result)
