"""Tests for the step-series analysis primitives."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    StepSeries,
    busy_nodes_series,
    cpu_allocated_series,
    memory_used_series,
    min_yield_series,
    running_jobs_series,
)
from repro.core import (
    Cluster,
    JobSpec,
    SimulationConfig,
    Simulator,
    UtilizationRecorder,
)
from repro.exceptions import ReproError
from repro.schedulers import create_scheduler


class TestStepSeriesConstruction:
    def test_breakpoints_and_values_must_match_in_length(self):
        with pytest.raises(ReproError):
            StepSeries((0.0, 1.0), (1.0,), 2.0)

    def test_empty_series_rejected(self):
        with pytest.raises(ReproError):
            StepSeries((), (), 0.0)

    def test_non_increasing_breakpoints_rejected(self):
        with pytest.raises(ReproError):
            StepSeries((0.0, 0.0), (1.0, 2.0), 1.0)

    def test_end_before_last_breakpoint_rejected(self):
        with pytest.raises(ReproError):
            StepSeries((0.0, 5.0), (1.0, 2.0), 4.0)

    def test_from_samples_merges_duplicate_times(self):
        series = StepSeries.from_samples([(0.0, 1.0), (0.0, 3.0), (2.0, 5.0)], end=4.0)
        assert series.value_at(0.0) == 3.0
        assert series.value_at(3.0) == 5.0

    def test_from_samples_merges_equal_consecutive_values(self):
        series = StepSeries.from_samples([(0.0, 1.0), (1.0, 1.0), (2.0, 2.0)], end=3.0)
        assert len(series) == 2

    def test_from_samples_rejects_empty(self):
        with pytest.raises(ReproError):
            StepSeries.from_samples([])

    def test_from_samples_sorts_input(self):
        series = StepSeries.from_samples([(2.0, 5.0), (0.0, 1.0)], end=3.0)
        assert series.start == 0.0
        assert series.value_at(0.5) == 1.0
        assert series.value_at(2.5) == 5.0


class TestStepSeriesStatistics:
    def test_constant_series_mean_is_the_constant(self):
        series = StepSeries((0.0,), (3.5,), 10.0)
        assert series.mean() == pytest.approx(3.5)
        assert series.integral() == pytest.approx(35.0)

    def test_two_segment_mean_is_time_weighted(self):
        # value 1 on [0, 2), value 3 on [2, 10] -> mean = (2*1 + 8*3) / 10
        series = StepSeries((0.0, 2.0), (1.0, 3.0), 10.0)
        assert series.mean() == pytest.approx(2.6)

    def test_max_and_min(self):
        series = StepSeries((0.0, 1.0, 2.0), (5.0, -1.0, 2.0), 3.0)
        assert series.max() == 5.0
        assert series.min() == -1.0

    def test_value_at_before_start_clamps(self):
        series = StepSeries((10.0,), (7.0,), 20.0)
        assert series.value_at(0.0) == 7.0

    def test_value_at_breakpoint_is_right_continuous(self):
        series = StepSeries((0.0, 5.0), (1.0, 9.0), 10.0)
        assert series.value_at(5.0) == 9.0
        assert series.value_at(4.999) == 1.0

    def test_fraction_above(self):
        series = StepSeries((0.0, 4.0), (0.0, 2.0), 10.0)
        assert series.fraction_above(1.0) == pytest.approx(0.6)
        assert series.fraction_at_or_below(1.0) == pytest.approx(0.4)

    def test_time_weighted_quantile(self):
        series = StepSeries((0.0, 9.0), (1.0, 100.0), 10.0)
        # value 1 covers 90% of the time, so the median is 1.
        assert series.time_weighted_quantile(0.5) == 1.0
        assert series.time_weighted_quantile(0.99) == 100.0

    def test_quantile_out_of_range_rejected(self):
        series = StepSeries((0.0,), (1.0,), 1.0)
        with pytest.raises(ReproError):
            series.time_weighted_quantile(1.5)


class TestStepSeriesTransformations:
    def test_scale(self):
        series = StepSeries((0.0, 1.0), (1.0, 2.0), 2.0).scale(10.0)
        assert series.values == (10.0, 20.0)

    def test_map(self):
        series = StepSeries((0.0, 1.0), (1.0, 4.0), 2.0).map(lambda v: v * v)
        assert series.values == (1.0, 16.0)

    def test_restrict_inside_domain(self):
        series = StepSeries((0.0, 10.0, 20.0), (1.0, 2.0, 3.0), 30.0)
        restricted = series.restrict(5.0, 25.0)
        assert restricted.start == 5.0
        assert restricted.end == 25.0
        assert restricted.value_at(5.0) == 1.0
        assert restricted.value_at(15.0) == 2.0
        assert restricted.value_at(22.0) == 3.0

    def test_restrict_rejects_disjoint_interval(self):
        series = StepSeries((0.0,), (1.0,), 10.0)
        with pytest.raises(ReproError):
            series.restrict(20.0, 30.0)

    def test_restrict_rejects_empty_interval(self):
        series = StepSeries((0.0,), (1.0,), 10.0)
        with pytest.raises(ReproError):
            series.restrict(5.0, 5.0)

    def test_resample(self):
        series = StepSeries((0.0, 5.0), (1.0, 2.0), 10.0)
        points = series.resample(2.5)
        assert points == [(0.0, 1.0), (2.5, 1.0), (5.0, 2.0), (7.5, 2.0), (10.0, 2.0)]

    def test_resample_rejects_non_positive_step(self):
        series = StepSeries((0.0,), (1.0,), 10.0)
        with pytest.raises(ReproError):
            series.resample(0.0)


@st.composite
def step_series(draw):
    times = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            min_size=1,
            max_size=20,
            unique=True,
        )
    )
    times = sorted(times)
    values = draw(
        st.lists(
            st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
            min_size=len(times),
            max_size=len(times),
        )
    )
    tail = draw(st.floats(min_value=0.0, max_value=1e3, allow_nan=False))
    return StepSeries(tuple(times), tuple(values), times[-1] + tail)


class TestStepSeriesProperties:
    @given(step_series())
    @settings(max_examples=60, deadline=None)
    def test_mean_between_min_and_max(self, series):
        assert series.min() - 1e-9 <= series.mean() <= series.max() + 1e-9

    @given(step_series())
    @settings(max_examples=60, deadline=None)
    def test_integral_consistent_with_mean(self, series):
        if series.duration > 0:
            assert series.integral() == pytest.approx(series.mean() * series.duration)

    @given(step_series(), st.floats(min_value=-10.0, max_value=10.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_fraction_above_is_a_probability(self, series, threshold):
        fraction = series.fraction_above(threshold)
        assert 0.0 <= fraction <= 1.0

    @given(step_series(), st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=40, deadline=None)
    def test_scaling_scales_the_integral(self, series, factor):
        assert series.scale(factor).integral() == pytest.approx(
            series.integral() * factor, rel=1e-9, abs=1e-6
        )


class TestRecorderConversions:
    @pytest.fixture(scope="class")
    def recorder_and_cluster(self):
        cluster = Cluster(num_nodes=4, cores_per_node=4, node_memory_gb=8.0)
        recorder = UtilizationRecorder()
        specs = [
            JobSpec(i, i * 10.0, 2, 0.8, 0.3, 200.0 + 10 * i) for i in range(6)
        ]
        Simulator(
            cluster,
            create_scheduler("dynmcb8-per-600"),
            SimulationConfig(),
            observers=[recorder],
        ).run(specs)
        return recorder, cluster

    def test_busy_nodes_series_bounded_by_cluster(self, recorder_and_cluster):
        recorder, cluster = recorder_and_cluster
        series = busy_nodes_series(recorder)
        assert 0 <= series.min()
        assert series.max() <= cluster.num_nodes

    def test_cpu_allocated_series_bounded_by_cluster(self, recorder_and_cluster):
        recorder, cluster = recorder_and_cluster
        series = cpu_allocated_series(recorder)
        assert series.max() <= cluster.num_nodes + 1e-6

    def test_memory_series_bounded_by_cluster(self, recorder_and_cluster):
        recorder, cluster = recorder_and_cluster
        series = memory_used_series(recorder)
        assert series.max() <= cluster.num_nodes + 1e-6

    def test_running_jobs_series_counts_jobs(self, recorder_and_cluster):
        recorder, _ = recorder_and_cluster
        series = running_jobs_series(recorder)
        assert series.max() >= 1
        assert series.min() >= 0

    def test_min_yield_series_in_unit_interval(self, recorder_and_cluster):
        recorder, _ = recorder_and_cluster
        series = min_yield_series(recorder)
        assert 0.0 < series.min() <= 1.0
        assert series.max() <= 1.0 + 1e-9

    def test_empty_recorder_rejected(self):
        with pytest.raises(ReproError):
            busy_nodes_series(UtilizationRecorder())
