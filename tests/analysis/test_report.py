"""Tests for the Markdown rendering helpers."""

from __future__ import annotations

import pytest

from repro.analysis import (
    NodePowerModel,
    comparison_report,
    compare_instances,
    energy_from_result,
    energy_report_table,
    fairness_report_table,
    markdown_table,
    stretch_fairness,
)
from repro.core import Cluster, JobSpec, SimulationConfig, Simulator
from repro.exceptions import ReproError
from repro.schedulers import create_scheduler


def _result(algorithm="greedy-pmtn"):
    cluster = Cluster(num_nodes=4, cores_per_node=4, node_memory_gb=8.0)
    specs = [JobSpec(i, i * 5.0, 1, 0.5, 0.2, 80.0) for i in range(4)]
    return Simulator(cluster, create_scheduler(algorithm), SimulationConfig()).run(specs)


class TestMarkdownTable:
    def test_basic_rendering(self):
        table = markdown_table(["name", "value"], [["a", 1.5], ["b", 2.0]])
        lines = table.splitlines()
        assert lines[0] == "| name | value |"
        assert lines[1] == "| --- | --- |"
        assert "| a | 1.50 |" in lines
        assert "| b | 2.00 |" in lines

    def test_custom_float_format(self):
        table = markdown_table(["x"], [[3.14159]], float_format="{:.4f}")
        assert "3.1416" in table

    def test_integer_and_string_cells_passed_through(self):
        table = markdown_table(["n", "s"], [[7, "hello"]])
        assert "| 7 | hello |" in table

    def test_mismatched_row_length_rejected(self):
        with pytest.raises(ReproError):
            markdown_table(["a", "b"], [[1.0]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ReproError):
            markdown_table([], [])

    def test_no_rows_is_valid(self):
        table = markdown_table(["only", "header"], [])
        assert len(table.splitlines()) == 2


class TestComparisonReport:
    def test_contains_all_algorithms(self):
        comparison = compare_instances(
            [{"fcfs": 100.0, "easy": 50.0}, {"fcfs": 80.0, "easy": 60.0}]
        )
        text = comparison_report(comparison)
        assert "fcfs" in text
        assert "easy" in text

    def test_title_rendered_as_heading(self):
        comparison = compare_instances([{"a": 1.0, "b": 2.0}])
        text = comparison_report(comparison, title="My comparison")
        assert text.startswith("### My comparison")

    def test_reference_column_present(self):
        comparison = compare_instances([{"a": 1.0, "b": 2.0}])
        text = comparison_report(comparison, reference_algorithm="a")
        assert "x vs a" in text

    def test_rows_sorted_best_first(self):
        comparison = compare_instances(
            [{"worst": 100.0, "best": 1.0}, {"worst": 200.0, "best": 2.0}]
        )
        text = comparison_report(comparison)
        assert text.index("best") < text.index("worst")


class TestFairnessAndEnergyTables:
    def test_fairness_table_contains_algorithm_name(self):
        report = stretch_fairness(_result())
        text = fairness_report_table([report])
        assert "greedy-pmtn" in text
        assert "Jain" in text

    def test_fairness_table_rejects_empty(self):
        with pytest.raises(ReproError):
            fairness_report_table([])

    def test_energy_table_contains_savings_column(self):
        report = energy_from_result(_result(), model=NodePowerModel())
        text = energy_report_table([report])
        assert "savings" in text
        assert "%" in text

    def test_energy_table_rejects_empty(self):
        with pytest.raises(ReproError):
            energy_report_table([])
