"""Tests for the fairness metrics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    gini_coefficient,
    jain_index,
    mean_yields_from_trace,
    stretch_fairness,
)
from repro.core import (
    AllocationTraceRecorder,
    Cluster,
    JobSpec,
    SimulationConfig,
    Simulator,
)
from repro.exceptions import ReproError
from repro.schedulers import create_scheduler

positive_samples = st.lists(
    st.floats(min_value=0.01, max_value=1e4, allow_nan=False),
    min_size=2,
    max_size=40,
)


class TestJainIndex:
    def test_equal_values_give_one(self):
        assert jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_dominant_value_approaches_one_over_n(self):
        values = [100.0] + [0.0] * 9
        assert jain_index(values) == pytest.approx(0.1)

    def test_known_value(self):
        # (1+3)^2 / (2 * (1+9)) = 16/20
        assert jain_index([1.0, 3.0]) == pytest.approx(0.8)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            jain_index([])

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            jain_index([1.0, -1.0])

    def test_all_zero_rejected(self):
        with pytest.raises(ReproError):
            jain_index([0.0, 0.0])

    @given(positive_samples)
    @settings(max_examples=60, deadline=None)
    def test_bounded_between_one_over_n_and_one(self, values):
        index = jain_index(values)
        assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9

    @given(positive_samples, st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=40, deadline=None)
    def test_scale_invariant(self, values, factor):
        scaled = [value * factor for value in values]
        assert jain_index(scaled) == pytest.approx(jain_index(values), rel=1e-9)


class TestGiniCoefficient:
    def test_equal_values_give_zero(self):
        assert gini_coefficient([5.0, 5.0, 5.0]) == pytest.approx(0.0, abs=1e-12)

    def test_known_value(self):
        # For [0, 1], Gini = 0.5.
        assert gini_coefficient([0.0, 1.0]) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            gini_coefficient([])

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            gini_coefficient([-1.0, 1.0])

    def test_all_zero_rejected(self):
        with pytest.raises(ReproError):
            gini_coefficient([0.0])

    @given(positive_samples)
    @settings(max_examples=60, deadline=None)
    def test_bounded_in_unit_interval(self, values):
        coefficient = gini_coefficient(values)
        assert -1e-9 <= coefficient < 1.0

    @given(positive_samples, st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=40, deadline=None)
    def test_scale_invariant(self, values, factor):
        scaled = [value * factor for value in values]
        assert gini_coefficient(scaled) == pytest.approx(
            gini_coefficient(values), abs=1e-9
        )


def _run_with_trace(algorithm="greedy-pmtn", num_jobs=5, nodes=4):
    cluster = Cluster(num_nodes=nodes, cores_per_node=4, node_memory_gb=8.0)
    trace = AllocationTraceRecorder()
    specs = [JobSpec(i, i * 10.0, 1, 0.5, 0.2, 100.0 + 5 * i) for i in range(num_jobs)]
    result = Simulator(
        cluster, create_scheduler(algorithm), SimulationConfig(), observers=[trace]
    ).run(specs)
    return result, trace


class TestStretchFairness:
    def test_report_fields_consistent_with_result(self):
        result, _ = _run_with_trace()
        report = stretch_fairness(result)
        assert report.algorithm == result.algorithm
        assert report.num_jobs == result.num_jobs
        assert report.max_stretch == pytest.approx(result.max_stretch)
        assert report.mean_stretch == pytest.approx(result.mean_stretch)

    def test_jain_and_gini_within_bounds(self):
        result, _ = _run_with_trace(num_jobs=8)
        report = stretch_fairness(result)
        assert 0.0 < report.jain_stretch <= 1.0
        assert 0.0 <= report.gini_stretch < 1.0

    def test_p95_between_mean_and_max(self):
        result, _ = _run_with_trace(num_jobs=10)
        report = stretch_fairness(result)
        assert report.p95_stretch <= report.max_stretch + 1e-9

    def test_as_dict_contains_all_fields(self):
        result, _ = _run_with_trace()
        data = stretch_fairness(result).as_dict()
        for key in ("max_stretch", "mean_stretch", "jain_stretch", "gini_stretch"):
            assert key in data


class TestMeanYieldsFromTrace:
    def test_yields_in_unit_interval(self):
        _, trace = _run_with_trace(num_jobs=6, nodes=2)
        yields = mean_yields_from_trace(trace)
        assert yields  # at least one job ran
        for value in yields.values():
            assert 0.0 < value <= 1.0 + 1e-9

    def test_uncontended_job_has_yield_one(self):
        _, trace = _run_with_trace(num_jobs=1, nodes=4)
        yields = mean_yields_from_trace(trace)
        assert yields[0] == pytest.approx(1.0)

    def test_empty_trace_gives_empty_mapping(self):
        assert mean_yields_from_trace(AllocationTraceRecorder()) == {}
