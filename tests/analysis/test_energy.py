"""Tests for the energy accounting module."""

from __future__ import annotations

import pytest

from repro.analysis import (
    NodePowerModel,
    energy_from_recorder,
    energy_from_result,
)
from repro.core import (
    Cluster,
    JobSpec,
    SimulationConfig,
    Simulator,
    UtilizationRecorder,
)
from repro.exceptions import ConfigurationError
from repro.schedulers import create_scheduler


def _run(num_jobs=4, nodes=8, algorithm="greedy-pmtn"):
    cluster = Cluster(num_nodes=nodes, cores_per_node=4, node_memory_gb=8.0)
    recorder = UtilizationRecorder()
    specs = [JobSpec(i, i * 5.0, 1, 0.5, 0.2, 100.0) for i in range(num_jobs)]
    result = Simulator(
        cluster, create_scheduler(algorithm), SimulationConfig(), observers=[recorder]
    ).run(specs)
    return result, recorder, cluster


class TestNodePowerModel:
    def test_defaults_are_valid(self):
        model = NodePowerModel()
        assert model.busy_watts > model.idle_watts > model.off_watts

    def test_zero_busy_power_rejected(self):
        with pytest.raises(ConfigurationError):
            NodePowerModel(busy_watts=0.0)

    def test_idle_above_busy_rejected(self):
        with pytest.raises(ConfigurationError):
            NodePowerModel(busy_watts=100.0, idle_watts=200.0)

    def test_off_above_idle_rejected(self):
        with pytest.raises(ConfigurationError):
            NodePowerModel(idle_watts=50.0, off_watts=60.0)

    def test_negative_idle_rejected(self):
        with pytest.raises(ConfigurationError):
            NodePowerModel(idle_watts=-1.0)


class TestEnergyReports:
    def test_power_down_never_exceeds_always_on(self):
        result, recorder, cluster = _run()
        report = energy_from_recorder(recorder, cluster, algorithm=result.algorithm)
        assert report.power_down_joules <= report.always_on_joules
        assert 0.0 <= report.savings_fraction <= 1.0

    def test_result_based_report_matches_cluster_accounting(self):
        result, _, cluster = _run()
        report = energy_from_result(result)
        total = report.busy_node_seconds + report.idle_node_seconds
        assert total == pytest.approx(cluster.num_nodes * result.makespan, rel=1e-9)

    def test_busy_seconds_positive_when_jobs_ran(self):
        result, recorder, cluster = _run()
        report = energy_from_recorder(recorder, cluster, algorithm=result.algorithm)
        assert report.busy_node_seconds > 0.0

    def test_savings_larger_on_underloaded_cluster(self):
        # With many idle nodes the power-down savings must be substantial.
        result, recorder, cluster = _run(num_jobs=1, nodes=16)
        report = energy_from_recorder(recorder, cluster, algorithm=result.algorithm)
        assert report.savings_fraction > 0.3

    def test_kwh_conversion(self):
        result, _, _ = _run()
        report = energy_from_result(result)
        assert report.always_on_kwh == pytest.approx(report.always_on_joules / 3.6e6)

    def test_custom_power_model_changes_totals(self):
        result, recorder, cluster = _run()
        cheap = NodePowerModel(busy_watts=100.0, idle_watts=10.0, off_watts=0.0)
        default_report = energy_from_recorder(recorder, cluster)
        cheap_report = energy_from_recorder(recorder, cluster, model=cheap)
        assert cheap_report.always_on_joules < default_report.always_on_joules

    def test_as_dict_has_expected_keys(self):
        result, _, _ = _run()
        data = energy_from_result(result).as_dict()
        for key in ("always_on_kwh", "power_down_kwh", "savings_fraction"):
            assert key in data

    def test_recorder_and_result_reports_are_consistent(self):
        # Both accounting paths measure the same physical quantity; they use
        # different clocks (trace end vs makespan) so allow a loose tolerance.
        result, recorder, cluster = _run(num_jobs=6, nodes=4)
        from_recorder = energy_from_recorder(recorder, cluster)
        from_result = energy_from_result(result)
        assert from_recorder.busy_node_seconds == pytest.approx(
            from_result.busy_node_seconds, rel=0.2, abs=200.0
        )
