"""Tests for CSV / JSON export of simulation artifacts."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.analysis import (
    allocation_intervals_to_csv,
    degradation_factors_to_csv,
    job_records_to_csv,
    result_summary_to_json,
    utilization_samples_to_csv,
)
from repro.core import (
    AllocationTraceRecorder,
    Cluster,
    JobSpec,
    SimulationConfig,
    Simulator,
    UtilizationRecorder,
)
from repro.exceptions import ReproError
from repro.schedulers import create_scheduler


@pytest.fixture(scope="module")
def run_artifacts():
    cluster = Cluster(num_nodes=4, cores_per_node=4, node_memory_gb=8.0)
    trace = AllocationTraceRecorder()
    util = UtilizationRecorder()
    specs = [JobSpec(i, i * 10.0, 1 + i % 2, 0.6, 0.25, 120.0) for i in range(5)]
    result = Simulator(
        cluster,
        create_scheduler("greedy-pmtn"),
        SimulationConfig(),
        observers=[trace, util],
    ).run(specs)
    return result, trace, util


class TestJobRecordsCsv:
    def test_returns_string_when_no_destination(self, run_artifacts):
        result, _, _ = run_artifacts
        text = job_records_to_csv(result)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == result.num_jobs

    def test_columns_and_values(self, run_artifacts):
        result, _, _ = run_artifacts
        rows = list(csv.DictReader(io.StringIO(job_records_to_csv(result))))
        first = rows[0]
        assert set(first) >= {"job_id", "bounded_stretch", "completion_time", "wait_time"}
        assert float(first["bounded_stretch"]) >= 1.0

    def test_writes_to_path(self, run_artifacts, tmp_path):
        result, _, _ = run_artifacts
        path = tmp_path / "jobs.csv"
        assert job_records_to_csv(result, path) is None
        assert path.exists()
        assert len(path.read_text().splitlines()) == result.num_jobs + 1

    def test_writes_to_file_object(self, run_artifacts):
        result, _, _ = run_artifacts
        buffer = io.StringIO()
        job_records_to_csv(result, buffer)
        assert "job_id" in buffer.getvalue()

    def test_invalid_destination_rejected(self, run_artifacts):
        result, _, _ = run_artifacts
        with pytest.raises(ReproError):
            job_records_to_csv(result, destination=123)


class TestIntervalAndUtilizationCsv:
    def test_interval_rows_sorted_by_start(self, run_artifacts):
        _, trace, _ = run_artifacts
        rows = list(csv.DictReader(io.StringIO(allocation_intervals_to_csv(trace))))
        starts = [float(row["start"]) for row in rows]
        assert starts == sorted(starts)
        assert len(rows) == len(trace.intervals)

    def test_interval_nodes_column_parses_back(self, run_artifacts):
        _, trace, _ = run_artifacts
        rows = list(csv.DictReader(io.StringIO(allocation_intervals_to_csv(trace))))
        for row in rows:
            nodes = [int(part) for part in row["nodes"].split()]
            assert nodes  # at least one node per interval

    def test_utilization_rows_match_samples(self, run_artifacts):
        _, _, util = run_artifacts
        rows = list(csv.DictReader(io.StringIO(utilization_samples_to_csv(util))))
        assert len(rows) == len(util.samples)
        assert float(rows[0]["busy_nodes"]) >= 0


class TestDegradationCsv:
    def test_round_trip(self):
        per_instance = [{"a": 1.0, "b": 2.5}, {"a": 1.2, "b": 1.0}]
        rows = list(csv.DictReader(io.StringIO(degradation_factors_to_csv(per_instance))))
        assert len(rows) == 2
        assert float(rows[0]["b"]) == 2.5

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            degradation_factors_to_csv([])

    def test_mismatched_algorithms_rejected(self):
        with pytest.raises(ReproError):
            degradation_factors_to_csv([{"a": 1.0}, {"b": 1.0}])


class TestJsonSummary:
    def test_valid_json_with_expected_keys(self, run_artifacts):
        result, _, _ = run_artifacts
        text = result_summary_to_json({"greedy-pmtn": result})
        payload = json.loads(text)
        assert "greedy-pmtn" in payload
        summary = payload["greedy-pmtn"]
        for key in ("max_stretch", "mean_turnaround", "preemptions_per_job"):
            assert key in summary

    def test_writes_to_path(self, run_artifacts, tmp_path):
        result, _, _ = run_artifacts
        path = tmp_path / "summary.json"
        assert result_summary_to_json({"x": result}, path) is None
        assert json.loads(path.read_text())["x"]["num_jobs"] == result.num_jobs
