"""Tests for the text Gantt / occupancy rendering."""

from __future__ import annotations

import pytest

from repro.analysis import job_gantt, node_occupancy, yield_profile
from repro.core import (
    AllocationTraceRecorder,
    Cluster,
    JobSpec,
    SimulationConfig,
    Simulator,
)
from repro.core.observers import AllocationInterval
from repro.exceptions import ReproError
from repro.schedulers import create_scheduler


def _trace_from_run(num_jobs=4, nodes=4, algorithm="greedy-pmtn"):
    cluster = Cluster(num_nodes=nodes, cores_per_node=4, node_memory_gb=8.0)
    trace = AllocationTraceRecorder()
    specs = [JobSpec(i, i * 20.0, 1 + i % 2, 0.8, 0.3, 150.0) for i in range(num_jobs)]
    Simulator(
        cluster, create_scheduler(algorithm), SimulationConfig(), observers=[trace]
    ).run(specs)
    return trace, cluster


def _manual_trace():
    trace = AllocationTraceRecorder()
    trace.intervals = [
        AllocationInterval(job_id=0, start=0.0, end=100.0, nodes=(0,), yield_value=1.0),
        AllocationInterval(job_id=1, start=50.0, end=150.0, nodes=(0, 1), yield_value=0.5),
    ]
    return trace


class TestJobGantt:
    def test_one_row_per_job_plus_header(self):
        trace, _ = _trace_from_run(num_jobs=4)
        chart = job_gantt(trace, width=40)
        lines = chart.splitlines()
        assert len(lines) == 1 + len(trace.job_ids())
        assert all("|" in line for line in lines[1:])

    def test_rows_have_requested_width(self):
        trace = _manual_trace()
        chart = job_gantt(trace, width=30)
        for line in chart.splitlines()[1:]:
            body = line.split("|")[1]
            assert len(body) == 30

    def test_full_yield_renders_dense_glyph(self):
        trace = _manual_trace()
        chart = job_gantt(trace, width=10)
        job0_row = [line for line in chart.splitlines() if line.startswith("job 0")][0]
        assert "@" in job0_row

    def test_waiting_period_renders_blank(self):
        trace = _manual_trace()
        chart = job_gantt(trace, width=10)
        job1_row = [line for line in chart.splitlines() if line.startswith("job 1")][0]
        body = job1_row.split("|")[1]
        assert body[0] == " "  # job 1 starts at t=50 of a 150-second span

    def test_job_subset_selection(self):
        trace = _manual_trace()
        chart = job_gantt(trace, width=10, job_ids=[1])
        assert "job 1" in chart
        assert "job 0" not in chart

    def test_unknown_job_id_rejected(self):
        trace = _manual_trace()
        with pytest.raises(ReproError):
            job_gantt(trace, job_ids=[99])

    def test_empty_trace_rejected(self):
        with pytest.raises(ReproError):
            job_gantt(AllocationTraceRecorder())

    def test_invalid_width_rejected(self):
        with pytest.raises(ReproError):
            job_gantt(_manual_trace(), width=0)


class TestNodeOccupancy:
    def test_one_row_per_node(self):
        trace, cluster = _trace_from_run()
        chart = node_occupancy(trace, cluster.num_nodes, width=40)
        assert len(chart.splitlines()) == 1 + cluster.num_nodes

    def test_counts_reflect_colocation(self):
        trace = _manual_trace()
        chart = node_occupancy(trace, 2, width=10)
        node0_row = [line for line in chart.splitlines() if line.startswith("node 0")][0]
        # In the overlap window node 0 hosts tasks from both jobs.
        assert "2" in node0_row

    def test_idle_node_renders_blank(self):
        trace = _manual_trace()
        chart = node_occupancy(trace, 3, width=10)
        node2_row = [line for line in chart.splitlines() if line.startswith("node 2")][0]
        assert set(node2_row.split("|")[1]) == {" "}

    def test_out_of_range_node_rejected(self):
        trace = _manual_trace()
        with pytest.raises(ReproError):
            node_occupancy(trace, 1, width=10)

    def test_invalid_arguments_rejected(self):
        trace = _manual_trace()
        with pytest.raises(ReproError):
            node_occupancy(trace, 0)
        with pytest.raises(ReproError):
            node_occupancy(trace, 2, width=0)


class TestYieldProfile:
    def test_profile_length_and_bounds(self):
        trace, _ = _trace_from_run()
        for job_id in trace.job_ids():
            profile = yield_profile(trace, job_id, width=12)
            assert len(profile) == 12
            assert all(0.0 <= value <= 1.0 + 1e-9 for value in profile)

    def test_constant_yield_job(self):
        trace = _manual_trace()
        profile = yield_profile(trace, 0, width=5)
        assert profile == pytest.approx([1.0] * 5)

    def test_unknown_job_rejected(self):
        with pytest.raises(ReproError):
            yield_profile(_manual_trace(), 7)

    def test_invalid_width_rejected(self):
        with pytest.raises(ReproError):
            yield_profile(_manual_trace(), 0, width=0)
