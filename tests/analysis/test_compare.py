"""Tests for the algorithm comparison toolkit."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import compare_instances
from repro.exceptions import ReproError


def _instances():
    return [
        {"fcfs": 100.0, "easy": 80.0, "dynmcb8-asap-per-600": 4.0},
        {"fcfs": 200.0, "easy": 150.0, "dynmcb8-asap-per-600": 2.0},
        {"fcfs": 50.0, "easy": 60.0, "dynmcb8-asap-per-600": 5.0},
    ]


class TestCompareInstancesConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            compare_instances([])

    def test_mismatched_algorithms_rejected(self):
        with pytest.raises(ReproError):
            compare_instances([{"a": 1.0}, {"b": 2.0}])

    def test_non_positive_stretch_rejected(self):
        with pytest.raises(ReproError):
            compare_instances([{"a": 0.0, "b": 1.0}])

    def test_algorithm_set_is_sorted(self):
        comparison = compare_instances(_instances())
        assert list(comparison.algorithms) == sorted(comparison.algorithms)

    def test_num_instances(self):
        assert compare_instances(_instances()).num_instances == 3


class TestComparisonMetrics:
    def test_degradation_of_best_algorithm_is_one_per_instance(self):
        comparison = compare_instances(_instances())
        for mapping in comparison.per_instance_degradation:
            assert min(mapping.values()) == pytest.approx(1.0)

    def test_best_algorithm_matches_expectation(self):
        comparison = compare_instances(_instances())
        assert comparison.best_algorithm() == "dynmcb8-asap-per-600"

    def test_win_fraction_sums_to_at_least_one(self):
        comparison = compare_instances(_instances())
        total = sum(comparison.win_fraction(name) for name in comparison.algorithms)
        assert total >= 1.0  # ties can push it above 1

    def test_ranking_is_sorted_by_mean_degradation(self):
        comparison = compare_instances(_instances())
        ranking = comparison.ranking()
        means = [mean for _, mean in ranking]
        assert means == sorted(means)

    def test_dominance_ratio_direction(self):
        comparison = compare_instances(_instances())
        ratio = comparison.dominance_ratio("dynmcb8-asap-per-600", "fcfs")
        assert ratio > 1.0
        inverse = comparison.dominance_ratio("fcfs", "dynmcb8-asap-per-600")
        assert inverse == pytest.approx(1.0 / ratio)

    def test_pairwise_dominance_covers_all_ordered_pairs(self):
        comparison = compare_instances(_instances())
        matrix = comparison.pairwise_dominance()
        n = len(comparison.algorithms)
        assert len(matrix) == n * (n - 1)

    def test_unknown_algorithm_rejected(self):
        comparison = compare_instances(_instances())
        with pytest.raises(ReproError):
            comparison.degradation_values("nonexistent")
        with pytest.raises(ReproError):
            comparison.dominance_ratio("fcfs", "nonexistent")

    def test_confidence_interval_brackets_mean(self):
        comparison = compare_instances(_instances())
        summary = comparison.degradation_summary("fcfs")
        lower, upper = comparison.degradation_confidence_interval("fcfs", seed=3)
        assert lower <= summary.mean <= upper

    def test_single_instance_comparison(self):
        comparison = compare_instances([{"a": 10.0, "b": 20.0}])
        assert comparison.best_algorithm() == "a"
        assert comparison.win_fraction("a") == 1.0
        assert comparison.degradation_summary("b").mean == pytest.approx(2.0)


@st.composite
def instance_sets(draw):
    algorithms = draw(
        st.lists(
            st.sampled_from(["a", "b", "c", "d"]), min_size=2, max_size=4, unique=True
        )
    )
    num_instances = draw(st.integers(min_value=1, max_value=8))
    instances = []
    for _ in range(num_instances):
        instances.append(
            {
                name: draw(st.floats(min_value=0.5, max_value=1e4, allow_nan=False))
                for name in algorithms
            }
        )
    return instances


class TestComparisonProperties:
    @given(instance_sets())
    @settings(max_examples=40, deadline=None)
    def test_degradation_always_at_least_one(self, instances):
        comparison = compare_instances(instances)
        for name in comparison.algorithms:
            assert all(value >= 1.0 - 1e-12 for value in comparison.degradation_values(name))

    @given(instance_sets())
    @settings(max_examples=40, deadline=None)
    def test_best_algorithm_minimizes_mean_degradation(self, instances):
        comparison = compare_instances(instances)
        best = comparison.best_algorithm()
        best_mean = comparison.degradation_summary(best).mean
        for name in comparison.algorithms:
            assert best_mean <= comparison.degradation_summary(name).mean + 1e-12

    @given(instance_sets())
    @settings(max_examples=40, deadline=None)
    def test_dominance_ratios_are_reciprocal(self, instances):
        comparison = compare_instances(instances)
        names = comparison.algorithms
        ratio = comparison.dominance_ratio(names[0], names[1])
        inverse = comparison.dominance_ratio(names[1], names[0])
        assert ratio * inverse == pytest.approx(1.0, rel=1e-9)
