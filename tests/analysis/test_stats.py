"""Tests for the descriptive / resampling statistics helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    bootstrap_confidence_interval,
    geometric_mean,
    paired_win_fractions,
    summarize,
)
from repro.exceptions import ReproError

positive_samples = st.lists(
    st.floats(min_value=0.01, max_value=1e4, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=50,
)


class TestSummarize:
    def test_single_value(self):
        summary = summarize([5.0])
        assert summary.count == 1
        assert summary.mean == 5.0
        assert summary.std == 0.0
        assert summary.minimum == summary.maximum == 5.0

    def test_known_sample(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ReproError):
            summarize([])

    def test_nan_rejected(self):
        with pytest.raises(ReproError):
            summarize([1.0, float("nan")])

    def test_as_dict_round_trip(self):
        summary = summarize([1.0, 2.0, 3.0])
        data = summary.as_dict()
        assert data["mean"] == summary.mean
        assert data["max"] == summary.maximum
        assert data["count"] == 3.0

    @given(positive_samples)
    @settings(max_examples=50, deadline=None)
    def test_percentiles_ordered(self, values):
        summary = summarize(values)
        assert (
            summary.minimum
            <= summary.p25
            <= summary.median
            <= summary.p75
            <= summary.p95
            <= summary.maximum
        )

    @given(positive_samples)
    @settings(max_examples=50, deadline=None)
    def test_mean_within_range(self, values):
        summary = summarize(values)
        assert summary.minimum - 1e-9 <= summary.mean <= summary.maximum + 1e-9


class TestGeometricMean:
    def test_identical_values(self):
        assert geometric_mean([4.0, 4.0, 4.0]) == pytest.approx(4.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            geometric_mean([])

    def test_non_positive_rejected(self):
        with pytest.raises(ReproError):
            geometric_mean([1.0, 0.0])

    @given(positive_samples)
    @settings(max_examples=50, deadline=None)
    def test_never_exceeds_arithmetic_mean(self, values):
        assert geometric_mean(values) <= float(np.mean(values)) + 1e-9


class TestBootstrap:
    def test_interval_contains_point_estimate_for_tight_sample(self):
        values = [10.0] * 20
        lower, upper = bootstrap_confidence_interval(values, seed=1)
        assert lower == pytest.approx(10.0)
        assert upper == pytest.approx(10.0)

    def test_interval_ordering(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(mean=1.0, sigma=0.5, size=40).tolist()
        lower, upper = bootstrap_confidence_interval(values, seed=2)
        assert lower <= upper
        assert lower <= float(np.mean(values)) <= upper

    def test_deterministic_given_seed(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        first = bootstrap_confidence_interval(values, seed=42)
        second = bootstrap_confidence_interval(values, seed=42)
        assert first == second

    def test_custom_statistic(self):
        values = [1.0, 2.0, 3.0, 100.0]
        lower, upper = bootstrap_confidence_interval(values, statistic=np.median, seed=0)
        assert lower >= 1.0
        assert upper <= 100.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            bootstrap_confidence_interval([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ReproError):
            bootstrap_confidence_interval([1.0], confidence=1.5)

    def test_bad_resample_count_rejected(self):
        with pytest.raises(ReproError):
            bootstrap_confidence_interval([1.0], num_resamples=0)


class TestPairedWinFractions:
    def test_clear_winner(self):
        instances = [
            {"a": 1.0, "b": 2.0},
            {"a": 1.0, "b": 3.0},
            {"a": 0.5, "b": 4.0},
        ]
        fractions = paired_win_fractions(instances)
        assert fractions["a"] == 1.0
        assert fractions["b"] == 0.0

    def test_ties_count_for_both(self):
        instances = [{"a": 1.0, "b": 1.0}]
        fractions = paired_win_fractions(instances)
        assert fractions["a"] == 1.0
        assert fractions["b"] == 1.0

    def test_higher_is_better_mode(self):
        instances = [{"a": 1.0, "b": 2.0}]
        fractions = paired_win_fractions(instances, lower_is_better=False)
        assert fractions["b"] == 1.0
        assert fractions["a"] == 0.0

    def test_mismatched_algorithm_sets_rejected(self):
        with pytest.raises(ReproError):
            paired_win_fractions([{"a": 1.0}, {"b": 1.0}])

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            paired_win_fractions([])
