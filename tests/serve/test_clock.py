"""The clock seam: SimulatedClock semantics and WallClock pacing."""

from __future__ import annotations

import time

import pytest

from repro.core.clock import Clock, SimulatedClock, WallClock
from repro.exceptions import SimulationError


class TestSimulatedClock:
    def test_kind(self):
        assert SimulatedClock.kind == "simulated"

    def test_starts_at_origin(self):
        clock = SimulatedClock()
        assert clock.now() == 0.0
        clock.start(1234.5)
        assert clock.now() == 1234.5

    def test_wait_until_jumps_forward(self):
        clock = SimulatedClock()
        clock.start(100.0)
        clock.wait_until(250.0)
        assert clock.now() == 250.0

    def test_wait_until_never_goes_backwards(self):
        clock = SimulatedClock()
        clock.start(100.0)
        clock.wait_until(50.0)
        assert clock.now() == 100.0

    def test_waiting_is_free(self):
        clock = SimulatedClock()
        clock.start(0.0)
        assert clock.wall_seconds_until(1e12) == 0.0
        before = time.perf_counter()
        clock.wait_until(1e12)  # a ~32k-year simulated gap, instantly
        assert time.perf_counter() - before < 1.0
        assert clock.now() == 1e12


class TestWallClock:
    def test_kind(self):
        assert WallClock.kind == "wall"

    @pytest.mark.parametrize("acceleration", [0.0, -1.0, float("inf"), float("nan")])
    def test_invalid_acceleration_rejected(self, acceleration):
        with pytest.raises(SimulationError, match="acceleration"):
            WallClock(acceleration)

    def test_reads_origin_before_start(self):
        clock = WallClock(10.0)
        assert clock.now() == 0.0

    def test_now_advances_with_wall_time(self):
        clock = WallClock(1000.0)
        clock.start(500.0)
        first = clock.now()
        time.sleep(0.01)
        second = clock.now()
        assert second > first >= 500.0
        # 10 ms of wall time is 10 simulated seconds at x1000 — bounded
        # loosely so a loaded CI machine cannot flake it.
        assert second - first >= 5.0

    def test_wall_seconds_until_scales_with_acceleration(self):
        clock = WallClock(100.0)
        clock.start(0.0)
        # 50 simulated seconds at x100 is at most 0.5 wall seconds.
        assert 0.0 < clock.wall_seconds_until(50.0) <= 0.5

    def test_wall_seconds_until_past_deadline_is_zero(self):
        clock = WallClock(1.0)
        clock.start(1000.0)
        assert clock.wall_seconds_until(10.0) == 0.0

    def test_wait_until_blocks_until_deadline(self):
        clock = WallClock(1000.0)
        clock.start(0.0)
        before = time.perf_counter()
        clock.wait_until(20.0)  # 20 simulated seconds = 20 ms of wall time
        elapsed = time.perf_counter() - before
        assert clock.now() >= 20.0
        assert elapsed < 5.0  # sanity: accelerated, not real-time

    def test_is_a_clock(self):
        assert issubclass(WallClock, Clock)
        assert issubclass(SimulatedClock, Clock)
