"""The live asyncio service: submit/status/cancel, metrics, socket protocol.

Live-mode tests drive the service under a :class:`SimulatedClock` with
explicit submit times, so the asyncio driver steps the engine
deterministically (no real waiting, no wall-clock dependence) and
assertions can be exact.  Load-sensitive admission policies are exercised
through the synchronous replay path, where intake order is fully
deterministic; the live path covers the time-based token bucket.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.clock import SimulatedClock
from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig
from repro.core.job import JobSpec
from repro.exceptions import ConfigurationError, ReproError
from repro.serve import (
    BoundedQueuePolicy,
    LoadThresholdPolicy,
    SchedulerService,
    ServiceServer,
    TokenBucketPolicy,
)
from repro.traces import CallableTraceSource

CLUSTER = Cluster(2, 4, 8.0)

#: A light job: half a node of CPU, a fifth of its memory, 100 s of work.
JOB = dict(num_tasks=1, cpu_need=0.5, mem_requirement=0.2, execution_time=100.0)

#: A job that monopolizes one node: memory is rigid, so 0.9 + 0.9 > 1.0
#: forbids co-residency and two of these saturate the two-node cluster.
SATURATING = dict(
    num_tasks=1, cpu_need=1.0, mem_requirement=0.9, execution_time=500.0
)


def _service(algorithm="greedy-pmtn-migr", **kwargs):
    kwargs.setdefault("config", SimulationConfig())
    return SchedulerService(CLUSTER, algorithm, **kwargs)


def _burst(count, job=SATURATING, gap=0.0):
    """A trace source of ``count`` identical jobs, ``gap`` seconds apart."""
    specs = [
        JobSpec(
            job_id=index,
            submit_time=index * gap,
            num_tasks=job["num_tasks"],
            cpu_need=job["cpu_need"],
            mem_requirement=job["mem_requirement"],
            execution_time=job["execution_time"],
        )
        for index in range(count)
    ]
    return CallableTraceSource(factory=lambda cluster: list(specs), key="burst")


class TestLiveLifecycle:
    def test_submit_run_complete(self):
        async def scenario():
            service = _service()
            await service.start(clock=SimulatedClock(), start_time=0.0)
            outcome = await service.submit(submit_time=0.0, **JOB)
            assert outcome == {"job_id": 0, "accepted": True, "reason": ""}
            await service.drain()
            status = await service.status(0)
            result = await service.shutdown()
            return status, result, service

        status, result, service = asyncio.run(scenario())
        assert status["state"] == "completed"
        assert status["first_start_time"] == 0.0
        assert status["completion_time"] == 100.0
        assert result.num_jobs == 1
        assert service.metrics.completions == 1
        assert service.metrics.placements >= 1

    def test_drain_right_after_submit_waits_for_completion(self):
        # A drain issued in the same event-loop tick as the submit must not
        # observe the stale idle flag and return before the job ran.
        async def scenario():
            service = _service()
            await service.start(clock=SimulatedClock())
            await service.submit(submit_time=0.0, **JOB)
            await service.drain()
            return await service.status(0)

        assert asyncio.run(scenario())["state"] == "completed"

    def test_sequential_submissions_auto_assign_ids(self):
        async def scenario():
            service = _service()
            await service.start(clock=SimulatedClock())
            first = await service.submit(submit_time=0.0, **JOB)
            second = await service.submit(submit_time=50.0, **JOB)
            await service.drain()
            await service.shutdown()
            return first, second, service

        first, second, service = asyncio.run(scenario())
        assert (first["job_id"], second["job_id"]) == (0, 1)
        assert service.metrics.accepted == 2
        assert service.metrics.completions == 2

    def test_submit_time_never_goes_backwards(self):
        async def scenario():
            service = _service()
            await service.start(clock=SimulatedClock(), start_time=0.0)
            await service.submit(submit_time=100.0, **JOB)
            # An out-of-order client timestamp is clamped, not fatal.
            outcome = await service.submit(submit_time=20.0, **JOB)
            assert outcome["accepted"]
            status = await service.status(1)
            await service.drain()
            await service.shutdown()
            return status

        assert asyncio.run(scenario())["submit_time"] == 100.0

    def test_cancel_pending_and_unknown(self):
        async def scenario():
            service = _service()
            await service.start(clock=SimulatedClock())
            for _ in range(2):
                await service.submit(submit_time=0.0, **SATURATING)
            queued = await service.submit(submit_time=0.0, **SATURATING)
            cancelled = await service.cancel(queued["job_id"])
            missing = await service.cancel(999)
            status = await service.status(queued["job_id"])
            await service.drain()
            await service.shutdown()
            return cancelled, missing, status, service

        cancelled, missing, status, service = asyncio.run(scenario())
        assert cancelled == {"job_id": 2, "cancelled": True}
        assert missing == {"job_id": 999, "cancelled": False}
        assert status["state"] == "cancelled"
        assert service.metrics.cancelled == 1
        assert service.metrics.completions == 2

    def test_status_of_never_seen_job(self):
        async def scenario():
            service = _service()
            await service.start(clock=SimulatedClock())
            status = await service.status(42)
            await service.shutdown()
            return status

        assert asyncio.run(scenario()) == {"job_id": 42, "state": "unknown"}

    def test_infeasible_job_rejected_not_fatal(self):
        async def scenario():
            service = _service()
            await service.start(clock=SimulatedClock())
            # Three full-memory tasks can never fit on two nodes.
            outcome = await service.submit(
                submit_time=0.0, num_tasks=3, cpu_need=0.5,
                mem_requirement=1.0, execution_time=10.0,
            )
            follow_up = await service.submit(submit_time=1.0, **JOB)
            await service.drain()
            await service.shutdown()
            return outcome, follow_up, service

        outcome, follow_up, service = asyncio.run(scenario())
        assert not outcome["accepted"]
        assert "infeasible" in outcome["reason"]
        assert follow_up["accepted"]
        assert service.metrics.rejected == 1
        assert service.metrics.completions == 1

    def test_invalid_job_fields_rejected(self):
        async def scenario():
            service = _service()
            await service.start(clock=SimulatedClock())
            bad_tasks = await service.submit(
                submit_time=0.0, num_tasks=0, cpu_need=0.5,
                mem_requirement=0.2, execution_time=10.0,
            )
            bad_memory = await service.submit(
                submit_time=0.0, num_tasks=1, cpu_need=0.5,
                mem_requirement=2.0, execution_time=10.0,
            )
            await service.shutdown()
            return bad_tasks, bad_memory

        bad_tasks, bad_memory = asyncio.run(scenario())
        assert not bad_tasks["accepted"]
        assert "num_tasks" in bad_tasks["reason"]
        assert not bad_memory["accepted"]
        assert "mem_requirement" in bad_memory["reason"]

    def test_service_is_single_use(self):
        async def scenario():
            service = _service()
            await service.start(clock=SimulatedClock())
            await service.shutdown()
            with pytest.raises(ReproError, match="already used"):
                await service.start(clock=SimulatedClock())
            with pytest.raises(ReproError, match="not live"):
                await service.submit(submit_time=0.0, **JOB)

        asyncio.run(scenario())

    def test_live_after_replay_rejected(self):
        from repro.traces import LublinTraceSource

        service = _service(config=SimulationConfig(streaming_metrics=True))
        service.replay(LublinTraceSource(num_jobs=5, seed=3), keep_result=False)

        async def scenario():
            with pytest.raises(ReproError, match="already used"):
                await service.start(clock=SimulatedClock())

        asyncio.run(scenario())


class TestAdmissionIntegration:
    def test_token_bucket_rejects_live(self):
        # The token bucket depends only on time and its own state, so its
        # live-mode decisions are deterministic regardless of driver timing.
        async def scenario():
            service = _service(admission=TokenBucketPolicy(rate=1.0, burst=2.0))
            await service.start(clock=SimulatedClock())
            outcomes = [
                await service.submit(submit_time=0.0, **JOB) for _ in range(3)
            ]
            status = await service.status(2)
            await service.drain()
            await service.shutdown()
            return outcomes, status, service

        outcomes, status, service = asyncio.run(scenario())
        assert [outcome["accepted"] for outcome in outcomes] == [True, True, False]
        assert outcomes[2]["reason"] == "rate-limited"
        assert status["state"] == "rejected"
        assert status["reason"] == "rate-limited"
        assert service.metrics.rejected == 1
        assert service.metrics.completions == 2

    def test_admission_spec_dict_plumbing(self):
        service = _service(admission={"type": "load-threshold", "max_load": 0.5})
        assert isinstance(service.admission, LoadThresholdPolicy)
        assert service.admission.max_load == 0.5
        with pytest.raises(ConfigurationError):
            _service(admission={"type": "vip-lane"})

    # Intake-time decisions run while the previous arrival is still pending
    # (it is placed later in the same engine step), so every decision after
    # the first sees at least one pending job; true queueing shows up on top
    # of that.  These two tests use the rigid batch scheduler: a preemptive
    # one would timeshare the backlog instead of queueing it.  With two
    # saturating jobs running, arrivals 2 and 3 stay queued, so job 4's
    # decision sees pending == 2.

    def test_bounded_queue_reject_in_replay(self):
        service = _service(
            "fcfs", admission=BoundedQueuePolicy(max_pending=2, mode="reject")
        )
        report = service.replay(_burst(5, gap=10.0), keep_result=False)
        assert report.submitted == 5
        assert report.accepted == 4
        assert report.rejected == 1
        assert report.shed == 0
        assert report.completions == 4

    def test_bounded_queue_shed_in_replay(self):
        service = _service(
            "fcfs", admission=BoundedQueuePolicy(max_pending=2, mode="shed")
        )
        report = service.replay(_burst(5, gap=10.0), keep_result=False)
        assert report.submitted == 5
        # Job 4 displaces the oldest queued job (job 2) instead of being
        # turned away: everyone is admitted, one victim never runs.
        assert report.accepted == 5
        assert report.rejected == 0
        assert report.shed == 1
        assert report.completions == 4

    def test_load_threshold_in_replay(self):
        service = _service(admission={"type": "load-threshold", "max_load": 0.5})
        report = service.replay(
            _burst(4, job=dict(JOB, cpu_need=0.8)), keep_result=False
        )
        # Total capacity is 2.0 nodes; each accepted job offers 0.8 CPU.
        # The threshold trips once resident load reaches 0.8 (two jobs).
        assert report.submitted == 4
        assert report.accepted == 2
        assert report.rejected == 2
        assert report.completions == 2


class TestMetricsSnapshot:
    def test_snapshot_shape_and_latency(self):
        async def scenario():
            service = _service()
            await service.start(clock=SimulatedClock())
            await service.submit(submit_time=0.0, **JOB)
            await service.drain()
            snapshot = service.metrics_snapshot()
            await service.shutdown()
            return snapshot

        snapshot = asyncio.run(scenario())
        assert snapshot["submitted"] == snapshot["accepted"] == 1
        assert snapshot["completions"] == 1
        assert snapshot["placements"] >= 1
        # The job started the instant it was submitted: zero queue latency.
        assert snapshot["queue_latency"]["p50"] == 0.0
        assert snapshot["queue_latency"]["max"] == 0.0
        assert "bundle" in snapshot
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_bundles_merge_across_services(self):
        from repro.metrics import merge_bundles

        async def scenario():
            service = _service()
            await service.start(clock=SimulatedClock())
            await service.submit(submit_time=0.0, **JOB)
            await service.drain()
            await service.shutdown()
            return service

        first = asyncio.run(scenario())
        second = asyncio.run(scenario())
        merged = merge_bundles([first.metrics.bundle(), second.metrics.bundle()])
        assert merged["completions"].total == 2.0
        assert merged["queue_latency"].count == 2


class TestSocketProtocol:
    @staticmethod
    async def _roundtrip(reader, writer, request):
        writer.write((json.dumps(request) + "\n").encode("utf-8"))
        await writer.drain()
        return json.loads(await reader.readline())

    def test_full_session_over_the_socket(self):
        async def scenario():
            service = _service()
            await service.start(clock=SimulatedClock())
            server = ServiceServer(service, port=0)
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            call = self._roundtrip

            replies = {}
            replies["ping"] = await call(reader, writer, {"op": "ping"})
            replies["submit"] = await call(
                reader, writer,
                {"op": "submit", "job": {**JOB, "submit_time": 0.0}},
            )
            replies["drain"] = await call(reader, writer, {"op": "drain"})
            replies["status"] = await call(
                reader, writer, {"op": "status", "job_id": 0}
            )
            replies["metrics"] = await call(reader, writer, {"op": "metrics"})
            # Streamed snapshots: two lines, no waiting between them.
            writer.write(
                (json.dumps(
                    {"op": "stream-metrics", "count": 2, "interval": 0.0}
                ) + "\n").encode("utf-8")
            )
            await writer.drain()
            replies["stream"] = [
                json.loads(await reader.readline()) for _ in range(2)
            ]
            replies["not_object"] = await call(reader, writer, None)  # null line
            replies["unknown_op"] = await call(reader, writer, {"op": "warp"})
            replies["bad_submit"] = await call(
                reader, writer, {"op": "submit", "job": {"num_tasks": 1}}
            )
            replies["cancel_missing"] = await call(
                reader, writer, {"op": "cancel", "job_id": 5}
            )
            replies["shutdown"] = await call(reader, writer, {"op": "shutdown"})
            writer.close()
            await server.serve_until_shutdown()
            await server.close()
            await service.shutdown()
            return replies

        replies = asyncio.run(scenario())
        assert replies["ping"] == {"ok": True, "pong": True}
        assert replies["submit"]["ok"] and replies["submit"]["accepted"]
        assert replies["submit"]["job_id"] == 0
        assert replies["drain"] == {"ok": True, "drained": True}
        assert replies["status"]["state"] == "completed"
        assert replies["metrics"]["metrics"]["completions"] == 1
        assert [line["sequence"] for line in replies["stream"]] == [0, 1]
        assert all(line["ok"] for line in replies["stream"])
        assert not replies["not_object"]["ok"]
        assert "error" in replies["not_object"]
        assert not replies["unknown_op"]["ok"]
        assert "warp" in replies["unknown_op"]["error"]
        assert not replies["bad_submit"]["ok"]
        assert replies["cancel_missing"] == {
            "ok": True, "job_id": 5, "cancelled": False,
        }
        assert replies["shutdown"]["ok"]
        assert replies["shutdown"]["metrics"]["completions"] == 1

    def test_concurrent_clients(self):
        async def scenario():
            service = _service()
            await service.start(clock=SimulatedClock())
            server = ServiceServer(service, port=0)
            host, port = await server.start()

            async def client(job_id):
                reader, writer = await asyncio.open_connection(host, port)
                reply = await self._roundtrip(
                    reader, writer,
                    {"op": "submit",
                     "job": {**JOB, "job_id": job_id, "submit_time": 0.0}},
                )
                writer.close()
                return reply

            replies = await asyncio.gather(*(client(i) for i in range(5)))
            await service.drain()
            await server.close()
            await service.shutdown()
            return replies, service

        replies, service = asyncio.run(scenario())
        assert sorted(reply["job_id"] for reply in replies) == [0, 1, 2, 3, 4]
        assert all(reply["accepted"] for reply in replies)
        assert service.metrics.completions == 5

    def test_address_requires_running_server(self):
        server = ServiceServer(_service())
        with pytest.raises(ReproError, match="not running"):
            server.address
