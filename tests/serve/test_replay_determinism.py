"""The tentpole pin: service replay is byte-identical to ``run_stream``.

The serving layer changes *when* decisions are made in wall time, never
*what* they are in simulated time.  With the default accept-all admission
the engine consumes exactly the source stream, so the placement log of a
service replay must equal the log of a bare ``Simulator.run_stream`` as a
byte string — for every paper algorithm, and at any clock acceleration.
"""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig, Simulator
from repro.schedulers import PAPER_ALGORITHMS, create_scheduler
from repro.serve import PlacementLogObserver, SchedulerService, run_loadtest
from repro.traces import DiurnalPoissonTraceSource

CLUSTER = Cluster(16, 4, 8.0)

#: Sub-critical arrivals (same recipe as the streaming-metrics benchmarks):
#: enough churn to exercise preemption/migration paths without backlog.
TRACE = DiurnalPoissonTraceSource(
    num_jobs=150,
    seed=11,
    mean_interarrival_seconds=90.0,
    runtime_log_mean=5.0,
    runtime_log_sigma=1.0,
    max_runtime_seconds=7200.0,
    serial_fraction=0.6,
)


def _config():
    return SimulationConfig(streaming_metrics=True)


def _bare_log(algorithm):
    observer = PlacementLogObserver()
    engine = Simulator(
        CLUSTER, create_scheduler(algorithm), _config(), observers=[observer]
    )
    result = engine.run_stream(TRACE.jobs(CLUSTER))
    return observer.to_json_bytes(), result


def _service_log(algorithm, acceleration=None):
    observer = PlacementLogObserver()
    service = SchedulerService(
        CLUSTER, algorithm, config=_config(), observers=[observer]
    )
    report = service.replay(TRACE, acceleration=acceleration)
    return observer.to_json_bytes(), report


class TestReplayMatchesRunStream:
    @pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
    def test_placement_log_is_byte_identical(self, algorithm):
        bare_bytes, bare_result = _bare_log(algorithm)
        serve_bytes, report = _service_log(algorithm)
        assert serve_bytes == bare_bytes
        assert report.sim_seconds == float(bare_result.makespan)
        assert report.submitted == report.accepted == 150
        assert report.completions == 150
        assert report.rejected == report.shed == 0

    def test_accelerated_wall_clock_makes_identical_decisions(self):
        # A few-job trace keeps the real-time pacing negligible even at
        # x1e6; the decisions must still match the simulated-clock run.
        trace = DiurnalPoissonTraceSource(
            num_jobs=10,
            seed=11,
            mean_interarrival_seconds=90.0,
            runtime_log_mean=5.0,
            runtime_log_sigma=1.0,
            max_runtime_seconds=7200.0,
            serial_fraction=0.6,
        )
        def log_for(acceleration):
            observer = PlacementLogObserver()
            service = SchedulerService(
                CLUSTER,
                "dynmcb8-asap-per-600",
                config=_config(),
                observers=[observer],
            )
            report = service.replay(trace, acceleration=acceleration)
            return observer.to_json_bytes(), report

        simulated_bytes, simulated_report = log_for(None)
        wall_bytes, wall_report = log_for(1_000_000.0)
        assert wall_bytes == simulated_bytes
        assert simulated_report.clock == "simulated"
        assert wall_report.clock == "wall"
        assert wall_report.acceleration == 1_000_000.0
        assert wall_report.completions == simulated_report.completions

    def test_report_and_bench_payload_shape(self):
        from repro.serve import bench_payload

        report = run_loadtest(CLUSTER, "greedy-pmtn-migr", TRACE)
        assert report.placements > 0
        assert report.wall_seconds > 0.0
        assert report.placements_per_wall_sec > 0.0
        assert {"p50", "p90", "p99", "mean", "max"} <= set(report.queue_latency)
        payload = bench_payload(report, workload="diurnal-150", nodes=16)
        assert payload["benchmark"] == "serve-loadtest"
        assert payload["workload"] == "diurnal-150"
        assert payload["nodes"] == 16
        assert payload["placements"] == report.placements
        summary = report.to_dict()
        assert summary["algorithm"] == "greedy-pmtn-migr"
        assert summary["submitted"] == 150
