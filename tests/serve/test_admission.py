"""Admission policies: decision semantics and spec round-trips."""

from __future__ import annotations

import json

import pytest

from repro.core.job import JobSpec
from repro.exceptions import ConfigurationError
from repro.serve import (
    AcceptAllPolicy,
    BoundedQueuePolicy,
    LoadThresholdPolicy,
    ServiceLoad,
    TokenBucketPolicy,
    admission_policy_from_dict,
    available_admission_policies,
)


def _spec(job_id=0, submit=0.0):
    return JobSpec(job_id, submit, 1, 0.5, 0.2, 100.0)


def _load(
    time=0.0,
    pending=0,
    running=0,
    offered=0.0,
    oldest=None,
):
    return ServiceLoad(
        time=time,
        pending_jobs=pending,
        running_jobs=running,
        active_jobs=pending + running,
        offered_cpu_load=offered,
        oldest_pending_job_id=oldest,
    )


class TestAcceptAll:
    def test_accepts_everything(self):
        policy = AcceptAllPolicy()
        decision = policy.admit(_spec(), _load(pending=10_000, offered=99.0))
        assert decision.accepted
        assert decision.reason == ""
        assert decision.shed_job_ids == ()


class TestBoundedQueue:
    def test_admits_below_the_cap(self):
        policy = BoundedQueuePolicy(max_pending=4)
        assert policy.admit(_spec(), _load(pending=3)).accepted

    def test_reject_mode_turns_arrivals_away_at_the_cap(self):
        policy = BoundedQueuePolicy(max_pending=4, mode="reject")
        decision = policy.admit(_spec(), _load(pending=4, oldest=7))
        assert not decision.accepted
        assert decision.reason == "queue-full"
        assert decision.shed_job_ids == ()

    def test_shed_mode_displaces_the_oldest_pending_job(self):
        policy = BoundedQueuePolicy(max_pending=4, mode="shed")
        decision = policy.admit(_spec(99), _load(pending=4, oldest=7))
        assert decision.accepted
        assert decision.reason == "shed-oldest"
        assert decision.shed_job_ids == (7,)

    def test_shed_mode_with_no_victim_still_admits(self):
        policy = BoundedQueuePolicy(max_pending=4, mode="shed")
        decision = policy.admit(_spec(), _load(pending=4, oldest=None))
        assert decision.accepted
        assert decision.shed_job_ids == ()

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="max_pending"):
            BoundedQueuePolicy(max_pending=0)
        with pytest.raises(ConfigurationError, match="mode"):
            BoundedQueuePolicy(mode="drop-newest")


class TestLoadThreshold:
    def test_admits_below_the_threshold(self):
        policy = LoadThresholdPolicy(max_load=1.0)
        assert policy.admit(_spec(), _load(offered=0.99)).accepted

    def test_rejects_at_and_above_the_threshold(self):
        policy = LoadThresholdPolicy(max_load=1.0)
        for offered in (1.0, 3.7):
            decision = policy.admit(_spec(), _load(offered=offered))
            assert not decision.accepted
            assert decision.reason == "overload"

    def test_validation(self):
        for bad in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(ConfigurationError, match="max_load"):
                LoadThresholdPolicy(max_load=bad)


class TestTokenBucket:
    def test_burst_then_rate_limited(self):
        policy = TokenBucketPolicy(rate=1.0, burst=2.0)
        assert policy.admit(_spec(0), _load(time=0.0)).accepted
        assert policy.admit(_spec(1), _load(time=0.0)).accepted
        decision = policy.admit(_spec(2), _load(time=0.0))
        assert not decision.accepted
        assert decision.reason == "rate-limited"

    def test_refills_over_simulated_time(self):
        policy = TokenBucketPolicy(rate=1.0, burst=2.0)
        for job_id in range(3):
            policy.admit(_spec(job_id), _load(time=0.0))
        # One simulated second refills one token.
        assert policy.admit(_spec(3), _load(time=1.0)).accepted
        assert not policy.admit(_spec(4), _load(time=1.0)).accepted

    def test_refill_caps_at_burst(self):
        policy = TokenBucketPolicy(rate=10.0, burst=2.0)
        policy.admit(_spec(0), _load(time=0.0))
        # An hour-long gap refills to the burst cap, not rate x gap.
        assert policy.admit(_spec(1), _load(time=3600.0)).accepted
        assert policy.admit(_spec(2), _load(time=3600.0)).accepted
        assert not policy.admit(_spec(3), _load(time=3600.0)).accepted

    def test_reset_makes_replays_deterministic(self):
        policy = TokenBucketPolicy(rate=1.0, burst=3.0)

        def run():
            policy.reset()
            return [
                policy.admit(_spec(i), _load(time=float(i) * 0.1)).accepted
                for i in range(8)
            ]

        assert run() == run()

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="rate"):
            TokenBucketPolicy(rate=0.0)
        with pytest.raises(ConfigurationError, match="burst"):
            TokenBucketPolicy(burst=0.5)


#: Option grids for the spec round-trip property test — every combination of
#: every registered type must survive to_dict -> from_dict -> to_dict.
_OPTION_GRIDS = {
    "accept-all": [{}],
    "bounded-queue": [
        {"max_pending": pending, "mode": mode}
        for pending in (1, 64, 4096)
        for mode in ("reject", "shed")
    ],
    "load-threshold": [{"max_load": load} for load in (0.25, 1.0, 8.0)],
    "token-bucket": [
        {"rate": rate, "burst": burst}
        for rate in (0.1, 1.0, 1000.0)
        for burst in (1.0, 10.0)
    ],
}


class TestSpecRoundTrip:
    def test_grid_covers_every_registered_type(self):
        assert set(_OPTION_GRIDS) == set(available_admission_policies())

    @pytest.mark.parametrize(
        "kind,options",
        [
            (kind, options)
            for kind, grid in sorted(_OPTION_GRIDS.items())
            for options in grid
        ],
    )
    def test_round_trips(self, kind, options):
        policy = admission_policy_from_dict({"type": kind, **options})
        spec = policy.to_dict()
        assert spec["type"] == kind
        for key, value in options.items():
            assert spec[key] == value
        rebuilt = admission_policy_from_dict(spec)
        assert rebuilt.to_dict() == spec
        assert json.loads(json.dumps(spec)) == spec

    def test_missing_type_rejected(self):
        with pytest.raises(ConfigurationError, match="'type'"):
            admission_policy_from_dict({"max_pending": 4})

    def test_unknown_type_lists_known_types(self):
        with pytest.raises(ConfigurationError) as excinfo:
            admission_policy_from_dict({"type": "admit-vips-first"})
        message = str(excinfo.value)
        for kind in available_admission_policies():
            assert kind in message

    def test_bad_options_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid options"):
            admission_policy_from_dict({"type": "accept-all", "max_pending": 4})
