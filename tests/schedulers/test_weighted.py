"""Tests for weighted max-min yield sharing and the weighted scheduler."""

from __future__ import annotations

import pytest

from repro.core import Cluster, JobSpec, SimulationConfig, Simulator
from repro.core.context import JobView
from repro.core.job import JobState, MINIMUM_YIELD
from repro.exceptions import ConfigurationError
from repro.schedulers import WeightedYieldScheduler, create_scheduler
from repro.schedulers.dfrs.weighted import (
    inverse_size_weight,
    uniform_weight,
    weighted_fair_yields,
    weighted_improve_yield,
)
from repro.schedulers.dfrs.yield_opt import fair_yields, improve_average_yield


def _view(job_id, tasks=1, cpu=0.5, mem=0.2):
    return JobView(
        job_id=job_id,
        num_tasks=tasks,
        cpu_need=cpu,
        mem_requirement=mem,
        submit_time=0.0,
        state=JobState.PENDING,
        virtual_time=0.0,
        flow_time=0.0,
        backoff_count=0,
        assignment=None,
        current_yield=0.0,
        last_assignment=None,
    )


CLUSTER = Cluster(num_nodes=4, cores_per_node=4, node_memory_gb=8.0)


class TestWeightFunctions:
    def test_uniform_weight(self):
        assert uniform_weight(_view(0, tasks=10)) == 1.0

    def test_inverse_size_weight(self):
        assert inverse_size_weight(_view(0, tasks=4)) == pytest.approx(0.25)
        assert inverse_size_weight(_view(1, tasks=1)) == 1.0


class TestWeightedFairYields:
    def test_empty_placements(self):
        assert weighted_fair_yields({}, {}, CLUSTER, {}) == {}

    def test_uniform_weights_match_fair_yields(self):
        jobs = {0: _view(0, cpu=1.0), 1: _view(1, cpu=1.0), 2: _view(2, cpu=1.0)}
        placements = {0: (0,), 1: (0,), 2: (0,)}
        weights = {job_id: 1.0 for job_id in placements}
        weighted = weighted_fair_yields(placements, jobs, CLUSTER, weights)
        plain = fair_yields(placements, jobs, CLUSTER)
        for job_id in placements:
            assert weighted[job_id] == pytest.approx(plain[job_id], abs=0.02)

    def test_higher_weight_gets_higher_yield_under_contention(self):
        jobs = {0: _view(0, cpu=1.0), 1: _view(1, cpu=1.0)}
        placements = {0: (0,), 1: (0,)}
        weights = {0: 3.0, 1: 1.0}
        yields = weighted_fair_yields(placements, jobs, CLUSTER, weights)
        assert yields[0] > yields[1]
        assert yields[0] == pytest.approx(0.75, abs=0.02)
        assert yields[1] == pytest.approx(0.25, abs=0.02)

    def test_capacity_respected_on_every_node(self):
        jobs = {
            0: _view(0, tasks=2, cpu=0.9),
            1: _view(1, tasks=2, cpu=0.8),
            2: _view(2, tasks=1, cpu=1.0),
        }
        placements = {0: (0, 1), 1: (0, 1), 2: (1,)}
        weights = {0: 2.0, 1: 1.0, 2: 5.0}
        yields = weighted_fair_yields(placements, jobs, CLUSTER, weights)
        allocated = [0.0] * CLUSTER.num_nodes
        for job_id, nodes in placements.items():
            for node in nodes:
                allocated[node] += jobs[job_id].cpu_need * yields[job_id]
        assert all(total <= 1.0 + 1e-6 for total in allocated)

    def test_uncontended_jobs_reach_full_yield(self):
        jobs = {0: _view(0, cpu=0.3), 1: _view(1, cpu=0.3)}
        placements = {0: (0,), 1: (1,)}
        weights = {0: 1.0, 1: 10.0}
        yields = weighted_fair_yields(placements, jobs, CLUSTER, weights)
        assert yields[0] == pytest.approx(1.0)
        assert yields[1] == pytest.approx(1.0)

    def test_invalid_weight_rejected(self):
        jobs = {0: _view(0)}
        with pytest.raises(ConfigurationError):
            weighted_fair_yields({0: (0,)}, jobs, CLUSTER, {0: 0.0})
        with pytest.raises(ConfigurationError):
            weighted_fair_yields({0: (0,)}, jobs, CLUSTER, {0: -1.0})

    def test_yields_within_bounds(self):
        jobs = {i: _view(i, cpu=1.0) for i in range(5)}
        placements = {i: (0,) for i in range(5)}
        weights = {i: float(i + 1) for i in range(5)}
        yields = weighted_fair_yields(placements, jobs, CLUSTER, weights)
        for value in yields.values():
            assert MINIMUM_YIELD <= value <= 1.0


class TestWeightedImproveYield:
    def test_never_decreases_yields(self):
        jobs = {0: _view(0, cpu=0.4), 1: _view(1, cpu=0.4)}
        placements = {0: (0,), 1: (0,)}
        base = {0: 0.5, 1: 0.5}
        improved = weighted_improve_yield(placements, base, jobs, CLUSTER, {0: 1.0, 1: 2.0})
        assert improved[0] >= base[0]
        assert improved[1] >= base[1]

    def test_leftover_goes_to_heavier_weight_first(self):
        # Node 0 has 0.4 spare CPU; both jobs could take it, the heavier one wins.
        jobs = {0: _view(0, cpu=0.6), 1: _view(1, cpu=0.6)}
        placements = {0: (0,), 1: (0,)}
        base = {0: 0.5, 1: 0.5}
        improved = weighted_improve_yield(placements, base, jobs, CLUSTER, {0: 1.0, 1: 5.0})
        assert improved[1] > improved[0]

    def test_matches_unweighted_heuristic_shape_with_uniform_weights(self):
        jobs = {0: _view(0, cpu=0.5), 1: _view(1, cpu=0.3)}
        placements = {0: (0,), 1: (1,)}
        base = fair_yields(placements, jobs, CLUSTER)
        weighted = weighted_improve_yield(
            placements, base, jobs, CLUSTER, {0: 1.0, 1: 1.0}
        )
        plain = improve_average_yield(placements, base, jobs, CLUSTER)
        assert weighted == pytest.approx(plain)

    def test_capacity_never_violated(self):
        jobs = {i: _view(i, cpu=0.9) for i in range(3)}
        placements = {0: (0,), 1: (0,), 2: (1,)}
        base = {0: 0.3, 1: 0.3, 2: 0.5}
        improved = weighted_improve_yield(
            placements, base, jobs, CLUSTER, {0: 1.0, 1: 2.0, 2: 3.0}
        )
        allocated = [0.0] * CLUSTER.num_nodes
        for job_id, nodes in placements.items():
            for node in nodes:
                allocated[node] += jobs[job_id].cpu_need * improved[job_id]
        assert all(total <= 1.0 + 1e-6 for total in allocated)


class TestWeightedYieldScheduler:
    def _specs(self):
        return [
            JobSpec(0, 0.0, 4, 1.0, 0.2, 400.0),
            JobSpec(1, 10.0, 1, 1.0, 0.2, 100.0),
            JobSpec(2, 20.0, 1, 1.0, 0.2, 100.0),
            JobSpec(3, 30.0, 2, 1.0, 0.2, 200.0),
        ]

    def test_registry_construction(self):
        scheduler = create_scheduler("dynmcb8-asap-weighted-per-600")
        assert isinstance(scheduler, WeightedYieldScheduler)
        assert scheduler.period == 600.0
        assert "weighted" in scheduler.name

    def test_rejects_non_callable_weight_function(self):
        with pytest.raises(ConfigurationError):
            WeightedYieldScheduler(weight_function="not-callable")

    def test_simulation_completes_all_jobs(self):
        cluster = Cluster(num_nodes=2, cores_per_node=4, node_memory_gb=8.0)
        result = Simulator(
            cluster, create_scheduler("dynmcb8-asap-weighted-per-600"), SimulationConfig()
        ).run(self._specs())
        assert result.num_jobs == 4

    def test_uniform_weights_match_plain_asap_per(self):
        cluster = Cluster(num_nodes=2, cores_per_node=4, node_memory_gb=8.0)
        weighted = Simulator(
            cluster,
            WeightedYieldScheduler(600.0, weight_function=uniform_weight),
            SimulationConfig(),
        ).run(self._specs())
        plain = Simulator(
            cluster, create_scheduler("dynmcb8-asap-per-600"), SimulationConfig()
        ).run(self._specs())
        assert weighted.max_stretch == pytest.approx(plain.max_stretch, rel=0.05)

    def test_small_job_favoured_by_inverse_size_weights(self):
        # Under contention the 1-task jobs should fare no worse (in stretch)
        # with inverse-size weighting than with plain fair sharing.
        cluster = Cluster(num_nodes=2, cores_per_node=4, node_memory_gb=8.0)
        weighted = Simulator(
            cluster,
            WeightedYieldScheduler(600.0, weight_function=inverse_size_weight),
            SimulationConfig(),
        ).run(self._specs())
        plain = Simulator(
            cluster, create_scheduler("dynmcb8-asap-per-600"), SimulationConfig()
        ).run(self._specs())
        small_weighted = max(
            weighted.record_for(1).stretch, weighted.record_for(2).stretch
        )
        small_plain = max(plain.record_for(1).stretch, plain.record_for(2).stretch)
        assert small_weighted <= small_plain + 1e-6
