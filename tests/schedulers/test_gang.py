"""Unit tests for the idealised gang scheduling baseline."""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.job import JobState
from repro.exceptions import ConfigurationError
from repro.experiments.runner import run_algorithm
from repro.schedulers.batch.gang import GangScheduler
from repro.schedulers.registry import create_scheduler
from repro.workloads.lublin import LublinWorkloadGenerator

from .conftest import context, view


class TestGangScheduler:
    def test_invalid_rows(self):
        with pytest.raises(ConfigurationError):
            GangScheduler(max_rows=0)

    def test_registry_names(self):
        assert isinstance(create_scheduler("gang"), GangScheduler)
        assert create_scheduler("gang-3").max_rows == 3

    def test_single_job_runs_at_full_speed(self):
        scheduler = GangScheduler()
        cluster = Cluster(4)
        scheduler.start(cluster, 0.0)
        decision = scheduler.schedule(
            context([view(0, tasks=2, cpu=1.0, mem=0.2)], cluster=cluster)
        )
        assert decision.running[0].yield_value == pytest.approx(1.0)
        assert len(set(decision.running[0].nodes)) == 2

    def test_two_gangs_share_time_slices(self):
        scheduler = GangScheduler()
        cluster = Cluster(2)
        scheduler.start(cluster, 0.0)
        decision = scheduler.schedule(
            context(
                [view(0, tasks=2, cpu=1.0, mem=0.2), view(1, tasks=2, cpu=1.0, mem=0.2)],
                cluster=cluster,
            )
        )
        assert decision.running[0].yield_value == pytest.approx(0.5)
        assert decision.running[1].yield_value == pytest.approx(0.5)

    def test_sequential_task_not_penalised_by_sharing(self):
        """A 25%-need task still gets its full need out of a 50% time slice."""
        scheduler = GangScheduler()
        cluster = Cluster(1)
        scheduler.start(cluster, 0.0)
        decision = scheduler.schedule(
            context(
                [view(0, tasks=1, cpu=0.25, mem=0.2), view(1, tasks=1, cpu=0.25, mem=0.2)],
                cluster=cluster,
            )
        )
        assert decision.running[0].yield_value == pytest.approx(1.0)
        assert decision.running[1].yield_value == pytest.approx(1.0)

    def test_multiprogramming_level_bounds_admission(self):
        scheduler = GangScheduler(max_rows=1)
        cluster = Cluster(2)
        scheduler.start(cluster, 0.0)
        decision = scheduler.schedule(
            context(
                [view(0, tasks=2, cpu=1.0, mem=0.1), view(1, tasks=1, cpu=1.0, mem=0.1)],
                cluster=cluster,
            )
        )
        # With a multiprogramming level of 1, gang degenerates to batch.
        assert 0 in decision.running
        assert 1 not in decision.running

    def test_memory_constraint_blocks_corescheduling(self):
        scheduler = GangScheduler()
        cluster = Cluster(1)
        scheduler.start(cluster, 0.0)
        running = view(0, tasks=1, cpu=1.0, mem=0.8, state=JobState.RUNNING,
                       assignment=(0,), current_yield=1.0)
        decision = scheduler.schedule(
            context([running, view(1, tasks=1, cpu=1.0, mem=0.5)], cluster=cluster)
        )
        assert 1 not in decision.running

    def test_end_to_end_on_synthetic_workload(self):
        cluster = Cluster(8)
        workload = LublinWorkloadGenerator(cluster).generate(20, seed=3)
        result = run_algorithm(workload, "gang", penalty_seconds=0.0)
        assert result.num_jobs == workload.num_jobs
        assert result.costs.preemption_count == 0
        assert (result.stretches() >= 1.0 - 1e-9).all()
