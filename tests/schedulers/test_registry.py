"""Tests for the scheduler registry."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.schedulers.registry import (
    BATCH_ALGORITHMS,
    DFRS_ALGORITHMS,
    PAPER_ALGORITHMS,
    available_algorithms,
    create_scheduler,
)
from repro.schedulers.batch.easy import EasyBackfillingScheduler
from repro.schedulers.batch.fcfs import FcfsScheduler
from repro.schedulers.dfrs.periodic import (
    DynMcb8AsapPeriodicScheduler,
    DynMcb8PeriodicScheduler,
)
from repro.schedulers.dfrs.stretch_per import DynMcb8StretchPeriodicScheduler


class TestRegistry:
    def test_all_paper_algorithms_instantiate(self):
        for name in PAPER_ALGORITHMS:
            scheduler = create_scheduler(name)
            assert scheduler is not None

    def test_paper_algorithm_list_is_complete(self):
        assert len(PAPER_ALGORITHMS) == 9
        assert set(BATCH_ALGORITHMS) == {"fcfs", "easy"}
        assert len(DFRS_ALGORITHMS) == 7

    def test_simple_names(self):
        assert isinstance(create_scheduler("fcfs"), FcfsScheduler)
        assert isinstance(create_scheduler("easy"), EasyBackfillingScheduler)
        assert isinstance(create_scheduler("EASY"), EasyBackfillingScheduler)

    def test_periodic_default_period(self):
        scheduler = create_scheduler("dynmcb8-per")
        assert isinstance(scheduler, DynMcb8PeriodicScheduler)
        assert scheduler.period == pytest.approx(600.0)

    def test_periodic_custom_period(self):
        scheduler = create_scheduler("dynmcb8-asap-per-60")
        assert isinstance(scheduler, DynMcb8AsapPeriodicScheduler)
        assert scheduler.period == pytest.approx(60.0)
        scheduler = create_scheduler("dynmcb8-stretch-per-3600")
        assert isinstance(scheduler, DynMcb8StretchPeriodicScheduler)
        assert scheduler.period == pytest.approx(3600.0)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            create_scheduler("slurm")

    def test_available_algorithms_cover_paper(self):
        known = available_algorithms()
        assert "fcfs" in known
        assert "dynmcb8-stretch-per" in known

    def test_clairvoyance_flags(self):
        assert create_scheduler("easy").requires_runtime_estimates
        assert not create_scheduler("fcfs").requires_runtime_estimates
        for name in DFRS_ALGORITHMS:
            assert not create_scheduler(name).requires_runtime_estimates

    def test_exclusive_node_flags(self):
        for name in BATCH_ALGORITHMS:
            assert create_scheduler(name).exclusive_node_allocation
        for name in DFRS_ALGORITHMS:
            assert not create_scheduler(name).exclusive_node_allocation

    def test_new_instances_are_independent(self):
        first = create_scheduler("greedy")
        second = create_scheduler("greedy")
        assert first is not second
