"""Unit tests for the FCFS and EASY batch schedulers."""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.job import JobState
from repro.exceptions import SchedulingError
from repro.schedulers.batch.easy import EasyBackfillingScheduler
from repro.schedulers.batch.fcfs import FcfsScheduler

from .conftest import context, view


def started_ids(decision):
    return set(decision.running)


class TestFcfs:
    def test_starts_jobs_in_order_while_nodes_free(self):
        scheduler = FcfsScheduler()
        cluster = Cluster(4)
        scheduler.start(cluster, 0.0)
        ctx = context(
            [view(0, tasks=2), view(1, tasks=2), view(2, tasks=1)], cluster=cluster
        )
        decision = scheduler.schedule(ctx)
        # Jobs 0 and 1 fill the cluster; job 2 must wait (strict FCFS).
        assert started_ids(decision) == {0, 1}
        assert decision.running[0].yield_value == pytest.approx(1.0)

    def test_head_blocks_queue(self):
        scheduler = FcfsScheduler()
        cluster = Cluster(4)
        scheduler.start(cluster, 0.0)
        ctx = context(
            [
                view(0, tasks=3, state=JobState.RUNNING, assignment=(0, 1, 2), current_yield=1.0),
                view(1, tasks=2, submit=1.0),
                view(2, tasks=1, submit=2.0),
            ],
            cluster=cluster,
        )
        decision = scheduler.schedule(ctx)
        # Only one node is free: the head (job 1) does not fit, and FCFS does
        # not let job 2 overtake it.
        assert started_ids(decision) == {0}

    def test_exclusive_nodes_one_per_task(self):
        scheduler = FcfsScheduler()
        cluster = Cluster(4)
        scheduler.start(cluster, 0.0)
        ctx = context([view(0, tasks=3)], cluster=cluster)
        decision = scheduler.schedule(ctx)
        assert len(set(decision.running[0].nodes)) == 3

    def test_running_jobs_untouched(self):
        scheduler = FcfsScheduler()
        cluster = Cluster(4)
        scheduler.start(cluster, 0.0)
        running = view(
            0, tasks=2, state=JobState.RUNNING, assignment=(1, 3), current_yield=1.0
        )
        ctx = context([running, view(1, tasks=2, submit=5.0)], cluster=cluster)
        decision = scheduler.schedule(ctx)
        assert decision.running[0].nodes == (1, 3)
        assert set(decision.running[1].nodes) == {0, 2}


class TestEasy:
    def test_requires_estimates(self):
        scheduler = EasyBackfillingScheduler()
        cluster = Cluster(4)
        scheduler.start(cluster, 0.0)
        ctx = context(
            [
                view(0, tasks=4, state=JobState.RUNNING, assignment=(0, 1, 2, 3),
                     current_yield=1.0, remaining_estimate=None),
                view(1, tasks=2, runtime_estimate=None),
            ],
            cluster=cluster,
        )
        with pytest.raises(SchedulingError):
            scheduler.schedule(ctx)

    def test_backfills_short_job_behind_blocked_head(self):
        scheduler = EasyBackfillingScheduler()
        cluster = Cluster(4)
        scheduler.start(cluster, 0.0)
        ctx = context(
            [
                # Two nodes busy for another 1000 s.
                view(0, tasks=2, state=JobState.RUNNING, assignment=(0, 1),
                     current_yield=1.0, runtime_estimate=2000.0,
                     remaining_estimate=1000.0),
                # Head of the queue needs the full cluster: blocked until 1000.
                view(1, tasks=4, submit=10.0, runtime_estimate=500.0),
                # Short narrow job fits now and ends before the reservation.
                view(2, tasks=2, submit=20.0, runtime_estimate=100.0),
            ],
            cluster=cluster,
            time=100.0,
        )
        decision = scheduler.schedule(ctx)
        assert 2 in decision.running
        assert 1 not in decision.running

    def test_does_not_backfill_job_that_would_delay_reservation(self):
        scheduler = EasyBackfillingScheduler()
        cluster = Cluster(4)
        scheduler.start(cluster, 0.0)
        ctx = context(
            [
                view(0, tasks=2, state=JobState.RUNNING, assignment=(0, 1),
                     current_yield=1.0, runtime_estimate=2000.0,
                     remaining_estimate=1000.0),
                view(1, tasks=4, submit=10.0, runtime_estimate=500.0),
                # This job fits now but runs past the reservation and would
                # use nodes the head needs (no extra nodes exist).
                view(2, tasks=2, submit=20.0, runtime_estimate=5000.0),
            ],
            cluster=cluster,
            time=100.0,
        )
        decision = scheduler.schedule(ctx)
        assert 2 not in decision.running

    def test_backfills_on_extra_nodes_even_if_long(self):
        scheduler = EasyBackfillingScheduler()
        cluster = Cluster(4)
        scheduler.start(cluster, 0.0)
        ctx = context(
            [
                view(0, tasks=2, state=JobState.RUNNING, assignment=(0, 1),
                     current_yield=1.0, runtime_estimate=2000.0,
                     remaining_estimate=1000.0),
                # Head needs 3 nodes at the shadow time, leaving 1 extra node.
                view(1, tasks=3, submit=10.0, runtime_estimate=500.0),
                # A 1-node job can run arbitrarily long on the extra node.
                view(2, tasks=1, submit=20.0, runtime_estimate=50000.0),
            ],
            cluster=cluster,
            time=100.0,
        )
        decision = scheduler.schedule(ctx)
        assert 2 in decision.running

    def test_plain_start_when_everything_fits(self):
        scheduler = EasyBackfillingScheduler()
        cluster = Cluster(8)
        scheduler.start(cluster, 0.0)
        ctx = context(
            [view(0, tasks=2, runtime_estimate=100.0), view(1, tasks=3, runtime_estimate=100.0)],
            cluster=cluster,
        )
        decision = scheduler.schedule(ctx)
        assert started_ids(decision) == {0, 1}
