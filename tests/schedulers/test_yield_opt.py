"""Tests for the fair-yield rule and the average-yield improvement heuristic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cluster import Cluster
from repro.core.job import MINIMUM_YIELD
from repro.schedulers.dfrs.yield_opt import (
    build_allocations,
    fair_yields,
    improve_average_yield,
)

from .conftest import view


class TestFairYields:
    def test_empty(self):
        cluster = Cluster(4)
        assert fair_yields({}, {}, cluster) == {}

    def test_underloaded_gives_full_yield(self):
        cluster = Cluster(4)
        jobs = {0: view(0, cpu=0.5), 1: view(1, cpu=0.25)}
        placements = {0: (0,), 1: (1,)}
        yields = fair_yields(placements, jobs, cluster)
        assert yields == {0: 1.0, 1: 1.0}

    def test_overloaded_node_shares_equally(self):
        cluster = Cluster(4)
        jobs = {0: view(0, cpu=1.0), 1: view(1, cpu=1.0)}
        placements = {0: (0,), 1: (0,)}
        yields = fair_yields(placements, jobs, cluster)
        assert yields[0] == pytest.approx(0.5)
        assert yields[1] == pytest.approx(0.5)

    def test_max_load_drives_everybody(self):
        """The paper's rule gives all jobs the same yield 1/max(1, Λ)."""
        cluster = Cluster(4)
        jobs = {0: view(0, cpu=1.0), 1: view(1, cpu=1.0), 2: view(2, cpu=0.1)}
        placements = {0: (0,), 1: (0,), 2: (1,)}
        yields = fair_yields(placements, jobs, cluster)
        assert yields[2] == pytest.approx(0.5)


class TestImproveAverageYield:
    def test_lightly_loaded_job_is_raised_to_one(self):
        cluster = Cluster(4)
        jobs = {0: view(0, cpu=1.0), 1: view(1, cpu=1.0), 2: view(2, cpu=0.4)}
        placements = {0: (0,), 1: (0,), 2: (1,)}
        yields = fair_yields(placements, jobs, cluster)
        improved = improve_average_yield(placements, yields, jobs, cluster)
        # Job 2 is alone on node 1 and can run at full speed.
        assert improved[2] == pytest.approx(1.0)
        # Jobs on the saturated node cannot be raised.
        assert improved[0] == pytest.approx(0.5)
        assert improved[1] == pytest.approx(0.5)

    def test_never_decreases_yields(self):
        cluster = Cluster(4)
        jobs = {i: view(i, cpu=0.5) for i in range(4)}
        placements = {0: (0,), 1: (0,), 2: (1,), 3: (1,)}
        yields = fair_yields(placements, jobs, cluster)
        improved = improve_average_yield(placements, yields, jobs, cluster)
        for job_id in yields:
            assert improved[job_id] >= yields[job_id] - 1e-12

    def test_partial_improvement_respects_capacity(self):
        cluster = Cluster(2)
        jobs = {0: view(0, cpu=1.0), 1: view(1, cpu=1.0), 2: view(2, cpu=1.0)}
        # Node 0 hosts jobs 0 and 1; node 1 hosts jobs 1 (second task) -- not
        # possible since job 1 has one task; instead: job 2 alone on node 1.
        placements = {0: (0,), 1: (0,), 2: (1,)}
        yields = {0: 0.5, 1: 0.5, 2: 0.5}
        improved = improve_average_yield(placements, yields, jobs, cluster)
        assert improved[2] == pytest.approx(1.0)
        node0_alloc = improved[0] + improved[1]
        assert node0_alloc <= 1.0 + 1e-6

    def test_smallest_total_need_first(self):
        """The job with the lowest total CPU need gets leftover CPU first."""
        cluster = Cluster(1)
        jobs = {0: view(0, cpu=0.7), 1: view(1, cpu=0.4)}
        placements = {0: (0,), 1: (0,)}
        yields = {0: 0.5, 1: 0.5}
        improved = improve_average_yield(placements, yields, jobs, cluster)
        # Job 1 (smallest total need, 0.4) is raised to 1.0 first; job 0 then
        # takes what is left of the node: 1 - 0.4 = 0.6 of CPU for a 0.7 need.
        assert improved[1] == pytest.approx(1.0)
        assert improved[0] == pytest.approx(0.6 / 0.7)

    @given(
        num_jobs=st.integers(min_value=1, max_value=6),
        cpu=st.floats(min_value=0.1, max_value=1.0),
        base_yield=st.floats(min_value=MINIMUM_YIELD, max_value=0.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_capacity_invariant_property(self, num_jobs, cpu, base_yield):
        cluster = Cluster(2)
        jobs = {i: view(i, cpu=cpu) for i in range(num_jobs)}
        placements = {i: (i % 2,) for i in range(num_jobs)}
        yields = {i: min(base_yield, 1.0 / max(1.0, num_jobs * cpu)) for i in range(num_jobs)}
        improved = improve_average_yield(placements, yields, jobs, cluster)
        per_node = {0: 0.0, 1: 0.0}
        for job_id, nodes in placements.items():
            per_node[nodes[0]] += improved[job_id] * cpu
        assert per_node[0] <= 1.0 + 1e-6
        assert per_node[1] <= 1.0 + 1e-6
        for job_id in jobs:
            assert improved[job_id] <= 1.0 + 1e-9


class TestBuildAllocations:
    def test_round_trip(self):
        placements = {0: (0, 1), 1: (2,)}
        yields = {0: 0.4, 1: 1.0}
        allocations = build_allocations(placements, yields)
        assert allocations[0].nodes == (0, 1)
        assert allocations[0].yield_value == pytest.approx(0.4)
        assert allocations[1].yield_value == pytest.approx(1.0)
