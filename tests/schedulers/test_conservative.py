"""Tests for the conservative backfilling batch scheduler."""

from __future__ import annotations

import pytest

from repro.core import Cluster, JobSpec, SimulationConfig, Simulator
from repro.schedulers import ConservativeBackfillingScheduler, create_scheduler
from repro.schedulers.batch.conservative import _AvailabilityProfile


def _spec(job_id, submit, tasks, runtime, cpu=1.0, mem=0.2):
    return JobSpec(job_id, submit, tasks, cpu, mem, runtime)


def _run(specs, nodes=4, algorithm="conservative"):
    cluster = Cluster(num_nodes=nodes, cores_per_node=4, node_memory_gb=8.0)
    return Simulator(cluster, create_scheduler(algorithm), SimulationConfig()).run(specs)


class TestAvailabilityProfile:
    def test_initially_constant(self):
        profile = _AvailabilityProfile(0.0, 4)
        assert profile.earliest_start(4, 100.0) == 0.0

    def test_release_increases_future_capacity(self):
        profile = _AvailabilityProfile(0.0, 0)
        profile.add_release(50.0, 4)
        assert profile.earliest_start(4, 10.0) == 50.0

    def test_reserve_blocks_window(self):
        profile = _AvailabilityProfile(0.0, 4)
        profile.reserve(0.0, 4, 100.0)
        assert profile.earliest_start(1, 10.0) == pytest.approx(100.0)

    def test_small_job_fits_before_release(self):
        profile = _AvailabilityProfile(0.0, 2)
        profile.add_release(100.0, 2)
        assert profile.earliest_start(2, 10.0) == 0.0
        assert profile.earliest_start(4, 10.0) == 100.0

    def test_reservation_after_release(self):
        profile = _AvailabilityProfile(0.0, 0)
        profile.add_release(30.0, 2)
        start = profile.earliest_start(2, 20.0)
        profile.reserve(start, 2, 20.0)
        # The next identical request must queue behind the first reservation.
        assert profile.earliest_start(2, 20.0) == pytest.approx(50.0)


class TestConservativeScheduler:
    def test_registry_name(self):
        scheduler = create_scheduler("conservative")
        assert isinstance(scheduler, ConservativeBackfillingScheduler)
        assert scheduler.requires_runtime_estimates
        assert scheduler.exclusive_node_allocation

    def test_single_job_runs_at_full_speed(self):
        result = _run([_spec(0, 0.0, 2, 100.0)])
        record = result.record_for(0)
        assert record.completion_time == pytest.approx(100.0)
        assert record.stretch == pytest.approx(1.0)

    def test_jobs_run_in_order_when_cluster_full(self):
        specs = [
            _spec(0, 0.0, 4, 100.0),
            _spec(1, 1.0, 4, 100.0),
        ]
        result = _run(specs)
        assert result.record_for(0).completion_time == pytest.approx(100.0)
        assert result.record_for(1).completion_time == pytest.approx(200.0)

    def test_backfills_small_job_into_gap(self):
        # Wide job 1 must wait for job 0; the narrow, short job 2 fits in the
        # gap and must not be delayed until after job 1.
        specs = [
            _spec(0, 0.0, 3, 100.0),
            _spec(1, 1.0, 4, 100.0),
            _spec(2, 2.0, 1, 50.0),
        ]
        result = _run(specs)
        assert result.record_for(2).completion_time <= 60.0

    def test_never_delays_earlier_reservation(self):
        # Job 1 (wide) reserves [100, 200); job 2 is short but would delay
        # job 1 if it started on the idle node at t=2 with a runtime of 200.
        specs = [
            _spec(0, 0.0, 3, 100.0),
            _spec(1, 1.0, 4, 100.0),
            _spec(2, 2.0, 1, 200.0),
        ]
        result = _run(specs)
        assert result.record_for(1).completion_time == pytest.approx(200.0)

    def test_batch_semantics_no_preemptions(self):
        specs = [_spec(i, i * 5.0, 2, 60.0) for i in range(6)]
        result = _run(specs)
        assert result.costs.preemption_count == 0
        assert result.costs.migration_count == 0

    def test_all_jobs_complete(self):
        specs = [_spec(i, i * 2.0, 1 + i % 4, 30.0 + i) for i in range(12)]
        result = _run(specs, nodes=4)
        assert result.num_jobs == 12

    def test_conservative_never_beats_easy_by_definition_of_backfilling(self):
        # EASY backfills more aggressively, so its mean turnaround is usually
        # lower or equal; both must produce valid schedules for this workload.
        specs = [
            _spec(0, 0.0, 4, 120.0),
            _spec(1, 1.0, 6, 100.0),
            _spec(2, 2.0, 1, 30.0),
            _spec(3, 3.0, 2, 60.0),
            _spec(4, 4.0, 1, 20.0),
        ]
        conservative = _run(specs, nodes=6, algorithm="conservative")
        easy = _run(specs, nodes=6, algorithm="easy")
        assert conservative.num_jobs == easy.num_jobs == 5
        # Sanity bound rather than strict dominance (tie-breaking differs).
        assert easy.max_stretch <= conservative.max_stretch * 1.5 + 1.0

    def test_wide_job_not_starved(self):
        # A stream of small jobs must not push the wide job's start forever.
        specs = [_spec(0, 0.0, 4, 50.0), _spec(1, 1.0, 4, 80.0)]
        specs += [_spec(2 + i, 2.0 + i, 1, 30.0) for i in range(6)]
        result = _run(specs, nodes=4)
        assert result.record_for(1).completion_time <= 50.0 + 80.0 + 1e-6
