"""Tests for the long-job throttling extension (paper future work)."""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.job import JobState, MINIMUM_YIELD
from repro.exceptions import ConfigurationError
from repro.experiments.runner import run_algorithm
from repro.schedulers.dfrs.fairness import LongJobThrottlingScheduler
from repro.schedulers.registry import create_scheduler
from repro.workloads.lublin import LublinWorkloadGenerator
from repro.workloads.scaling import scale_to_load

from .conftest import context, view


class TestLongJobThrottling:
    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            LongJobThrottlingScheduler(long_job_virtual_time=0.0)
        with pytest.raises(ConfigurationError):
            LongJobThrottlingScheduler(long_job_yield_cap=0.0)
        with pytest.raises(ConfigurationError):
            LongJobThrottlingScheduler(long_job_yield_cap=1.5)

    def test_registry_and_name(self):
        scheduler = create_scheduler("dynmcb8-asap-throttled-per-600")
        assert isinstance(scheduler, LongJobThrottlingScheduler)
        assert scheduler.name == "dynmcb8-asap-throttled-per-600"

    def test_long_job_capped_short_job_boosted(self):
        scheduler = LongJobThrottlingScheduler(
            600, long_job_virtual_time=3600.0, long_job_yield_cap=0.4
        )
        cluster = Cluster(2)
        scheduler.start(cluster, 0.0)
        ctx = context(
            [
                # Long runner: two days of virtual time.
                view(0, cpu=1.0, mem=0.2, vt=2 * 86400.0, flow=3 * 86400.0,
                     state=JobState.RUNNING, assignment=(0,), current_yield=1.0),
                # Fresh short job.
                view(1, cpu=1.0, mem=0.2, vt=0.0, flow=0.0),
            ],
            cluster=cluster,
            time=3 * 86400.0,
        )
        decision = scheduler.schedule(ctx)
        assert decision.running[0].yield_value <= 0.4 + 1e-9
        assert decision.running[1].yield_value == pytest.approx(1.0)

    def test_short_jobs_unaffected_below_threshold(self):
        scheduler = LongJobThrottlingScheduler(600, long_job_virtual_time=1e9)
        cluster = Cluster(4)
        scheduler.start(cluster, 0.0)
        ctx = context(
            [view(i, cpu=0.5, mem=0.1, vt=100.0, flow=200.0) for i in range(3)],
            cluster=cluster,
        )
        decision = scheduler.schedule(ctx)
        for alloc in decision.running.values():
            assert alloc.yield_value == pytest.approx(1.0)

    def test_capped_yield_never_below_minimum(self):
        scheduler = LongJobThrottlingScheduler(
            600, long_job_virtual_time=1.0, long_job_yield_cap=MINIMUM_YIELD
        )
        cluster = Cluster(1)
        scheduler.start(cluster, 0.0)
        ctx = context(
            [view(0, cpu=1.0, mem=0.2, vt=100.0, flow=200.0,
                  state=JobState.RUNNING, assignment=(0,), current_yield=1.0)],
            cluster=cluster,
            time=200.0,
        )
        decision = scheduler.schedule(ctx)
        assert decision.running[0].yield_value >= MINIMUM_YIELD

    def test_end_to_end_all_jobs_complete(self):
        cluster = Cluster(8)
        workload = scale_to_load(
            LublinWorkloadGenerator(cluster).generate(25, seed=17), 0.8
        )
        result = run_algorithm(
            workload, "dynmcb8-asap-throttled-per-600", penalty_seconds=300.0
        )
        assert result.num_jobs == workload.num_jobs
        assert (result.stretches() >= 1.0 - 1e-9).all()
