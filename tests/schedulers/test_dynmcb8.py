"""Unit tests for the DYNMCB8 family of schedulers."""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.job import JobState, MINIMUM_YIELD
from repro.schedulers.dfrs.dynmcb8 import DynMcb8Scheduler
from repro.schedulers.dfrs.periodic import (
    DynMcb8AsapPeriodicScheduler,
    DynMcb8PeriodicScheduler,
)
from repro.schedulers.dfrs.stretch_per import DynMcb8StretchPeriodicScheduler
from repro.exceptions import ConfigurationError

from .conftest import context, view


class TestDynMcb8:
    def test_packs_all_jobs_when_feasible(self):
        scheduler = DynMcb8Scheduler()
        cluster = Cluster(4)
        scheduler.start(cluster, 0.0)
        ctx = context(
            [view(i, cpu=0.5, mem=0.2) for i in range(4)], cluster=cluster
        )
        decision = scheduler.schedule(ctx)
        assert set(decision.running) == {0, 1, 2, 3}
        for alloc in decision.running.values():
            assert MINIMUM_YIELD <= alloc.yield_value <= 1.0

    def test_average_yield_heuristic_fills_spare_capacity(self):
        scheduler = DynMcb8Scheduler()
        cluster = Cluster(4)
        scheduler.start(cluster, 0.0)
        ctx = context([view(0, cpu=0.25, mem=0.1)], cluster=cluster)
        decision = scheduler.schedule(ctx)
        assert decision.running[0].yield_value == pytest.approx(1.0)

    def test_evicts_lowest_priority_job_when_memory_infeasible(self):
        scheduler = DynMcb8Scheduler()
        cluster = Cluster(1)
        scheduler.start(cluster, 0.0)
        ctx = context(
            [
                view(0, cpu=0.5, mem=0.8, vt=1000.0, flow=2000.0,
                     state=JobState.RUNNING, assignment=(0,), current_yield=1.0),
                view(1, cpu=0.5, mem=0.8, vt=0.0, flow=0.0),
            ],
            cluster=cluster,
        )
        decision = scheduler.schedule(ctx)
        # Only one of the two memory-hungry jobs fits; the never-run job has
        # infinite priority and must be the one that is kept.
        assert set(decision.running) == {1}

    def test_repacks_everything_including_paused_jobs(self):
        scheduler = DynMcb8Scheduler()
        cluster = Cluster(4)
        scheduler.start(cluster, 0.0)
        ctx = context(
            [
                view(0, cpu=1.0, mem=0.2, state=JobState.PAUSED, vt=5.0, flow=100.0),
                view(1, cpu=1.0, mem=0.2, state=JobState.RUNNING, assignment=(3,),
                     current_yield=0.5, vt=50.0, flow=100.0),
            ],
            cluster=cluster,
        )
        decision = scheduler.schedule(ctx)
        assert set(decision.running) == {0, 1}


class TestPeriodicVariants:
    def test_invalid_period_rejected(self):
        with pytest.raises(ConfigurationError):
            DynMcb8PeriodicScheduler(period=0.0)

    def test_name_contains_period(self):
        assert DynMcb8PeriodicScheduler(600).name == "dynmcb8-per-600"
        assert DynMcb8AsapPeriodicScheduler(60).name == "dynmcb8-asap-per-60"
        assert DynMcb8StretchPeriodicScheduler(3600).name == "dynmcb8-stretch-per-3600"

    def test_first_event_triggers_packing_and_arms_tick(self):
        scheduler = DynMcb8PeriodicScheduler(600)
        cluster = Cluster(4)
        scheduler.start(cluster, 0.0)
        ctx = context([view(0, cpu=0.5, mem=0.2)], cluster=cluster, time=100.0)
        decision = scheduler.schedule(ctx)
        assert 0 in decision.running
        assert decision.wakeups == [pytest.approx(700.0)]

    def test_submissions_between_ticks_wait(self):
        scheduler = DynMcb8PeriodicScheduler(600)
        cluster = Cluster(4)
        scheduler.start(cluster, 0.0)
        first = context([view(0, cpu=0.5, mem=0.2)], cluster=cluster, time=0.0)
        scheduler.schedule(first)
        # A new job arrives before the next tick: it is left waiting and the
        # running job keeps its allocation untouched.
        running = view(0, cpu=0.5, mem=0.2, state=JobState.RUNNING,
                       assignment=(0,), current_yield=0.8)
        later = context([running, view(1, cpu=0.5, mem=0.2, submit=100.0)],
                        cluster=cluster, time=100.0)
        decision = scheduler.schedule(later)
        assert set(decision.running) == {0}
        assert decision.running[0].yield_value == pytest.approx(0.8)
        assert decision.wakeups == []

    def test_tick_event_repacks_queue(self):
        scheduler = DynMcb8PeriodicScheduler(600)
        cluster = Cluster(4)
        scheduler.start(cluster, 0.0)
        scheduler.schedule(context([view(0, cpu=0.5, mem=0.2)], cluster=cluster, time=0.0))
        running = view(0, cpu=0.5, mem=0.2, state=JobState.RUNNING,
                       assignment=(0,), current_yield=1.0, vt=600.0, flow=600.0)
        tick = context(
            [running, view(1, cpu=0.5, mem=0.2, flow=500.0)],
            cluster=cluster, time=600.0, is_wakeup=True,
        )
        decision = scheduler.schedule(tick)
        assert set(decision.running) == {0, 1}
        assert decision.wakeups == [pytest.approx(1200.0)]

    def test_asap_admits_new_jobs_immediately(self):
        scheduler = DynMcb8AsapPeriodicScheduler(600)
        cluster = Cluster(4)
        scheduler.start(cluster, 0.0)
        scheduler.schedule(context([view(0, cpu=0.5, mem=0.2)], cluster=cluster, time=0.0))
        running = view(0, cpu=0.5, mem=0.2, state=JobState.RUNNING,
                       assignment=(0,), current_yield=1.0)
        later = context([running, view(1, cpu=0.5, mem=0.2, submit=100.0)],
                        cluster=cluster, time=100.0)
        decision = scheduler.schedule(later)
        assert set(decision.running) == {0, 1}

    def test_asap_leaves_memory_blocked_jobs_waiting(self):
        scheduler = DynMcb8AsapPeriodicScheduler(600)
        cluster = Cluster(1)
        scheduler.start(cluster, 0.0)
        scheduler.schedule(context([view(0, cpu=0.5, mem=0.9)], cluster=cluster, time=0.0))
        running = view(0, cpu=0.5, mem=0.9, state=JobState.RUNNING,
                       assignment=(0,), current_yield=1.0)
        later = context([running, view(1, cpu=0.5, mem=0.5, submit=100.0)],
                        cluster=cluster, time=100.0)
        decision = scheduler.schedule(later)
        assert set(decision.running) == {0}


class TestStretchPeriodic:
    def test_assigns_higher_yield_to_lagging_jobs(self):
        scheduler = DynMcb8StretchPeriodicScheduler(600)
        cluster = Cluster(1)
        scheduler.start(cluster, 0.0)
        ctx = context(
            [
                # Far behind: almost no virtual time despite a long flow time.
                view(0, cpu=1.0, mem=0.3, vt=30.0, flow=3000.0,
                     state=JobState.RUNNING, assignment=(0,), current_yield=0.5),
                # Comfortably ahead.
                view(1, cpu=1.0, mem=0.3, vt=2900.0, flow=3000.0,
                     state=JobState.RUNNING, assignment=(0,), current_yield=0.5),
            ],
            cluster=cluster,
            time=3000.0,
            is_wakeup=True,
        )
        decision = scheduler.schedule(ctx)
        assert set(decision.running) == {0, 1}
        assert (
            decision.running[0].yield_value > decision.running[1].yield_value
        )

    def test_respects_cpu_capacity(self):
        scheduler = DynMcb8StretchPeriodicScheduler(600)
        cluster = Cluster(1)
        scheduler.start(cluster, 0.0)
        ctx = context(
            [view(i, cpu=1.0, mem=0.2, flow=100.0, vt=10.0) for i in range(3)],
            cluster=cluster,
            time=100.0,
        )
        decision = scheduler.schedule(ctx)
        total = sum(a.yield_value for a in decision.running.values())
        assert total <= 1.0 + 0.05
