"""Unit tests for GREEDY, GREEDY-PMTN, and GREEDY-PMTN-MIGR."""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.job import JobState
from repro.schedulers.dfrs.greedy import MAX_BACKOFF_SECONDS, GreedyScheduler
from repro.schedulers.dfrs.greedy_pmtn import (
    GreedyPmtnMigrScheduler,
    GreedyPmtnScheduler,
)

from .conftest import context, view


class TestGreedy:
    def test_places_and_shares_cpu(self):
        scheduler = GreedyScheduler()
        cluster = Cluster(2)
        scheduler.start(cluster, 0.0)
        ctx = context(
            [view(0, cpu=1.0, mem=0.2), view(1, cpu=1.0, mem=0.2), view(2, cpu=1.0, mem=0.2)],
            cluster=cluster,
        )
        decision = scheduler.schedule(ctx)
        assert set(decision.running) == {0, 1, 2}
        # Two nodes, three CPU-bound jobs: the most loaded node has two tasks,
        # so the fair yield is 0.5; the lone job is then raised to 1.0 by the
        # average-yield heuristic.
        yields = sorted(a.yield_value for a in decision.running.values())
        assert yields[0] == pytest.approx(0.5)
        assert yields[-1] == pytest.approx(1.0)

    def test_memory_blocked_job_is_postponed_with_backoff(self):
        scheduler = GreedyScheduler()
        cluster = Cluster(1)
        scheduler.start(cluster, 0.0)
        running = view(
            0, cpu=0.5, mem=0.8, state=JobState.RUNNING, assignment=(0,), current_yield=1.0
        )
        incoming = view(1, cpu=0.5, mem=0.5)
        ctx = context([running, incoming], cluster=cluster, time=100.0)
        decision = scheduler.schedule(ctx)
        assert 1 not in decision.running
        assert 0 in decision.running
        # First failure: retry in 2^1 = 2 seconds.
        assert decision.wakeups == [pytest.approx(102.0)]

    def test_backoff_is_bounded(self):
        scheduler = GreedyScheduler()
        cluster = Cluster(1)
        scheduler.start(cluster, 0.0)
        running = view(
            0, cpu=0.5, mem=0.9, state=JobState.RUNNING, assignment=(0,), current_yield=1.0
        )
        incoming = view(1, cpu=0.5, mem=0.5)
        last_delay = None
        for attempt in range(20):
            ctx = context([running, incoming], cluster=cluster, time=float(10 ** 6 * (attempt + 1)))
            decision = scheduler.schedule(ctx)
            assert 1 not in decision.running
            last_delay = decision.wakeups[0] - ctx.time
        assert last_delay == pytest.approx(MAX_BACKOFF_SECONDS)

    def test_never_preempts_running_jobs(self):
        scheduler = GreedyScheduler()
        cluster = Cluster(1)
        scheduler.start(cluster, 0.0)
        running = view(
            0, cpu=1.0, mem=0.9, state=JobState.RUNNING, assignment=(0,), current_yield=1.0
        )
        incoming = view(1, cpu=1.0, mem=0.5, submit=50.0)
        ctx = context([running, incoming], cluster=cluster, time=50.0)
        decision = scheduler.schedule(ctx)
        assert 0 in decision.running
        assert decision.running[0].nodes == (0,)
        assert 1 not in decision.running


class TestGreedyPmtn:
    def test_forces_admission_by_pausing_low_priority_job(self):
        scheduler = GreedyPmtnScheduler()
        cluster = Cluster(1)
        scheduler.start(cluster, 0.0)
        # The running job has accumulated a lot of virtual time (low priority).
        running = view(
            0, cpu=1.0, mem=0.9, state=JobState.RUNNING, assignment=(0,),
            current_yield=1.0, vt=5000.0, flow=5000.0,
        )
        incoming = view(1, cpu=1.0, mem=0.5, submit=5000.0)
        ctx = context([running, incoming], cluster=cluster, time=5000.0)
        decision = scheduler.schedule(ctx)
        assert 1 in decision.running
        assert 0 not in decision.running  # paused to make room

    def test_does_not_pause_more_than_needed(self):
        scheduler = GreedyPmtnScheduler()
        cluster = Cluster(2)
        scheduler.start(cluster, 0.0)
        views = [
            view(0, cpu=0.5, mem=0.9, state=JobState.RUNNING, assignment=(0,),
                 current_yield=1.0, vt=100.0, flow=200.0),
            view(1, cpu=0.5, mem=0.9, state=JobState.RUNNING, assignment=(1,),
                 current_yield=1.0, vt=5000.0, flow=5000.0),
            view(2, cpu=0.5, mem=0.5, submit=300.0),
        ]
        ctx = context(views, cluster=cluster, time=300.0)
        decision = scheduler.schedule(ctx)
        assert 2 in decision.running
        # Exactly one running job is paused (the lower-priority job 1).
        assert 0 in decision.running
        assert 1 not in decision.running

    def test_resumes_paused_jobs_when_memory_frees_up(self):
        scheduler = GreedyPmtnScheduler()
        cluster = Cluster(1)
        scheduler.start(cluster, 0.0)
        paused = view(0, cpu=1.0, mem=0.5, state=JobState.PAUSED, vt=10.0, flow=500.0)
        ctx = context([paused], cluster=cluster, time=1000.0, completed=[7])
        decision = scheduler.schedule(ctx)
        assert 0 in decision.running

    def test_incoming_job_placed_without_preemption_when_possible(self):
        scheduler = GreedyPmtnScheduler()
        cluster = Cluster(2)
        scheduler.start(cluster, 0.0)
        running = view(
            0, cpu=1.0, mem=0.5, state=JobState.RUNNING, assignment=(0,),
            current_yield=1.0, vt=10.0, flow=20.0,
        )
        incoming = view(1, cpu=1.0, mem=0.5, submit=20.0)
        ctx = context([running, incoming], cluster=cluster, time=20.0)
        decision = scheduler.schedule(ctx)
        assert set(decision.running) == {0, 1}
        assert decision.running[0].nodes == (0,)

    def test_pmtn_does_not_move_paused_jobs_within_event(self):
        """A job paused at this event is not restarted in the same decision."""
        scheduler = GreedyPmtnScheduler()
        cluster = Cluster(2)
        scheduler.start(cluster, 0.0)
        views = [
            view(0, cpu=1.0, mem=1.0, state=JobState.RUNNING, assignment=(0,),
                 current_yield=1.0, vt=900.0, flow=1000.0),
            view(1, cpu=1.0, mem=1.0, state=JobState.RUNNING, assignment=(1,),
                 current_yield=1.0, vt=10.0, flow=1000.0),
            # Needs a full node of memory: one of the running jobs must pause.
            view(2, cpu=1.0, mem=1.0, submit=1000.0),
        ]
        ctx = context(views, cluster=cluster, time=1000.0)
        decision = scheduler.schedule(ctx)
        assert 2 in decision.running
        # Job 0 (lowest priority) is paused and NOT restarted elsewhere.
        assert 0 not in decision.running
        assert 1 in decision.running


class TestGreedyPmtnMigr:
    def test_paused_job_may_move_within_the_event(self):
        scheduler = GreedyPmtnMigrScheduler()
        cluster = Cluster(3)
        scheduler.start(cluster, 0.0)
        views = [
            # Low-priority job occupying the only node with enough memory for
            # the incoming job.
            view(0, cpu=1.0, mem=0.6, state=JobState.RUNNING, assignment=(0,),
                 current_yield=1.0, vt=900.0, flow=1000.0),
            view(1, cpu=1.0, mem=0.9, state=JobState.RUNNING, assignment=(1,),
                 current_yield=1.0, vt=10.0, flow=1000.0),
            view(2, cpu=1.0, mem=0.9, state=JobState.RUNNING, assignment=(2,),
                 current_yield=1.0, vt=10.0, flow=1000.0),
            view(3, cpu=1.0, mem=1.0, submit=1000.0),
        ]
        ctx = context(views, cluster=cluster, time=1000.0)
        decision = scheduler.schedule(ctx)
        assert 3 in decision.running
        # With MIGR, job 0 is restarted within the same event on another node
        # (there is no free memory elsewhere, so it may also stay paused; the
        # essential property is that the incoming job started).
        if 0 in decision.running:
            assert decision.running[0].nodes != (0,)

    def test_migr_prefers_moving_over_waiting(self):
        scheduler = GreedyPmtnMigrScheduler()
        cluster = Cluster(2)
        scheduler.start(cluster, 0.0)
        views = [
            view(0, cpu=1.0, mem=0.3, state=JobState.RUNNING, assignment=(0,),
                 current_yield=1.0, vt=900.0, flow=1000.0),
            # Incoming job needs 0.8 memory: fits on node 1 directly, no pause.
            view(1, cpu=1.0, mem=0.8, submit=1000.0),
        ]
        ctx = context(views, cluster=cluster, time=1000.0)
        decision = scheduler.schedule(ctx)
        assert set(decision.running) == {0, 1}
