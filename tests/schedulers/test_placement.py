"""Tests for the greedy memory-constrained placement helper."""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.job import JobState
from repro.schedulers.dfrs.placement import (
    can_place_job,
    greedy_place_job,
    usage_from_placements,
)

from .conftest import view


class TestGreedyPlacement:
    def test_prefers_least_loaded_node(self):
        cluster = Cluster(3)
        usage = cluster.usage()
        usage.add_task(0, 1.0, 0.1, 0.0)
        usage.add_task(1, 0.5, 0.1, 0.0)
        placed = greedy_place_job(view(9, tasks=1, cpu=1.0, mem=0.1), usage)
        assert placed == [2]

    def test_respects_memory(self):
        cluster = Cluster(2)
        usage = cluster.usage()
        usage.add_task(0, 0.1, 0.95, 0.0)
        placed = greedy_place_job(view(9, tasks=1, cpu=1.0, mem=0.2), usage)
        assert placed == [1]

    def test_multi_task_spreads_by_load(self):
        cluster = Cluster(2)
        usage = cluster.usage()
        placed = greedy_place_job(view(9, tasks=2, cpu=1.0, mem=0.1), usage)
        assert sorted(placed) == [0, 1]

    def test_multiple_tasks_can_share_a_node_when_needed(self):
        cluster = Cluster(2)
        usage = cluster.usage()
        placed = greedy_place_job(view(9, tasks=4, cpu=0.25, mem=0.2), usage)
        assert len(placed) == 4
        assert set(placed) <= {0, 1}

    def test_failure_rolls_back(self):
        cluster = Cluster(2)
        usage = cluster.usage()
        usage.add_task(0, 0.1, 0.8, 0.0)
        usage.add_task(1, 0.1, 0.8, 0.0)
        # Needs two tasks of 30% memory each: only one node has room for one.
        placed = greedy_place_job(view(9, tasks=4, cpu=0.1, mem=0.3), usage)
        assert placed is None
        assert usage.task_count(0) == 1
        assert usage.task_count(1) == 1

    def test_can_place_does_not_mutate(self):
        cluster = Cluster(2)
        usage = cluster.usage()
        assert can_place_job(view(9, tasks=2, cpu=0.5, mem=0.5), usage)
        assert usage.busy_nodes() == 0

    def test_usage_from_placements(self):
        cluster = Cluster(3)
        jobs = {
            0: view(0, tasks=2, cpu=0.5, mem=0.3, state=JobState.RUNNING),
            1: view(1, tasks=1, cpu=1.0, mem=0.1, state=JobState.RUNNING),
        }
        usage = usage_from_placements({0: (0, 1), 1: (0,)}, jobs, cluster)
        assert usage.cpu_load(0) == pytest.approx(1.5)
        assert usage.memory_used(0) == pytest.approx(0.4)
        assert usage.task_count(1) == 1
