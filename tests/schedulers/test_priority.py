"""Tests for the virtual-time priority function (paper §III-A)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.schedulers.dfrs.priority import (
    job_priority,
    sort_by_decreasing_priority,
    sort_by_increasing_priority,
)

from .conftest import view


class TestJobPriority:
    def test_paper_example(self):
        # 10 s at yield 1.0 + 30 s at yield 0.5 = 25 s of virtual time.
        vt = 10 * 1.0 + 30 * 0.5
        flow = 10 + 120 + 30
        assert job_priority(flow, vt) == pytest.approx(160.0 / 625.0)

    def test_zero_virtual_time_is_infinite(self):
        assert math.isinf(job_priority(100.0, 0.0))

    def test_flow_time_bounded_below_by_30(self):
        assert job_priority(1.0, 10.0) == pytest.approx(30.0 / 100.0)
        assert job_priority(29.0, 10.0) == job_priority(5.0, 10.0)

    def test_short_jobs_have_higher_priority(self):
        """With equal flow time, the job that has run less keeps priority."""
        assert job_priority(1000.0, 50.0) > job_priority(1000.0, 500.0)

    def test_paused_jobs_eventually_dominate(self):
        """The flow-time numerator prevents starvation of paused jobs."""
        early = job_priority(100.0, 200.0)
        much_later = job_priority(1e6, 200.0)
        assert much_later > early

    def test_exponent_ablation(self):
        squared = job_priority(1000.0, 10.0, exponent=2.0)
        linear = job_priority(1000.0, 10.0, exponent=1.0)
        assert squared == pytest.approx(10.0)
        assert linear == pytest.approx(100.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            job_priority(-1.0, 10.0)
        with pytest.raises(ValueError):
            job_priority(10.0, -1.0)

    @given(
        flow=st.floats(min_value=0.0, max_value=1e7),
        vt=st.floats(min_value=1e-3, max_value=1e7),
    )
    def test_priority_positive_property(self, flow, vt):
        assert job_priority(flow, vt) > 0.0


class TestPriorityOrdering:
    def test_increasing_order_puts_long_runners_first(self):
        views = [
            view(0, vt=1000.0, flow=2000.0),
            view(1, vt=10.0, flow=2000.0),
            view(2, vt=0.0, flow=100.0),
        ]
        ordered = sort_by_increasing_priority(views)
        # Job 0 ran the longest (lowest priority) and is paused first; job 2
        # never ran (infinite priority) and is paused last.
        assert [v.job_id for v in ordered] == [0, 1, 2]

    def test_decreasing_is_reverse_of_increasing(self):
        views = [view(0, vt=5.0, flow=50.0), view(1, vt=100.0, flow=50.0)]
        inc = [v.job_id for v in sort_by_increasing_priority(views)]
        dec = [v.job_id for v in sort_by_decreasing_priority(views)]
        assert dec == list(reversed(inc))

    def test_deterministic_tie_break(self):
        views = [view(2, vt=10.0, flow=50.0), view(1, vt=10.0, flow=50.0)]
        first = [v.job_id for v in sort_by_increasing_priority(views)]
        second = [v.job_id for v in sort_by_increasing_priority(list(reversed(views)))]
        assert first == second
