"""Helpers for scheduler unit tests: build contexts without the engine."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import pytest

from repro.core.cluster import Cluster
from repro.core.context import JobView, SchedulingContext
from repro.core.job import JobState


def view(
    job_id: int,
    *,
    tasks: int = 1,
    cpu: float = 1.0,
    mem: float = 0.1,
    submit: float = 0.0,
    state: JobState = JobState.PENDING,
    vt: float = 0.0,
    flow: float = 0.0,
    assignment: Optional[Tuple[int, ...]] = None,
    current_yield: float = 0.0,
    runtime_estimate: Optional[float] = None,
    remaining_estimate: Optional[float] = None,
) -> JobView:
    """Terse JobView builder for hand-written scheduling scenarios."""
    return JobView(
        job_id=job_id,
        num_tasks=tasks,
        cpu_need=cpu,
        mem_requirement=mem,
        submit_time=submit,
        state=state,
        virtual_time=vt,
        flow_time=flow,
        backoff_count=0,
        assignment=assignment,
        current_yield=current_yield,
        last_assignment=assignment,
        runtime_estimate=runtime_estimate,
        remaining_runtime_estimate=remaining_estimate,
    )


def context(
    views: Iterable[JobView],
    *,
    cluster: Optional[Cluster] = None,
    time: float = 0.0,
    submitted: Optional[List[int]] = None,
    completed: Optional[List[int]] = None,
    is_wakeup: bool = False,
) -> SchedulingContext:
    """Build a SchedulingContext from job views."""
    views = list(views)
    return SchedulingContext(
        time=time,
        cluster=cluster or Cluster(num_nodes=4, cores_per_node=4, node_memory_gb=8.0),
        jobs={v.job_id: v for v in views},
        submitted=submitted if submitted is not None else [
            v.job_id for v in views if v.is_pending
        ],
        completed=completed or [],
        is_wakeup=is_wakeup,
    )
