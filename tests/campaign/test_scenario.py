"""Tests for the Scenario spec: expansion, templating, hashing, round trips."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.campaign.scenario import (
    CollectorSpec,
    CustomSource,
    Hpc2nLikeSource,
    LublinSource,
    Scenario,
    SwfSource,
    payload_hash,
    scenario_from_dict,
    scenario_hash,
    source_from_dict,
)
from repro.core.cluster import Cluster
from repro.exceptions import ConfigurationError
from repro.workloads.model import Workload


def tiny_scenario(**overrides) -> Scenario:
    fields = dict(
        name="tiny",
        source=LublinSource(num_traces=2, num_jobs=20, seed_base=5),
        cluster=Cluster(16, 4, 8.0),
        algorithms=("fcfs", "greedy"),
        penalty_seconds=300.0,
        sweep={"load": (0.3, 0.7)},
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestExpansion:
    def test_no_sweep_is_one_cell(self):
        cells = tiny_scenario(sweep=()).expand()
        assert len(cells) == 1
        assert cells[0].params_dict() == {}

    def test_single_axis(self):
        cells = tiny_scenario().expand()
        assert [cell.params_dict() for cell in cells] == [
            {"load": 0.3},
            {"load": 0.7},
        ]
        assert [cell.index for cell in cells] == [0, 1]

    def test_cross_product_in_axis_order(self):
        scenario = tiny_scenario(sweep={"load": (0.3, 0.7), "period": (60, 600)})
        combos = [cell.params_dict() for cell in scenario.expand()]
        assert combos == [
            {"load": 0.3, "period": 60},
            {"load": 0.3, "period": 600},
            {"load": 0.7, "period": 60},
            {"load": 0.7, "period": 600},
        ]

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_scenario(sweep={"load": ()})

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_scenario(sweep=(("load", (0.3,)), ("load", (0.7,))))


class TestTemplating:
    def test_plain_names_untouched(self):
        scenario = tiny_scenario()
        assert scenario.resolved_algorithms({"load": 0.3}) == ["fcfs", "greedy"]

    def test_axis_template_filled(self):
        scenario = tiny_scenario(
            algorithms=("easy", "dynmcb8-asap-per-{period}"),
            sweep={"period": (60, 600)},
        )
        assert scenario.resolved_algorithms({"period": 60}) == [
            "easy",
            "dynmcb8-asap-per-60",
        ]

    def test_unknown_axis_in_template_rejected(self):
        scenario = tiny_scenario(algorithms=("dynmcb8-per-{period}",))
        with pytest.raises(ConfigurationError):
            scenario.resolved_algorithms({"load": 0.3})

    def test_duplicates_collapse_keeping_first_occurrence(self):
        scenario = tiny_scenario(
            algorithms=("easy", "dynmcb8-per-{period}", "easy", "dynmcb8-per-600")
        )
        assert scenario.resolved_algorithms({"period": 600}) == [
            "easy",
            "dynmcb8-per-600",
        ]


class TestValidation:
    def test_empty_algorithms_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_scenario(algorithms=())

    def test_negative_penalty_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_scenario(penalty_seconds=-1.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_scenario(name="")

    def test_unsafe_name_rejected(self):
        # Names feed cache keys and exported file names.
        for bad in ("a/b", "a b", "a\\b", "a:b"):
            with pytest.raises(ConfigurationError):
                tiny_scenario(name=bad)

    def test_bare_string_algorithms_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_scenario(algorithms="easy")

    def test_string_sweep_values_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_scenario(sweep={"tag": "abc"})

    def test_scalar_sweep_value_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_scenario(sweep={"load": 0.5})

    def test_bad_template_format_spec_rejected(self):
        scenario = tiny_scenario(
            algorithms=("dynmcb8-per-{period:d}",), sweep={"period": (60.5,)}
        )
        with pytest.raises(ConfigurationError):
            scenario.resolved_algorithms({"period": 60.5})


class TestSources:
    def test_lublin_generates_named_seeded_traces(self):
        source = LublinSource(num_traces=2, num_jobs=20, seed_base=5)
        workloads = source.workloads(Cluster(16, 4, 8.0))
        assert [w.name for w in workloads] == ["lublin-000", "lublin-001"]
        assert all(w.num_jobs == 20 for w in workloads)

    def test_hpc2n_like_generates_weeks(self):
        source = Hpc2nLikeSource(weeks=2, jobs_per_week=30, seed_base=5)
        workloads = source.workloads(Cluster(16, 4, 8.0))
        assert len(workloads) == 2
        assert workloads[0].name != workloads[1].name

    def test_swf_source_needs_path(self):
        with pytest.raises(ConfigurationError):
            SwfSource()

    def test_swf_source_hash_tracks_file_content(self, tmp_path):
        # Editing the trace in place must invalidate the run cache on the
        # next invocation (each run constructs a fresh source; the
        # fingerprint is memoised per source object).
        path = tmp_path / "trace.swf"
        path.write_text("1 0 -1 100 1 -1 -1 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n")
        before = scenario_hash(
            tiny_scenario(source=SwfSource(path=str(path)), sweep=())
        )
        path.write_text("1 0 -1 200 1 -1 -1 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n")
        after_scenario = tiny_scenario(source=SwfSource(path=str(path)), sweep=())
        assert scenario_hash(after_scenario) != before
        # The fingerprint is derived state, not a spec field.
        rebuilt = scenario_from_dict(after_scenario.to_dict())
        assert rebuilt.source == after_scenario.source

    def test_swf_source_fingerprint_hashed_once_per_object(self, tmp_path):
        path = tmp_path / "trace.swf"
        path.write_text("1 0 -1 100 1 -1 -1 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n")
        source = SwfSource(path=str(path))
        first = source.to_dict()["content"]
        path.unlink()  # file gone: a memoised fingerprint still serves
        assert source.to_dict()["content"] == first

    def test_custom_source_calls_factory(self):
        def factory(cluster):
            return [Workload("custom-0", cluster, [])]

        source = CustomSource(factory=factory, key="my-custom")
        workloads = source.workloads(Cluster(8, 4, 8.0))
        assert [w.name for w in workloads] == ["custom-0"]
        assert source.to_dict() == {"type": "custom", "key": "my-custom"}

    def test_source_from_dict_round_trip(self):
        source = Hpc2nLikeSource(weeks=3, jobs_per_week=50, seed_base=9)
        assert source_from_dict(source.to_dict()) == source

    def test_source_from_dict_rejects_unknown_type(self):
        with pytest.raises(ConfigurationError):
            source_from_dict({"type": "nonexistent"})

    def test_source_from_dict_rejects_bad_options(self):
        with pytest.raises(ConfigurationError):
            source_from_dict({"type": "lublin", "bogus": 1})


class TestDictRoundTrip:
    def test_scenario_round_trips_through_dict(self):
        scenario = tiny_scenario(
            collectors=("stretch", {"name": "utilization", "options": {"busy_watts": 250.0}}),
            legacy_event_loop=True,
        )
        rebuilt = scenario_from_dict(scenario.to_dict())
        assert rebuilt == scenario
        assert scenario_hash(rebuilt) == scenario_hash(scenario)

    def test_unknown_spec_field_rejected(self):
        payload = tiny_scenario().to_dict()
        payload["bogus"] = 1
        with pytest.raises(ConfigurationError):
            scenario_from_dict(payload)

    def test_missing_source_rejected(self):
        payload = tiny_scenario().to_dict()
        del payload["source"]
        with pytest.raises(ConfigurationError):
            scenario_from_dict(payload)

    def test_unknown_cluster_field_rejected(self):
        # A typo like "num_nodes" must not silently fall back to the default
        # 128-node cluster.
        payload = tiny_scenario().to_dict()
        payload["cluster"] = {"num_nodes": 64}
        with pytest.raises(ConfigurationError):
            scenario_from_dict(payload)

    def test_unknown_engine_field_rejected(self):
        payload = tiny_scenario().to_dict()
        payload["engine"] = {"legacy_evnt_loop": True}
        with pytest.raises(ConfigurationError):
            scenario_from_dict(payload)

    def test_repack_on_failure_round_trips(self):
        scenario = tiny_scenario(repack_on_failure=True)
        payload = scenario.to_dict()
        assert payload["engine"]["repack_on_failure"] is True
        rebuilt = scenario_from_dict(payload)
        assert rebuilt == scenario
        assert rebuilt.simulation_config().repack_on_failure is True

    def test_repack_on_failure_default_is_not_serialized(self):
        # Hash stability: specs written before the flag existed must keep
        # their digests, so the default False never appears in the payload.
        payload = tiny_scenario().to_dict()
        assert "repack_on_failure" not in payload.get("engine", {})
        rebuilt = scenario_from_dict(payload)
        assert rebuilt.repack_on_failure is False

    def test_scalar_sweep_value_in_spec_rejected(self):
        payload = tiny_scenario().to_dict()
        payload["sweep"] = {"load": 0.5}
        with pytest.raises(ConfigurationError):
            scenario_from_dict(payload)


class TestHash:
    def test_hash_is_16_hex_chars(self):
        digest = scenario_hash(tiny_scenario())
        assert len(digest) == 16
        int(digest, 16)

    def test_hash_ignores_nothing_semantic(self):
        assert scenario_hash(tiny_scenario()) != scenario_hash(
            tiny_scenario(penalty_seconds=0.0)
        )
        assert scenario_hash(tiny_scenario()) != scenario_hash(
            tiny_scenario(algorithms=("fcfs",))
        )
        assert scenario_hash(tiny_scenario()) != scenario_hash(
            tiny_scenario(legacy_event_loop=True)
        )
        assert scenario_hash(tiny_scenario()) != scenario_hash(
            tiny_scenario(repack_on_failure=True)
        )

    def test_hash_equal_for_equal_scenarios(self):
        assert scenario_hash(tiny_scenario()) == scenario_hash(tiny_scenario())

    def test_payload_hash_is_order_insensitive(self):
        assert payload_hash({"a": 1, "b": 2}) == payload_hash({"b": 2, "a": 1})

    def test_hash_stable_across_processes(self):
        """The cache key must not depend on interpreter state (satellite 4)."""
        scenario = tiny_scenario()
        spec_json = json.dumps(scenario.to_dict())
        program = (
            "import json, sys\n"
            "from repro.campaign.scenario import scenario_from_dict, scenario_hash\n"
            "spec = json.loads(sys.stdin.read())\n"
            "print(scenario_hash(scenario_from_dict(spec)))\n"
        )
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        # PYTHONHASHSEED=random would expose any accidental reliance on
        # dict/set iteration order tied to string hashing.
        env["PYTHONHASHSEED"] = "random"
        completed = subprocess.run(
            [sys.executable, "-c", program],
            input=spec_json,
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert completed.stdout.strip() == scenario_hash(scenario)
