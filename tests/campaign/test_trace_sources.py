"""Tests for the `generator`/`transform` scenario sources and the
CustomSource spec gap."""

from __future__ import annotations

import pytest

from repro.campaign import (
    Campaign,
    CustomSource,
    GeneratorSource,
    Scenario,
    TransformSource,
    scenario_from_dict,
    scenario_hash,
)
from repro.campaign.scenario import source_from_dict
from repro.core.cluster import Cluster
from repro.exceptions import ConfigurationError
from repro.traces import DowneyTraceSource, Head, RescaleLoad

CLUSTER = Cluster(16, 4, 8.0)


class TestGeneratorSource:
    def test_instances_vary_the_seed(self):
        source = GeneratorSource(
            model="downey",
            instances=3,
            seed_base=50,
            options=(("num_jobs", 20),),
        )
        workloads = source.workloads(CLUSTER)
        assert [w.name for w in workloads] == [
            "downey-seed50", "downey-seed51", "downey-seed52",
        ]
        assert workloads[0].jobs != workloads[1].jobs

    def test_round_trip_spec(self):
        source = GeneratorSource(
            model="diurnal-poisson",
            instances=2,
            seed_base=9,
            options=(("num_jobs", 15),),
        )
        rebuilt = source_from_dict(source.to_dict())
        assert rebuilt == source

    def test_options_mapping_coerced(self):
        source = GeneratorSource(model="downey", options={"num_jobs": 5})
        assert dict(source.options) == {"num_jobs": 5}

    def test_bad_model_fails_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown trace source"):
            GeneratorSource(model="not-a-model")

    def test_bad_options_fail_at_construction(self):
        with pytest.raises(ConfigurationError, match="invalid options"):
            GeneratorSource(model="downey", options={"bogus": 1})

    def test_seed_option_rejected(self):
        with pytest.raises(ConfigurationError, match="seed_base"):
            GeneratorSource(model="downey", options={"seed": 1})

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GeneratorSource(model="")
        with pytest.raises(ConfigurationError):
            GeneratorSource(model="downey", instances=0)


class TestTransformSource:
    def _chain(self):
        return DowneyTraceSource(num_jobs=40, seed=3).transformed(
            RescaleLoad(target_load=0.5), Head(count=25)
        )

    def test_materializes_single_instance(self):
        source = TransformSource(source=self._chain())
        workloads = source.workloads(CLUSTER)
        assert len(workloads) == 1
        assert workloads[0].num_jobs == 25

    def test_round_trip_spec(self):
        source = TransformSource(source=self._chain())
        rebuilt = source_from_dict(source.to_dict())
        assert rebuilt.to_dict() == source.to_dict()

    def test_rejects_non_expressible_chains(self):
        from repro.traces import PredicateFilter

        chain = DowneyTraceSource(num_jobs=5, seed=1).transformed(
            PredicateFilter(predicate=lambda s: True, key="k")
        )
        with pytest.raises(ConfigurationError, match="not spec-expressible"):
            TransformSource(source=chain)

    def test_rejects_non_source(self):
        with pytest.raises(ConfigurationError):
            TransformSource(source="nope")

    def test_rejects_bare_models(self):
        # A bare generator would serialise under its own type name and not
        # round-trip through the 'transform' spec dispatch — GeneratorSource
        # is the right wrapper for it.
        with pytest.raises(ConfigurationError, match="GeneratorSource"):
            TransformSource(source=DowneyTraceSource(num_jobs=5, seed=1))


class TestSpecGap:
    def test_custom_source_flagged_not_expressible(self):
        source = CustomSource(factory=lambda cluster: [], key="k")
        assert not source.spec_expressible

    def test_expressible_sources_flagged(self):
        assert GeneratorSource(model="downey").spec_expressible
        assert TransformSource.spec_expressible

    def test_custom_spec_gets_targeted_error(self):
        with pytest.raises(ConfigurationError) as excinfo:
            source_from_dict({"type": "custom", "key": "k"})
        message = str(excinfo.value)
        assert "not spec-expressible" in message
        assert "generator" in message and "transform" in message


class TestEndToEnd:
    def test_transform_chain_campaign_from_spec(self, tmp_path):
        spec = {
            "name": "transform-chain",
            "cluster": {"nodes": 16, "cores_per_node": 4, "node_memory_gb": 8.0},
            "source": {
                "type": "transform",
                "base": {"type": "downey", "num_jobs": 40, "seed": 3},
                "steps": [
                    {"type": "filter", "max_tasks": 8},
                    {"type": "rescale-load", "target_load": 0.5},
                ],
            },
            "algorithms": ["easy", "greedy-pmtn"],
            "collectors": ["stretch"],
        }
        scenario = scenario_from_dict(spec)
        outcome = Campaign().run(scenario)
        assert len(outcome.rows) == 2
        assert outcome.rows[0].workload == "downey-seed3+filter+rescale-load"
        for row in outcome.rows:
            assert row.metric("max_stretch") >= 1.0

    def test_generator_campaign_from_spec(self):
        spec = {
            "name": "generator-sweep",
            "cluster": {"nodes": 16, "cores_per_node": 4, "node_memory_gb": 8.0},
            "source": {
                "type": "generator",
                "model": "diurnal-poisson",
                "instances": 2,
                "seed_base": 4,
                "options": {"num_jobs": 25, "mean_interarrival_seconds": 1200.0},
            },
            "algorithms": ["easy"],
            "sweep": {"load": [0.3, 0.6]},
        }
        scenario = scenario_from_dict(spec)
        outcome = Campaign().run(scenario)
        # 2 cells x 2 instances x 1 algorithm.
        assert len(outcome.rows) == 4

    def test_hash_stable_across_round_trip(self):
        scenario = Scenario(
            name="hash-check",
            source=GeneratorSource(
                model="downey", instances=2, seed_base=1,
                options=(("num_jobs", 10),),
            ),
            algorithms=("easy",),
            cluster=CLUSTER,
        )
        rebuilt = scenario_from_dict(scenario.to_dict())
        assert scenario_hash(rebuilt) == scenario_hash(scenario)
