"""Tests for the metric collectors and the recorder registry behind them."""

from __future__ import annotations

import pytest

from repro.campaign.collectors import (
    available_collectors,
    create_collector,
    register_collector,
    MetricCollector,
)
from repro.core.engine import SimulationConfig, Simulator
from repro.core.observers import (
    UtilizationRecorder,
    available_recorders,
    create_recorder,
    register_recorder,
)
from repro.core.penalties import ReschedulingPenaltyModel
from repro.exceptions import ConfigurationError
from repro.schedulers.registry import create_scheduler
from repro.workloads.lublin import LublinWorkloadGenerator
from repro.core.cluster import Cluster


@pytest.fixture(scope="module")
def finished_run():
    cluster = Cluster(16, 4, 8.0)
    workload = LublinWorkloadGenerator(cluster).generate(25, seed=3, name="t")
    recorder = UtilizationRecorder()
    simulator = Simulator(
        cluster,
        create_scheduler("greedy-pmtn"),
        SimulationConfig(penalty_model=ReschedulingPenaltyModel(300.0)),
        observers=[recorder],
    )
    result = simulator.run(workload.jobs)
    return workload, result, recorder


class TestRecorderRegistry:
    def test_known_recorders(self):
        assert set(available_recorders()) >= {
            "event-log",
            "allocation-trace",
            "utilization",
        }

    def test_create_recorder(self):
        assert isinstance(create_recorder("utilization"), UtilizationRecorder)

    def test_unknown_recorder_rejected(self):
        with pytest.raises(ConfigurationError):
            create_recorder("nonexistent")

    def test_reregistering_same_factory_is_idempotent(self):
        register_recorder("utilization", UtilizationRecorder)

    def test_name_collision_rejected(self):
        with pytest.raises(ConfigurationError):
            register_recorder("utilization", lambda: UtilizationRecorder())


class TestCollectorRegistry:
    def test_known_collectors(self):
        assert set(available_collectors()) >= {
            "stretch",
            "costs",
            "timing",
            "fairness",
            "utilization",
        }

    def test_unknown_collector_rejected(self):
        with pytest.raises(ConfigurationError):
            create_collector("nonexistent")

    def test_bad_options_rejected(self):
        with pytest.raises(ConfigurationError):
            create_collector("utilization", bogus_watts=1.0)

    def test_registration_collision_rejected(self):
        class Custom(MetricCollector):
            name = "stretch"

        with pytest.raises(ConfigurationError):
            register_collector("stretch", Custom)


class TestCollectedMetrics:
    def test_stretch_metrics_match_result(self, finished_run):
        workload, result, _ = finished_run
        metrics = create_collector("stretch").collect(result, {}, workload)
        assert metrics["max_stretch"] == result.max_stretch
        assert metrics["mean_stretch"] == result.mean_stretch
        assert metrics["num_jobs"] == workload.num_jobs

    def test_cost_metrics_match_result(self, finished_run):
        workload, result, _ = finished_run
        metrics = create_collector("costs").collect(result, {}, workload)
        assert metrics["pmtn_per_job"] == result.preemptions_per_job()
        assert metrics["migr_per_hour"] == result.migrations_per_hour()

    def test_timing_metrics_are_raw_vectors(self, finished_run):
        workload, result, _ = finished_run
        metrics = create_collector("timing").collect(result, {}, workload)
        assert metrics["scheduler_times"] == [float(t) for t in result.scheduler_times]
        assert len(metrics["interarrivals"]) == workload.num_jobs - 1

    def test_fairness_metrics_valid(self, finished_run):
        workload, result, _ = finished_run
        metrics = create_collector("fairness").collect(result, {}, workload)
        assert 0.0 < metrics["jain_stretch"] <= 1.0
        assert 0.0 <= metrics["gini_stretch"] < 1.0

    def test_utilization_metrics_match_legacy_path(self, finished_run):
        from repro.analysis.energy import NodePowerModel, energy_from_recorder
        from repro.analysis.timeseries import busy_nodes_series

        workload, result, recorder = finished_run
        collector = create_collector("utilization", busy_watts=250.0)
        metrics = collector.collect(result, {"utilization": recorder}, workload)
        busy = busy_nodes_series(recorder)
        assert metrics["mean_busy_nodes"] == busy.mean()
        assert metrics["peak_busy_nodes"] == recorder.peak_busy_nodes()
        expected = energy_from_recorder(
            recorder,
            workload.cluster,
            algorithm=result.algorithm,
            model=NodePowerModel(busy_watts=250.0),
        )
        assert metrics["energy_always_on_joules"] == expected.always_on_joules
        assert metrics["energy_savings_fraction"] == expected.savings_fraction
