"""Export round-trip tests (satellite): CampaignResult -> CSV/JSON -> back.

The reloaded result must reproduce the in-memory aggregates exactly, and the
CSV row form must be type-faithful (floats stay floats, lists stay lists).
"""

from __future__ import annotations

import pytest

from repro.analysis.export import campaign_rows_from_csv, campaign_rows_to_csv
from repro.campaign.executor import Campaign
from repro.campaign.result import CampaignResult
from repro.campaign.scenario import LublinSource, Scenario
from repro.core.cluster import Cluster
from repro.exceptions import ReproError


@pytest.fixture(scope="module")
def outcome() -> CampaignResult:
    scenario = Scenario(
        name="roundtrip",
        source=LublinSource(num_traces=2, num_jobs=20, seed_base=5),
        cluster=Cluster(16, 4, 8.0),
        algorithms=("fcfs", "greedy-pmtn"),
        penalty_seconds=300.0,
        sweep={"load": (0.4, 0.8)},
        collectors=("stretch", "costs", "timing"),
    )
    return Campaign().run(scenario)


class TestJsonRoundTrip:
    def test_in_memory_round_trip_is_lossless(self, outcome):
        rebuilt = CampaignResult.from_json(outcome.to_json())
        assert rebuilt.to_json_dict() == outcome.to_json_dict()

    def test_file_round_trip_is_lossless(self, outcome, tmp_path):
        path = tmp_path / "campaign.json"
        outcome.to_json(path)
        rebuilt = CampaignResult.from_json(path)
        assert rebuilt.to_json_dict() == outcome.to_json_dict()

    def test_aggregates_survive_round_trip(self, outcome, tmp_path):
        path = tmp_path / "campaign.json"
        outcome.to_json(path)
        rebuilt = CampaignResult.from_json(path)
        assert rebuilt.degradation_stats() == outcome.degradation_stats()
        assert rebuilt.aggregate("max_stretch") == outcome.aggregate("max_stretch")
        assert rebuilt.format_summary() == outcome.format_summary()


class TestCsvRoundTrip:
    def test_rows_round_trip_type_faithfully(self, outcome, tmp_path):
        path = tmp_path / "rows.csv"
        outcome.rows_to_csv(path)
        rebuilt = CampaignResult.rows_from_csv(str(path))
        assert [row.to_dict() for row in rebuilt] == [
            row.to_dict() for row in outcome.rows
        ]
        # Raw sample vectors (timing collector) survive as lists of floats.
        assert isinstance(rebuilt[0].metric("scheduler_times"), list)

    def test_aggregates_from_reparsed_rows_match(self, outcome):
        text = outcome.rows_to_csv()
        rebuilt = CampaignResult(
            scenario=outcome.scenario,
            scenario_hash=outcome.scenario_hash,
            rows=CampaignResult.rows_from_csv(text),
        )
        assert rebuilt.degradation_stats() == outcome.degradation_stats()
        assert rebuilt.aggregate(
            "pmtn_per_job", statistic="max"
        ) == outcome.aggregate("pmtn_per_job", statistic="max")

    def test_header_is_tidy(self, outcome):
        header = outcome.rows_to_csv().splitlines()[0]
        assert header.startswith("cell_index,instance_index,workload,algorithm")
        assert "param:load" in header
        assert "metric:max_stretch" in header

    def test_empty_csv_rejected(self):
        with pytest.raises(ReproError):
            campaign_rows_from_csv("\n")

    def test_bad_header_rejected(self):
        with pytest.raises(ReproError):
            campaign_rows_from_csv("a,b,c\n1,2,3\n")

    def test_missing_cells_skipped(self):
        rows = [
            {
                "cell_index": 0,
                "instance_index": 0,
                "workload": "w",
                "algorithm": "a",
                "params": [["load", 0.3]],
                "metrics": {"x": 1.0},
            },
            {
                "cell_index": 0,
                "instance_index": 1,
                "workload": "w2",
                "algorithm": "a",
                "params": [],
                "metrics": {},
            },
        ]
        text = campaign_rows_to_csv(rows)
        rebuilt = campaign_rows_from_csv(text)
        assert rebuilt[0]["metrics"] == {"x": 1.0}
        assert rebuilt[1]["params"] == []
        assert rebuilt[1]["metrics"] == {}
