"""Streaming campaign execution: bounded memory, exact per-cell merges."""

from __future__ import annotations

import json

import pytest

from repro.campaign import Campaign, CampaignResult
from repro.campaign.scenario import (
    CollectorSpec,
    CustomSource,
    GeneratorSource,
    Scenario,
)
from repro.core.cluster import Cluster
from repro.exceptions import ConfigurationError
from repro.workloads.model import Workload

CLUSTER = Cluster(32, 4, 8.0)


def _scenario(**overrides) -> Scenario:
    options = dict(
        name="stream-exec",
        source=GeneratorSource(
            model="diurnal-poisson",
            instances=2,
            seed_base=7,
            # Sub-critical load keeps the active-job population (and the
            # suite runtime) small without losing stretch spread.
            options={
                "num_jobs": 400,
                "mean_interarrival_seconds": 300.0,
                "runtime_log_mean": 5.0,
                "runtime_log_sigma": 1.2,
                "max_runtime_seconds": 14400.0,
            },
        ),
        algorithms=("fcfs",),
        cluster=CLUSTER,
        collectors=(CollectorSpec("stretch"), CollectorSpec("costs")),
    )
    options.update(overrides)
    return Scenario(**options)


class TestStreamingExecution:
    def test_one_merged_row_per_cell_algorithm(self):
        outcome = Campaign(streaming=True).run(_scenario(algorithms=("fcfs", "easy")))
        assert len(outcome.rows) == 2
        for row in outcome.rows:
            assert row.instance_index == -1  # merged across instances
            assert row.metric("num_jobs") == 800  # both instances pooled
            for name in ("stretch_p50", "stretch_p90", "stretch_p99",
                         "max_stretch", "worst_job_id", "pmtn_per_job",
                         "peak_resident_jobs"):
                assert name in row.metrics

    def test_merged_extremes_match_materialized_runs(self):
        scenario = _scenario()
        streamed = Campaign(streaming=True).run(scenario)
        materialized = Campaign().run(scenario)
        per_instance_max = [
            row.metric("max_stretch") for row in materialized.rows
        ]
        merged = streamed.rows[0]
        # max is tracked exactly, so the merged row is the exact max over
        # the cell's instances; job counts pool exactly.
        assert merged.metric("max_stretch") == max(per_instance_max)
        assert merged.metric("num_jobs") == sum(
            row.metric("num_jobs") for row in materialized.rows
        )

    def test_load_axis_rescales_streams(self):
        scenario = _scenario(sweep=(("load", (0.3, 0.7)),))
        outcome = Campaign(streaming=True).run(scenario)
        assert len(outcome.rows) == 2
        low, high = outcome.rows
        assert low.params_dict()["load"] == 0.3
        # Higher offered load must hurt (or at least not improve) stretch.
        assert high.metric("mean_stretch") >= low.metric("mean_stretch")

    def test_empty_source_rejected(self):
        from repro.campaign.scenario import LublinSource

        scenario = _scenario(source=LublinSource(num_traces=0, num_jobs=20))
        with pytest.raises(ConfigurationError, match="no.*streaming instances"):
            Campaign(streaming=True).run(scenario)

    def test_non_positive_load_rejected(self):
        scenario = _scenario(sweep=(("load", (0.0,)),))
        with pytest.raises(ConfigurationError, match="load axis"):
            Campaign(streaming=True).run(scenario)

    def test_peak_resident_jobs_is_bounded(self):
        outcome = Campaign(streaming=True).run(_scenario())
        assert outcome.rows[0].metric("peak_resident_jobs") < 400

    def test_workers_match_serial(self):
        scenario = _scenario(algorithms=("fcfs", "easy"))
        serial = Campaign(streaming=True).run(scenario)
        parallel = Campaign(streaming=True, workers=2).run(scenario)
        assert [row.to_dict() for row in serial.rows] == [
            row.to_dict() for row in parallel.rows
        ]

    def test_non_streaming_collector_rejected(self):
        # "timing" ships raw per-event vectors, which bounded memory cannot
        # keep; "utilization" streams since the time-decayed busy-node
        # accumulator landed (see test_utilization_collector_streams).
        scenario = _scenario(collectors=(CollectorSpec("timing"),))
        with pytest.raises(ConfigurationError, match="timing"):
            Campaign(streaming=True).run(scenario)

    def test_utilization_collector_streams(self):
        scenario = _scenario(collectors=(CollectorSpec("utilization"),))
        outcome = Campaign(streaming=True).run(scenario)
        row = outcome.rows[0]
        assert row.metric("mean_busy_nodes") > 0.0
        assert row.metric("peak_busy_nodes") > 0.0
        assert row.metric("energy_always_on_joules") > 0.0
        # Busy + idle node-seconds partition the duration exactly.
        total = (
            row.metric("energy_busy_node_seconds")
            + row.metric("energy_idle_node_seconds")
        )
        assert total == pytest.approx(
            row.metric("energy_duration_seconds") * CLUSTER.num_nodes, rel=1e-9
        )

    def test_swf_with_segments_warns_and_materializes(self, tmp_path):
        # Satellite: fixed-duration segmentation cannot stream; instead of a
        # hard error the campaign announces the fallback and runs the
        # materialized path (rows per instance, not merged).
        from repro.campaign.scenario import SwfSource

        path = tmp_path / "sorted.swf"
        path.write_text(
            "1 0 0 100 4 -1 0.5 4 100 -1 1 0 0 0 0 0 0 0\n"
            "2 500 0 100 4 -1 0.5 4 100 -1 1 0 0 0 0 0 0 0\n"
            "3 2000 0 100 4 -1 0.5 4 100 -1 1 0 0 0 0 0 0 0\n",
            encoding="utf-8",
        )
        scenario = _scenario(
            source=SwfSource(path=str(path), segment_seconds=1500.0)
        )
        with pytest.warns(UserWarning, match="segment_seconds"):
            outcome = Campaign(streaming=True).run(scenario)
        # Materialized shape: one row per (instance, algorithm), no merge.
        assert len(outcome.rows) == 2
        assert all(row.instance_index >= 0 for row in outcome.rows)

    def test_legacy_event_loop_rejected_up_front(self):
        scenario = _scenario(legacy_event_loop=True)
        with pytest.raises(ConfigurationError, match="legacy_event_loop"):
            Campaign(streaming=True).run(scenario)

    def test_worst_job_id_is_the_exact_max(self):
        scenario = _scenario()
        streamed = Campaign(streaming=True).run(scenario)
        materialized = Campaign().run(scenario)
        worst_instance = max(
            materialized.rows, key=lambda row: row.metric("max_stretch")
        )
        merged = streamed.rows[0]
        assert merged.metric("max_stretch") == worst_instance.metric("max_stretch")
        assert isinstance(merged.metric("worst_job_id"), int)

    def test_out_of_order_swf_fails_fast(self, tmp_path):
        # SWF archives are submit-ordered only by convention; the streaming
        # path must reject an unsorted one before simulating, not mid-run.
        from repro.campaign.scenario import SwfSource

        path = tmp_path / "unsorted.swf"
        path.write_text(
            "; Computer: test\n"
            "1 0 0 100 4 -1 0.5 4 100 -1 1 0 0 0 0 0 0 0\n"
            "2 2000 0 100 4 -1 0.5 4 100 -1 1 0 0 0 0 0 0 0\n"
            "3 500 0 100 4 -1 0.5 4 100 -1 1 0 0 0 0 0 0 0\n",
            encoding="utf-8",
        )
        scenario = _scenario(source=SwfSource(path=str(path)))
        with pytest.raises(ConfigurationError, match="not arrival-ordered"):
            Campaign(streaming=True).run(scenario)

    def test_out_of_order_swf_caught_under_transform_chain(self, tmp_path):
        from repro.campaign.scenario import TransformSource
        from repro.traces import Head, SwfTraceSource

        path = tmp_path / "unsorted.swf"
        path.write_text(
            "1 0 0 100 4 -1 0.5 4 100 -1 1 0 0 0 0 0 0 0\n"
            "2 2000 0 100 4 -1 0.5 4 100 -1 1 0 0 0 0 0 0 0\n"
            "3 500 0 100 4 -1 0.5 4 100 -1 1 0 0 0 0 0 0 0\n",
            encoding="utf-8",
        )
        chain = SwfTraceSource(path=str(path)).transformed(Head(count=3))
        scenario = _scenario(source=TransformSource(source=chain))
        with pytest.raises(ConfigurationError, match="not arrival-ordered"):
            Campaign(streaming=True).run(scenario)

    def test_cached_rerun_skips_trace_parsing(self, tmp_path):
        # A fully cached rerun must not re-read the archive at all — prove
        # it by deleting the trace file between runs.
        from repro.campaign.scenario import SwfSource

        path = tmp_path / "sorted.swf"
        path.write_text(
            "1 0 0 100 4 -1 0.5 4 100 -1 1 0 0 0 0 0 0 0\n"
            "2 500 0 100 4 -1 0.5 4 100 -1 1 0 0 0 0 0 0 0\n"
            "3 2000 0 100 4 -1 0.5 4 100 -1 1 0 0 0 0 0 0 0\n",
            encoding="utf-8",
        )
        scenario = _scenario(source=SwfSource(path=str(path)))
        cache = tmp_path / "cache"
        first = Campaign(streaming=True, cache_dir=cache).run(scenario)
        path.unlink()
        second = Campaign(streaming=True, cache_dir=cache).run(scenario)
        assert [row.to_dict() for row in second.rows] == [
            row.to_dict() for row in first.rows
        ]

    def test_non_streaming_source_rejected(self):
        def factory(cluster):
            return [Workload("custom", cluster, [])]

        scenario = _scenario(source=CustomSource(factory=factory, key="x"))
        with pytest.raises(ConfigurationError, match="cannot stream"):
            Campaign(streaming=True).run(scenario)

    def test_cache_resume_and_isolation(self, tmp_path):
        scenario = _scenario()
        first = Campaign(streaming=True, cache_dir=tmp_path).run(scenario)
        # A cached rerun reloads the merged rows without re-simulating.
        second = Campaign(streaming=True, cache_dir=tmp_path).run(scenario)
        assert [row.to_dict() for row in first.rows] == [
            row.to_dict() for row in second.rows
        ]
        # The streaming cache must never collide with the materialized one.
        materialized = Campaign(cache_dir=tmp_path).run(scenario)
        assert materialized.scenario_hash != first.scenario_hash
        assert len(materialized.rows) == 2  # per-instance rows, not merged

    def test_custom_relative_error(self):
        outcome = Campaign(streaming=True, metrics_relative_error=0.05).run(
            _scenario()
        )
        assert outcome.rows[0].metric("stretch_p99") > 0

    def test_load_measured_once_per_instance(self):
        # The offered-load measurement pass must run once per instance in
        # the parent, not once per (cell x algorithm) worker task.
        from repro.campaign.scenario import WorkloadSource
        from repro.traces import CallableTraceSource, DiurnalPoissonTraceSource

        passes = {"count": 0}
        base = DiurnalPoissonTraceSource(
            num_jobs=120,
            seed=5,
            mean_interarrival_seconds=300.0,
            runtime_log_mean=5.0,
            runtime_log_sigma=1.0,
        )

        def counted(cluster):
            passes["count"] += 1
            return base.jobs(cluster)

        class CountedSource(WorkloadSource):
            kind = "counted"

            def streaming_sources(self, cluster):
                return [CallableTraceSource(factory=counted, key="counted")]

            def to_dict(self):
                return {"type": self.kind}

        scenario = _scenario(
            source=CountedSource(),
            algorithms=("fcfs", "easy"),
            sweep=(("load", (0.3, 0.7)),),
        )
        Campaign(streaming=True).run(scenario)
        # 1 measurement + 2 loads x 2 algorithms simulations = 5 passes
        # (the pre-fix behaviour measured inside every task: 8 passes).
        assert passes["count"] == 5

    def test_cache_keyed_by_sketch_accuracy(self, tmp_path):
        scenario = _scenario()
        default = Campaign(streaming=True, cache_dir=tmp_path).run(scenario)
        finer = Campaign(
            streaming=True, cache_dir=tmp_path, metrics_relative_error=0.001
        ).run(scenario)
        # Different accuracies must never share cache entries.
        assert default.scenario_hash != finer.scenario_hash


class TestMergeInstances:
    """Satellite: ``merge_instances=False`` ships per-instance rows unmerged."""

    def test_one_row_per_instance_algorithm(self):
        outcome = Campaign(streaming=True, merge_instances=False).run(
            _scenario(algorithms=("fcfs", "easy"))
        )
        # 2 instances x 2 algorithms, real instance indices — the
        # materialized path's row shape with sketched quantile columns.
        assert sorted(
            (row.instance_index, row.algorithm) for row in outcome.rows
        ) == [(0, "easy"), (0, "fcfs"), (1, "easy"), (1, "fcfs")]
        for row in outcome.rows:
            assert row.metric("num_jobs") == 400
            assert "stretch_p99" in row.metrics

    def test_per_instance_rows_pool_to_the_merged_row(self):
        scenario = _scenario()
        merged = Campaign(streaming=True).run(scenario).rows[0]
        per = Campaign(streaming=True, merge_instances=False).run(scenario)
        # Exact statistics of the merged row are exactly the pool of the
        # per-instance rows (max is tracked exactly; counts are sums).
        assert merged.metric("num_jobs") == sum(
            row.metric("num_jobs") for row in per.rows
        )
        assert merged.metric("max_stretch") == max(
            row.metric("max_stretch") for row in per.rows
        )

    def test_per_instance_rows_match_materialized_exact_columns(self):
        scenario = _scenario()
        per = Campaign(streaming=True, merge_instances=False).run(scenario)
        materialized = Campaign().run(scenario)
        for stream_row, mat_row in zip(per.rows, materialized.rows):
            assert stream_row.instance_index == mat_row.instance_index
            assert stream_row.metric("num_jobs") == mat_row.metric("num_jobs")
            assert stream_row.metric("max_stretch") == mat_row.metric(
                "max_stretch"
            )

    def test_modes_never_share_cache_entries(self, tmp_path):
        scenario = _scenario()
        merged = Campaign(streaming=True, cache_dir=tmp_path).run(scenario)
        per = Campaign(
            streaming=True, cache_dir=tmp_path, merge_instances=False
        ).run(scenario)
        assert merged.scenario_hash != per.scenario_hash
        # Each mode still resumes from its own cache.
        rerun = Campaign(
            streaming=True, cache_dir=tmp_path, merge_instances=False
        ).run(scenario)
        assert [row.to_dict() for row in rerun.rows] == [
            row.to_dict() for row in per.rows
        ]

    def test_json_and_csv_round_trip_per_instance_rows(self, tmp_path):
        outcome = Campaign(streaming=True, merge_instances=False).run(
            _scenario()
        )
        json_path = tmp_path / "per-instance.json"
        outcome.to_json(json_path)
        restored = CampaignResult.from_json(json_path)
        assert [row.to_dict() for row in restored.rows] == [
            row.to_dict() for row in outcome.rows
        ]
        csv_path = tmp_path / "per-instance.rows.csv"
        outcome.rows_to_csv(csv_path)
        rows = CampaignResult.rows_from_csv(csv_path)
        assert [row.to_dict() for row in rows] == [
            row.to_dict() for row in outcome.rows
        ]
        assert [row.instance_index for row in rows] == [0, 1]


class TestStreamingExportRoundTrip:
    """Satellite: JSON/CSV export stays lossless for the new summary rows."""

    def test_json_round_trip(self, tmp_path):
        outcome = Campaign(streaming=True).run(_scenario())
        path = tmp_path / "streaming.json"
        outcome.to_json(path)
        restored = CampaignResult.from_json(path)
        assert [row.to_dict() for row in restored.rows] == [
            row.to_dict() for row in outcome.rows
        ]
        for name in ("stretch_p50", "stretch_p90", "stretch_p99"):
            assert restored.rows[0].metric(name) == outcome.rows[0].metric(name)

    def test_csv_round_trip(self, tmp_path):
        outcome = Campaign(streaming=True).run(
            _scenario(sweep=(("load", (0.5,)),))
        )
        path = tmp_path / "streaming.rows.csv"
        outcome.rows_to_csv(path)
        rows = CampaignResult.rows_from_csv(path)
        assert [row.to_dict() for row in rows] == [
            row.to_dict() for row in outcome.rows
        ]
        # The merged-row marker and the quantile columns survive typed.
        assert rows[0].instance_index == -1
        assert isinstance(rows[0].metric("stretch_p99"), float)

    def test_format_summary_renders_quantile_columns(self):
        outcome = Campaign(streaming=True).run(_scenario())
        text = outcome.format_summary()
        assert "stretch_p99" in text
        assert "max_stretch" in text


class TestStreamingCli:
    def test_run_spec_with_streaming_flag(self, tmp_path, capsys):
        from repro.cli import main

        spec = {
            "name": "cli-streaming",
            "cluster": {"nodes": 32, "cores_per_node": 4, "node_memory_gb": 8.0},
            "source": {
                "type": "generator",
                "model": "diurnal-poisson",
                "instances": 2,
                "seed_base": 7,
                "options": {"num_jobs": 150, "mean_interarrival_seconds": 300.0},
            },
            "algorithms": ["fcfs"],
            "collectors": ["stretch"],
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec), encoding="utf-8")
        export_dir = tmp_path / "artifacts"
        assert main(
            ["--streaming-metrics", "--export-dir", str(export_dir),
             "run", str(spec_path)]
        ) == 0
        output = capsys.readouterr().out
        assert "stretch_p99" in output
        csv_files = list(export_dir.glob("*.rows.csv"))
        assert len(csv_files) == 1
        assert "metric:stretch_p99" in csv_files[0].read_text(encoding="utf-8")

    def test_compare_subcommand_streams(self, capsys):
        from repro.cli import main

        assert main(
            ["--streaming-metrics", "--num-jobs", "60", "--num-traces", "1",
             "--algorithms", "fcfs", "compare", "--load", "0.5"]
        ) == 0
        assert "max stretch" in capsys.readouterr().out

    def test_paper_drivers_refuse_streaming_flag(self, capsys):
        # Merged per-cell rows would silently change the per-instance
        # degradation estimator of the paper artifacts — refuse loudly.
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["--streaming-metrics", "figure1"])
        assert "per-instance degradation" in capsys.readouterr().err
