"""Tests for the Campaign executor: grid semantics, caching, parallelism."""

from __future__ import annotations

import json

import pytest

import repro.campaign.executor as executor_module
from repro.campaign.executor import Campaign, export_campaign_artifacts
from repro.campaign.scenario import LublinSource, Scenario, scenario_hash
from repro.core.cluster import Cluster
from repro.experiments.parallel import generate_instances
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_instances
from repro.exceptions import ReproError
from repro.workloads.scaling import scale_to_load


TINY_CLUSTER = Cluster(16, 4, 8.0)


def tiny_scenario(**overrides) -> Scenario:
    fields = dict(
        name="exec-tiny",
        source=LublinSource(num_traces=2, num_jobs=20, seed_base=5),
        cluster=TINY_CLUSTER,
        algorithms=("fcfs", "greedy-pmtn"),
        penalty_seconds=300.0,
        sweep={"load": (0.4, 0.8)},
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestGridSemantics:
    @pytest.fixture(scope="class")
    def outcome(self):
        return Campaign().run(tiny_scenario())

    def test_row_count_is_full_grid(self, outcome):
        assert len(outcome.rows) == 2 * 2 * 2  # loads x instances x algorithms

    def test_rows_in_cell_major_grid_order(self, outcome):
        keys = [row.key() for row in outcome.rows]
        assert keys == [
            "0/0/fcfs", "0/0/greedy-pmtn", "0/1/fcfs", "0/1/greedy-pmtn",
            "1/0/fcfs", "1/0/greedy-pmtn", "1/1/fcfs", "1/1/greedy-pmtn",
        ]

    def test_metrics_equal_direct_run_instances(self, outcome):
        """The campaign grid must be bit-identical to the legacy execution path."""
        config = ExperimentConfig(
            cluster=TINY_CLUSTER, num_traces=2, num_jobs=20, seed_base=5
        )
        for load in (0.4, 0.8):
            workloads = [
                scale_to_load(w, load)
                for w in generate_instances(config, load=None)
            ]
            legacy = run_instances(
                workloads, ("fcfs", "greedy-pmtn"), penalty_seconds=300.0
            )
            for instance_index, instance in enumerate(legacy):
                for algorithm, result in instance.results.items():
                    row = outcome.select(
                        algorithm=algorithm, load=load
                    )[instance_index]
                    assert row.metric("max_stretch") == result.max_stretch
                    assert row.metric("mean_turnaround") == result.mean_turnaround
                    assert row.workload == instance.workload_name

    def test_workload_names_carry_load_suffix(self, outcome):
        assert outcome.rows[0].workload == "lublin-000-load0.4"

    def test_empty_source_rejected(self):
        from repro.campaign.scenario import CustomSource

        scenario = tiny_scenario(
            source=CustomSource(factory=lambda cluster: [], key="empty"), sweep=()
        )
        with pytest.raises(ReproError):
            Campaign().run(scenario)


class TestParallelEquivalence:
    def test_workers_do_not_change_results(self):
        scenario = tiny_scenario()
        serial = Campaign(workers=1).run(scenario)
        parallel = Campaign(workers=2).run(scenario)
        assert [row.to_dict() for row in serial.rows] == [
            row.to_dict() for row in parallel.rows
        ]


class TestCaching:
    def test_cache_file_keyed_by_scenario_hash(self, tmp_path):
        scenario = tiny_scenario()
        Campaign(cache_dir=tmp_path).run(scenario)
        cache_file = tmp_path / f"{scenario_hash(scenario)}.json"
        assert cache_file.exists()
        payload = json.loads(cache_file.read_text())
        assert payload["scenario_hash"] == scenario_hash(scenario)
        assert payload["num_instances"] == 2
        assert len(payload["runs"]) == 8
        for entry in payload["runs"].values():
            assert set(entry) == {"workload", "metrics"}

    def test_rerun_served_from_cache_without_simulating(self, tmp_path, monkeypatch):
        scenario = tiny_scenario()
        first = Campaign(cache_dir=tmp_path).run(scenario)

        def explode(task):
            raise AssertionError("cache miss: simulation re-executed")

        monkeypatch.setattr(executor_module, "_execute_run", explode)
        second = Campaign(cache_dir=tmp_path).run(scenario)
        assert [row.to_dict() for row in second.rows] == [
            row.to_dict() for row in first.rows
        ]

    def test_fully_cached_rerun_skips_workload_generation(
        self, tmp_path, monkeypatch
    ):
        scenario = tiny_scenario()
        first = Campaign(cache_dir=tmp_path).run(scenario)

        def explode(self, cluster, *, workers=None):
            raise AssertionError("workload source re-invoked on cached rerun")

        monkeypatch.setattr(LublinSource, "workloads", explode)
        second = Campaign(cache_dir=tmp_path).run(scenario)
        assert [row.to_dict() for row in second.rows] == [
            row.to_dict() for row in first.rows
        ]

    def test_pre_schema_cache_ignored(self, tmp_path):
        # A cache whose run entries lack the workload/metrics shape is stale.
        scenario = tiny_scenario()
        digest = scenario_hash(scenario)
        (tmp_path / f"{digest}.json").write_text(
            json.dumps(
                {
                    "scenario_hash": digest,
                    "runs": {"0/0/fcfs": {"max_stretch": 1.0}},
                }
            )
        )
        outcome = Campaign(cache_dir=tmp_path).run(scenario)
        assert len(outcome.rows) == 8
        assert all(row.metrics for row in outcome.rows)

    def test_partial_cache_resumes_missing_cells_only(self, tmp_path, monkeypatch):
        scenario = tiny_scenario()
        digest = scenario_hash(scenario)
        full = Campaign(cache_dir=tmp_path).run(scenario)

        # Drop one cell's runs from the cache to simulate an interrupted run.
        cache_file = tmp_path / f"{digest}.json"
        payload = json.loads(cache_file.read_text())
        removed = {
            key: run for key, run in payload["runs"].items()
            if key.startswith("1/")
        }
        payload["runs"] = {
            key: run for key, run in payload["runs"].items()
            if not key.startswith("1/")
        }
        cache_file.write_text(json.dumps(payload))

        executed = []
        real_execute = executor_module._execute_run

        def counting(task):
            executed.append(task)
            return real_execute(task)

        monkeypatch.setattr(executor_module, "_execute_run", counting)
        resumed = Campaign(cache_dir=tmp_path).run(scenario)
        assert len(executed) == len(removed)  # only the dropped cell re-ran
        assert [row.to_dict() for row in resumed.rows] == [
            row.to_dict() for row in full.rows
        ]

    def test_mismatched_cache_ignored(self, tmp_path):
        scenario = tiny_scenario()
        digest = scenario_hash(scenario)
        (tmp_path / f"{digest}.json").write_text(
            json.dumps({"scenario_hash": "bogus", "runs": {"0/0/fcfs": {}}})
        )
        outcome = Campaign(cache_dir=tmp_path).run(scenario)
        assert all(row.metrics for row in outcome.rows)

    def test_corrupt_cache_ignored(self, tmp_path):
        scenario = tiny_scenario()
        (tmp_path / f"{scenario_hash(scenario)}.json").write_text("{not json")
        outcome = Campaign(cache_dir=tmp_path).run(scenario)
        assert len(outcome.rows) == 8


class TestRunMany:
    def test_results_keyed_by_name(self):
        outcomes = Campaign().run_many(
            [tiny_scenario(sweep=()), tiny_scenario(name="other", sweep=())]
        )
        assert set(outcomes) == {"exec-tiny", "other"}

    def test_duplicate_names_rejected(self):
        with pytest.raises(ReproError):
            Campaign().run_many([tiny_scenario(sweep=()), tiny_scenario(sweep=())])


class TestExportArtifacts:
    def test_writes_json_and_csv_per_campaign(self, tmp_path):
        outcome = Campaign().run(tiny_scenario(sweep=()))
        written = export_campaign_artifacts([outcome], tmp_path)
        assert len(written) == 2
        assert {path.suffix for path in written} == {".json", ".csv"}
        for path in written:
            assert path.exists()
            assert outcome.scenario_hash in path.name
