"""Tests for CampaignResult selection, aggregation, and degradation views."""

from __future__ import annotations

import pytest

from repro.campaign.result import CampaignResult, RunRecord
from repro.exceptions import ConfigurationError


def build_result() -> CampaignResult:
    rows = []
    data = {
        # (cell, instance, algorithm, load) -> max_stretch
        (0, 0, "a", 0.3): 2.0,
        (0, 0, "b", 0.3): 4.0,
        (0, 1, "a", 0.3): 3.0,
        (0, 1, "b", 0.3): 3.0,
        (1, 0, "a", 0.7): 5.0,
        (1, 0, "b", 0.7): 10.0,
        (1, 1, "a", 0.7): 8.0,
        (1, 1, "b", 0.7): 4.0,
    }
    for (cell, instance, algorithm, load), stretch in data.items():
        rows.append(
            RunRecord(
                cell_index=cell,
                instance_index=instance,
                workload=f"w-{instance}",
                algorithm=algorithm,
                params=(("load", load),),
                metrics={"max_stretch": stretch, "samples": [1.0, 2.0]},
            )
        )
    return CampaignResult(
        scenario={"name": "synthetic"}, scenario_hash="deadbeef00000000", rows=rows
    )


class TestSelection:
    def test_algorithms_in_first_seen_order(self):
        assert build_result().algorithms() == ["a", "b"]

    def test_axes(self):
        assert build_result().axes() == ["load"]

    def test_select_by_algorithm_and_axis(self):
        rows = build_result().select(algorithm="a", load=0.7)
        assert [row.metric("max_stretch") for row in rows] == [5.0, 8.0]

    def test_select_with_predicate(self):
        rows = build_result().select(where=lambda row: row.instance_index == 1)
        assert len(rows) == 4

    def test_metric_values(self):
        values = build_result().metric_values("max_stretch", algorithm="b", load=0.3)
        assert values == [4.0, 3.0]

    def test_unknown_metric_rejected(self):
        with pytest.raises(ConfigurationError):
            build_result().rows[0].metric("nonexistent")


class TestDegradation:
    def test_factors_per_instance(self):
        factors = build_result().degradation_factors(load=0.3)
        assert factors == [{"a": 1.0, "b": 2.0}, {"a": 1.0, "b": 1.0}]

    def test_stats_pool_all_selected_instances(self):
        stats = build_result().degradation_stats()
        # a: factors 1, 1, 1, 2 -> avg 1.25; b: 2, 1, 2, 1 -> avg 1.5
        assert stats["a"].average == pytest.approx(1.25)
        assert stats["b"].average == pytest.approx(1.5)
        assert stats["a"].count == 4

    def test_averages_filterable_by_axis(self):
        # load 0.7 instances: a factors (1.0, 2.0), b factors (2.0, 1.0).
        averages = build_result().degradation_averages(load=0.7)
        assert averages["a"] == pytest.approx(1.5)
        assert averages["b"] == pytest.approx(1.5)


class TestAggregate:
    def test_mean_by_algorithm(self):
        aggregated = build_result().aggregate("max_stretch", statistic="mean")
        assert aggregated["a"] == pytest.approx((2 + 3 + 5 + 8) / 4)

    def test_max_by_axis(self):
        aggregated = build_result().aggregate(
            "max_stretch", by="load", statistic="max"
        )
        assert aggregated == {0.3: 4.0, 0.7: 10.0}

    def test_unknown_statistic_rejected(self):
        with pytest.raises(ConfigurationError):
            build_result().aggregate("max_stretch", statistic="median")


class TestFormatSummary:
    def test_mentions_scenario_and_algorithms(self):
        text = build_result().format_summary()
        assert "synthetic" in text
        assert "deadbeef00000000" in text
        assert "max_stretch (mean)" in text
        # List-valued metrics must not grow columns.
        assert "samples" not in text

    def test_empty_result(self):
        empty = CampaignResult(scenario={"name": "e"}, scenario_hash="0" * 16)
        assert "no runs" in empty.format_summary()
