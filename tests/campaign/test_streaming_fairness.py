"""Satellite: the ``fairness`` collector works in streaming campaigns."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.fairness import (
    gini_coefficient,
    gini_from_masses,
    jain_index,
    jain_index_from_moments,
)
from repro.campaign import Campaign
from repro.campaign.scenario import CollectorSpec, GeneratorSource, Scenario
from repro.core.cluster import Cluster
from repro.exceptions import ReproError
from repro.metrics import Moments, QuantileSketch


def _scenario(**overrides):
    options = dict(
        name="fair-stream",
        source=GeneratorSource(
            model="diurnal-poisson",
            instances=2,
            seed_base=7,
            options={
                "num_jobs": 300,
                "mean_interarrival_seconds": 300.0,
                "runtime_log_mean": 5.0,
                "runtime_log_sigma": 1.2,
                "max_runtime_seconds": 14400.0,
            },
        ),
        algorithms=("fcfs",),
        cluster=Cluster(32, 4, 8.0),
        collectors=(CollectorSpec("stretch"), CollectorSpec("fairness")),
    )
    options.update(overrides)
    return Scenario(**options)


class TestStreamingHelpers:
    def test_jain_from_moments_is_exact(self):
        rng = np.random.default_rng(11)
        values = rng.lognormal(1.0, 1.5, size=5000)
        moments = Moments()
        for value in values:
            moments.add(float(value))
        assert jain_index_from_moments(moments) == pytest.approx(
            jain_index(values), rel=1e-9
        )

    def test_jain_from_moments_merges_exactly_enough(self):
        rng = np.random.default_rng(3)
        values = rng.pareto(2.0, size=4000) + 1.0
        left, right = Moments(), Moments()
        for value in values[:2000]:
            left.add(float(value))
        for value in values[2000:]:
            right.add(float(value))
        left.merge(right)
        assert jain_index_from_moments(left) == pytest.approx(
            jain_index(values), rel=1e-6
        )

    def test_gini_from_sketch_masses_is_within_bound(self):
        rng = np.random.default_rng(5)
        for sample in (
            rng.lognormal(0.0, 1.0, size=8000),
            rng.pareto(1.5, size=8000) + 1.0,
            np.full(100, 3.7),
        ):
            sketch = QuantileSketch(relative_error=0.01)
            for value in sample:
                sketch.add(float(value))
            exact = gini_coefficient(sample)
            approx = gini_from_masses(sketch.bucket_masses())
            # Representatives are within alpha of their values; the Gini of
            # the mass view lands within a few alpha of the exact one.
            assert approx == pytest.approx(exact, abs=0.05)

    def test_gini_masses_validation(self):
        with pytest.raises(ReproError, match="empty"):
            gini_from_masses([])
        with pytest.raises(ReproError, match="non-negative"):
            gini_from_masses([(-1.0, 3)])

    def test_bucket_masses_cover_all_counts(self):
        sketch = QuantileSketch()
        for value in (-2.0, 0.0, 0.0, 1.0, 5.0):
            sketch.add(value)
        masses = sketch.bucket_masses()
        assert sum(count for _, count in masses) == 5
        values = [value for value, _ in masses]
        assert values == sorted(values)
        assert (0.0, 2) in masses


class TestStreamingFairnessCampaign:
    def test_fairness_collector_streams(self):
        outcome = Campaign(streaming=True).run(_scenario())
        row = outcome.rows[0]
        for name in ("jain_stretch", "gini_stretch", "p95_stretch"):
            assert name in row.metrics
        assert 0.0 < row.metric("jain_stretch") <= 1.0
        assert 0.0 <= row.metric("gini_stretch") < 1.0

    def test_streamed_row_matches_pooled_exact_values(self):
        scenario = _scenario()
        streamed = Campaign(streaming=True).run(scenario).rows[0]
        # Pool the per-job stretches of every instance (what the merged cell
        # represents) and compare against the streamed indices.
        from repro.core.engine import SimulationConfig, Simulator
        from repro.schedulers.registry import create_scheduler

        pooled = []
        for source in scenario.source.streaming_sources(scenario.cluster):
            simulator = Simulator(
                scenario.cluster, create_scheduler("fcfs"), SimulationConfig()
            )
            result = simulator.run(list(source.jobs(scenario.cluster)))
            pooled.extend(result.stretches().tolist())
        pooled = np.array(pooled)
        assert streamed.metric("jain_stretch") == pytest.approx(
            jain_index(pooled), rel=1e-6
        )
        assert streamed.metric("gini_stretch") == pytest.approx(
            gini_coefficient(pooled), abs=0.05
        )
        p95 = float(np.sort(pooled)[int(np.ceil(0.95 * pooled.size)) - 1])
        assert streamed.metric("p95_stretch") == pytest.approx(p95, rel=0.05)

    def test_exact_path_unchanged(self):
        # The default (materialized) campaign still routes through the exact
        # per-job computation — same values as analysis.fairness directly.
        scenario = _scenario()
        rows = Campaign().run(scenario).rows
        assert all("jain_stretch" in row.metrics for row in rows)
