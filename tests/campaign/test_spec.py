"""Tests for scenario spec files and the ``repro-dfrs run`` subcommand."""

from __future__ import annotations

import json
import sys

import pytest

from repro.campaign.spec import load_scenario, scenario_from_spec_text
from repro.cli import main
from repro.exceptions import ConfigurationError

CROSS_SWEEP_SPEC = {
    "name": "load-period-cross",
    "cluster": {"nodes": 16, "cores_per_node": 4, "node_memory_gb": 8.0},
    "source": {"type": "lublin", "num_traces": 1, "num_jobs": 20, "seed_base": 11},
    "algorithms": ["easy", "dynmcb8-asap-per-{period}"],
    "penalty_seconds": 300,
    "sweep": {"load": [0.3, 0.7], "period": [60, 600]},
    "collectors": ["stretch", "costs"],
}


class TestSpecParsing:
    def test_json_spec(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(CROSS_SWEEP_SPEC))
        scenario = load_scenario(path)
        assert scenario.name == "load-period-cross"
        assert scenario.cluster.num_nodes == 16
        assert len(scenario.expand()) == 4
        assert scenario.resolved_algorithms({"load": 0.3, "period": 600}) == [
            "easy",
            "dynmcb8-asap-per-600",
        ]

    def test_unknown_extension_rejected(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("{}")
        with pytest.raises(ConfigurationError):
            load_scenario(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_scenario(tmp_path / "missing.json")

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario_from_spec_text("{not json", format="json")

    def test_bare_string_algorithms_in_spec_rejected(self):
        spec = dict(CROSS_SWEEP_SPEC, algorithms="easy")
        with pytest.raises(ConfigurationError):
            scenario_from_spec_text(json.dumps(spec), format="json")

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario_from_spec_text("[1, 2]", format="json")

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario_from_spec_text("{}", format="ini")

    def test_shipped_example_spec_parses(self):
        import pathlib

        example = (
            pathlib.Path(__file__).resolve().parents[2]
            / "examples" / "scenarios" / "load_period_cross.json"
        )
        scenario = load_scenario(example)
        assert scenario.name == "load-period-cross"
        assert len(scenario.expand()) == 9

    def test_shipped_generated_transform_spec_parses(self):
        import pathlib

        example = (
            pathlib.Path(__file__).resolve().parents[2]
            / "examples" / "scenarios" / "generated_transform.json"
        )
        scenario = load_scenario(example)
        assert scenario.name == "generated-transform-chain"
        assert scenario.source.kind == "transform"
        # The chain round-trips through the canonical spec form.
        from repro.campaign.scenario import source_from_dict

        assert source_from_dict(scenario.source.to_dict()).to_dict() == (
            scenario.source.to_dict()
        )

    @pytest.mark.skipif(
        sys.version_info < (3, 11), reason="tomllib needs Python 3.11+"
    )
    def test_toml_spec(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(
            "\n".join(
                [
                    'name = "toml-scenario"',
                    'algorithms = ["fcfs", "easy"]',
                    "penalty_seconds = 300",
                    "[source]",
                    'type = "lublin"',
                    "num_traces = 1",
                    "num_jobs = 20",
                    "[sweep]",
                    "load = [0.5]",
                ]
            )
        )
        scenario = load_scenario(path)
        assert scenario.name == "toml-scenario"
        assert scenario.sweep == (("load", (0.5,)),)


class TestRunSubcommand:
    """The acceptance scenario: a cross-sweep runs from a spec file with
    zero new driver code."""

    @pytest.fixture()
    def spec_path(self, tmp_path):
        path = tmp_path / "cross.json"
        path.write_text(json.dumps(CROSS_SWEEP_SPEC))
        return path

    def test_run_prints_summary(self, spec_path, capsys):
        code = main(["run", str(spec_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "load-period-cross" in output
        # Both periodic variants were materialised from the template axis.
        assert "dynmcb8-asap-per-60" in output
        assert "dynmcb8-asap-per-600" in output

    def test_run_with_export_and_cache(self, spec_path, tmp_path, capsys):
        export_dir = tmp_path / "out"
        cache_dir = tmp_path / "cache"
        code = main(
            [
                "--export-dir", str(export_dir),
                "--cache-dir", str(cache_dir),
                "run", str(spec_path),
            ]
        )
        assert code == 0
        assert len(list(export_dir.glob("load-period-cross-*.json"))) == 1
        assert len(list(export_dir.glob("load-period-cross-*.rows.csv"))) == 1
        assert len(list(cache_dir.glob("*.json"))) == 1
        # Second invocation is served from the cache and prints identically.
        first = capsys.readouterr().out
        code = main(
            [
                "--export-dir", str(export_dir),
                "--cache-dir", str(cache_dir),
                "run", str(spec_path),
            ]
        )
        assert code == 0
        assert capsys.readouterr().out == first
