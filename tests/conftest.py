"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.job import JobSpec
from repro.workloads.lublin import LublinWorkloadGenerator
from repro.workloads.model import Workload


@pytest.fixture
def small_cluster() -> Cluster:
    """An 8-node quad-core cluster used by most unit tests."""
    return Cluster(num_nodes=8, cores_per_node=4, node_memory_gb=8.0)


@pytest.fixture
def tiny_cluster() -> Cluster:
    """A 4-node cluster for hand-constructed scheduling scenarios."""
    return Cluster(num_nodes=4, cores_per_node=4, node_memory_gb=8.0)


@pytest.fixture
def small_workload(small_cluster: Cluster) -> Workload:
    """A deterministic 30-job synthetic workload."""
    generator = LublinWorkloadGenerator(small_cluster)
    return generator.generate(30, seed=42)


def make_job(
    job_id: int,
    *,
    submit: float = 0.0,
    tasks: int = 1,
    cpu: float = 1.0,
    mem: float = 0.1,
    runtime: float = 100.0,
) -> JobSpec:
    """Terse JobSpec constructor for hand-written scenarios."""
    return JobSpec(
        job_id=job_id,
        submit_time=submit,
        num_tasks=tasks,
        cpu_need=cpu,
        mem_requirement=mem,
        execution_time=runtime,
    )
