"""Property-style accuracy tests for the quantile sketch.

The sketch documents a hard guarantee: for any stream and any ``q``,
``quantile(q)`` is within ``relative_error`` (relatively) of the exact
nearest-rank quantile ``x_(max(1, ceil(q·n)))``.  These tests assert that
bound on adversarial distributions — heavy-tail Downey-style runtimes,
constants, single elements, mixed signs — and the exact-merge property the
streaming campaign executor relies on.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core.cluster import Cluster
from repro.exceptions import ConfigurationError, ReproError
from repro.metrics import QuantileSketch, accumulator_from_dict
from repro.traces import DowneyTraceSource

QUANTILES = (0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0)


def exact_nearest_rank(values, q: float) -> float:
    ordered = np.sort(np.asarray(values, dtype=float))
    rank = max(1, int(math.ceil(q * ordered.size - 1e-9)))
    return float(ordered[rank - 1])


def assert_within_bound(sketch: QuantileSketch, values, quantiles=QUANTILES):
    for q in quantiles:
        exact = exact_nearest_rank(values, q)
        estimate = sketch.quantile(q)
        tolerance = sketch.relative_error * abs(exact) + 1e-12
        assert abs(estimate - exact) <= tolerance, (
            f"q={q}: estimate {estimate} vs exact {exact} "
            f"(alpha={sketch.relative_error})"
        )


def sketch_of(values, relative_error: float = 0.01) -> QuantileSketch:
    sketch = QuantileSketch(relative_error=relative_error)
    sketch.update(values)
    return sketch


class TestErrorBound:
    @pytest.mark.parametrize("alpha", [0.05, 0.01, 0.001])
    def test_heavy_tail_lognormal(self, alpha):
        values = np.random.default_rng(0).lognormal(mean=4.0, sigma=2.5, size=20000)
        assert_within_bound(sketch_of(values, alpha), values)

    def test_downey_runtimes(self):
        # The adversary from the paper's own workload family: log-uniform
        # runtimes spanning several decades.
        cluster = Cluster(64, 4, 8.0)
        source = DowneyTraceSource(num_jobs=5000, seed=13)
        runtimes = [spec.execution_time for spec in source.jobs(cluster)]
        assert_within_bound(sketch_of(runtimes), runtimes)

    def test_pareto_tail(self):
        values = (np.random.default_rng(5).pareto(a=1.1, size=30000) + 1.0) * 3.0
        assert_within_bound(sketch_of(values), values)

    def test_constant_stream(self):
        values = [42.0] * 1000
        sketch = sketch_of(values)
        assert_within_bound(sketch, values)
        # Clamping into [min, max] makes constants exact at the extremes.
        assert sketch.quantile(0.0) == 42.0
        assert sketch.quantile(1.0) == 42.0

    def test_single_element_stream(self):
        sketch = sketch_of([7.5])
        for q in QUANTILES:
            assert sketch.quantile(q) == 7.5

    def test_zeros_are_exact(self):
        values = [0.0] * 50 + [10.0] * 50
        sketch = sketch_of(values)
        assert sketch.quantile(0.25) == 0.0
        assert_within_bound(sketch, values)

    def test_mixed_signs(self):
        rng = np.random.default_rng(9)
        values = np.concatenate(
            [-rng.lognormal(2.0, 1.5, 5000), [0.0] * 37, rng.lognormal(2.0, 1.5, 5000)]
        )
        assert_within_bound(sketch_of(values), values)

    def test_extreme_quantiles_exact(self):
        values = np.random.default_rng(3).lognormal(1.0, 2.0, 5000)
        sketch = sketch_of(values)
        assert sketch.quantile(0.0) == float(values.min())
        assert sketch.quantile(1.0) == float(values.max())

    def test_wide_dynamic_range_stays_small(self):
        # Six decades at 1 % accuracy: memory must stay in the hundreds of
        # buckets, not O(n).
        values = np.geomspace(1e-2, 1e4, 100000)
        sketch = sketch_of(values)
        assert len(sketch.buckets) < 1500
        assert_within_bound(sketch, values, quantiles=(0.01, 0.5, 0.99))


class TestMerge:
    def test_merge_equals_single_pass_exactly(self):
        values = np.random.default_rng(2).lognormal(3.0, 2.0, 9000)
        whole = sketch_of(values)
        parts = [sketch_of(values[:3000]), sketch_of(values[3000:5500]), sketch_of(values[5500:])]
        merged = parts[0].merge(parts[1]).merge(parts[2])
        assert merged.to_dict() == whole.to_dict()

    def test_merge_preserves_bound(self):
        rng = np.random.default_rng(8)
        chunks = [rng.lognormal(1.0 + shift, 1.0, 4000) for shift in range(3)]
        merged = sketch_of(chunks[0])
        for chunk in chunks[1:]:
            merged.merge(sketch_of(chunk))
        assert_within_bound(merged, np.concatenate(chunks))

    def test_accuracy_mismatch_rejected(self):
        with pytest.raises(ReproError, match="accuracies"):
            QuantileSketch(relative_error=0.01).merge(QuantileSketch(relative_error=0.05))


class TestValidationAndSerialisation:
    def test_empty_sketch_has_no_quantiles(self):
        with pytest.raises(ReproError, match="empty"):
            QuantileSketch().quantile(0.5)

    def test_bad_alpha_rejected(self):
        for alpha in (0.0, 1.0, -0.5):
            with pytest.raises(ConfigurationError):
                QuantileSketch(relative_error=alpha)

    def test_non_finite_values_rejected(self):
        sketch = QuantileSketch()
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(ReproError):
                sketch.add(bad)

    def test_out_of_range_query_rejected(self):
        sketch = sketch_of([1.0, 2.0])
        with pytest.raises(ReproError):
            sketch.quantile(1.5)
        with pytest.raises(ReproError):
            sketch.percentile(-1.0)

    def test_round_trip_preserves_quantiles(self):
        values = np.random.default_rng(4).lognormal(2.0, 2.0, 3000)
        sketch = sketch_of(values)
        restored = accumulator_from_dict(json.loads(json.dumps(sketch.to_dict())))
        for q in QUANTILES:
            assert restored.quantile(q) == sketch.quantile(q)

    def test_percentile_is_quantile(self):
        values = np.random.default_rng(6).lognormal(1.0, 1.0, 500)
        sketch = sketch_of(values)
        assert sketch.percentile(95) == sketch.quantile(0.95)

    def test_summary_keys(self):
        summary = sketch_of([1.0, 2.0, 3.0]).summary()
        assert set(summary) == {"count", "p50", "p90", "p99", "min", "max"}
        assert QuantileSketch().summary() == {"count": 0.0}


class TestZeroHeavyStreams:
    """Regression pin for the BENCH_serve queue-latency quantiles.

    The committed serve bench shows ``p50 = p90 = 0.0`` with a non-zero
    mean — suspicious at first sight, but correct: most jobs in a
    sub-critical replay are placed at their submit instant and record a
    queue latency of exactly ``0.0``.  These tests pin the sketch's exact
    zero accounting so a zero-handling regression cannot masquerade as a
    scheduling improvement (or vice versa).
    """

    def test_zero_majority_pins_low_quantiles_to_zero(self):
        # 91% zeros: every quantile at or below 0.91 must be exactly 0.0,
        # while p99 must reach into the nonzero tail.
        values = [0.0] * 910 + [float(i) for i in range(1, 91)]
        sketch = sketch_of(values)
        assert sketch.quantile(0.50) == 0.0
        assert sketch.quantile(0.90) == 0.0
        assert sketch.quantile(0.99) > 0.0

    def test_zero_minority_does_not_zero_the_median(self):
        values = [0.0] * 40 + [10.0] * 60
        sketch = sketch_of(values)
        assert sketch.quantile(0.50) == 10.0
        assert sketch.quantile(0.40) == 0.0

    def test_zeros_survive_merge_exactly(self):
        left = sketch_of([0.0] * 500)
        right = sketch_of([5.0] * 100)
        left.merge(right)
        assert left.count == 600
        assert left.quantile(0.50) == 0.0
        assert left.quantile(0.99) == 5.0

    def test_all_zero_stream(self):
        sketch = sketch_of([0.0] * 100)
        for q in QUANTILES:
            assert sketch.quantile(q) == 0.0
        assert sketch.summary()["max"] == 0.0

    def test_zeros_rank_between_negatives_and_positives(self):
        sketch = sketch_of([-2.0] * 10 + [0.0] * 10 + [3.0] * 10)
        # Nonzero values are bucketed (relative error); zeros are exact.
        assert sketch.quantile(0.2) == pytest.approx(-2.0, rel=0.01)
        assert sketch.quantile(0.5) == 0.0
        assert sketch.quantile(0.9) == pytest.approx(3.0, rel=0.01)
