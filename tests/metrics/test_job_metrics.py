"""Tests for the composite job-metrics accumulator and bundle helpers."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.metrics import (
    JobMetricsAccumulator,
    Moments,
    SumAccumulator,
    accumulator_from_dict,
    bundle_from_dict,
    bundle_to_dict,
    merge_bundles,
)


def _observe_range(accumulator: JobMetricsAccumulator, start: int, stop: int) -> None:
    for job_id in range(start, stop):
        accumulator.observe(
            job_id=job_id,
            stretch=float(job_id % 13 + 1),
            turnaround=float(job_id * 2 + 10),
            wait=float(job_id % 5),
        )


class TestJobMetricsAccumulator:
    def test_exact_headline_statistics(self):
        accumulator = JobMetricsAccumulator()
        _observe_range(accumulator, 0, 200)
        stretches = np.array([job_id % 13 + 1 for job_id in range(200)], dtype=float)
        summary = accumulator.summary()
        assert summary["num_jobs"] == 200
        assert summary["max_stretch"] == stretches.max()
        assert summary["mean_stretch"] == pytest.approx(stretches.mean(), rel=1e-12)
        assert accumulator.stretch.minimum == stretches.min()

    def test_quantiles_within_bound(self):
        accumulator = JobMetricsAccumulator(relative_error=0.01)
        _observe_range(accumulator, 0, 500)
        stretches = np.sort([job_id % 13 + 1 for job_id in range(500)])
        import math
        for q in (0.5, 0.9, 0.99):
            exact = stretches[max(1, math.ceil(q * 500 - 1e-9)) - 1]
            assert abs(accumulator.stretch_quantile(q) - exact) <= 0.01 * exact

    def test_worst_jobs_tracked_by_id(self):
        accumulator = JobMetricsAccumulator()
        _observe_range(accumulator, 0, 50)
        worst = accumulator.worst_stretch.items()
        assert worst[0][0] == 13.0  # job_id % 13 + 1 peaks at 13
        assert all(job_id % 13 == 12 for _, job_id in worst[:3])

    def test_merge_equals_single_stream(self):
        single = JobMetricsAccumulator()
        _observe_range(single, 0, 300)
        first, second = JobMetricsAccumulator(), JobMetricsAccumulator()
        _observe_range(first, 0, 120)
        _observe_range(second, 120, 300)
        merged = first.merge(second)
        assert merged.count == single.count
        assert merged.stretch.maximum == single.stretch.maximum
        assert merged.stretch_sketch.to_dict() == single.stretch_sketch.to_dict()
        assert merged.worst_stretch.to_dict() == single.worst_stretch.to_dict()
        assert merged.exemplars.to_dict() == single.exemplars.to_dict()

    def test_registry_round_trip(self):
        accumulator = JobMetricsAccumulator()
        _observe_range(accumulator, 0, 40)
        payload = json.loads(json.dumps(accumulator.to_dict()))
        restored = accumulator_from_dict(payload)
        assert isinstance(restored, JobMetricsAccumulator)
        assert restored.to_dict() == accumulator.to_dict()
        assert restored.summary() == accumulator.summary()

    def test_direct_add_rejected(self):
        with pytest.raises(ReproError, match="observe"):
            JobMetricsAccumulator().add(1.0)

    def test_empty_summary(self):
        assert JobMetricsAccumulator().summary() == {"num_jobs": 0.0}


class TestBundles:
    def _bundle(self, values):
        moments = Moments()
        total = SumAccumulator()
        for value in values:
            moments.add(value)
            total.add(value)
        return {"moments": moments, "total": total}

    def test_round_trip(self):
        bundle = self._bundle([1.0, 2.0, 3.0])
        restored = bundle_from_dict(json.loads(json.dumps(bundle_to_dict(bundle))))
        assert set(restored) == {"moments", "total"}
        assert restored["total"].to_dict() == bundle["total"].to_dict()

    def test_merge_name_wise(self):
        merged = merge_bundles([self._bundle([1.0, 2.0]), self._bundle([3.0])])
        assert merged["total"].total == 6.0
        assert merged["moments"].count == 3

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ReproError, match="different accumulator sets"):
            merge_bundles([self._bundle([1.0]), {"total": SumAccumulator()}])

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            merge_bundles([])
