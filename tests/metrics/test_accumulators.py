"""Accumulator contract tests: merge associativity, round trips, exactness."""

from __future__ import annotations

import copy
import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ReproError
from repro.metrics import (
    ExactDistribution,
    FixedHistogram,
    Moments,
    QuantileSketch,
    ReservoirSample,
    SumAccumulator,
    TopK,
    accumulator_from_dict,
    available_accumulators,
    merge_accumulators,
)


def _sample_values(seed: int = 0, size: int = 400) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.lognormal(mean=2.0, sigma=1.5, size=size)


def _fresh_accumulators():
    """One instance of every registered accumulator type (keyed intake aware)."""
    return {
        "moments": Moments(),
        "sum": SumAccumulator(),
        "exact": ExactDistribution(),
        "histogram": FixedHistogram(low=0.0, high=50.0, bins=8),
        "top-k": TopK(k=5),
        "reservoir": ReservoirSample(k=7, seed=11),
        "quantile-sketch": QuantileSketch(relative_error=0.01),
    }


def _fill(accumulator, values, key_offset=0):
    for index, value in enumerate(values):
        if isinstance(accumulator, (TopK, ReservoirSample)):
            accumulator.add(float(value), key=key_offset + index)
        else:
            accumulator.add(float(value))
    return accumulator


class TestRegistry:
    def test_every_standard_type_registered(self):
        names = available_accumulators()
        for kind in (
            "moments", "sum", "exact", "histogram", "top-k", "reservoir",
            "quantile-sketch", "job-metrics",
        ):
            assert kind in names

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown accumulator"):
            accumulator_from_dict({"type": "no-such-sketch"})

    def test_missing_type_rejected(self):
        with pytest.raises(ConfigurationError, match="'type'"):
            accumulator_from_dict({})


class TestRoundTrips:
    @pytest.mark.parametrize("kind", sorted(_fresh_accumulators()))
    def test_state_round_trip(self, kind):
        accumulator = _fill(_fresh_accumulators()[kind], _sample_values(3, 120))
        payload = accumulator.to_dict()
        # The canonical form must survive JSON (cache files, worker IPC).
        restored = accumulator_from_dict(json.loads(json.dumps(payload)))
        assert restored.to_dict() == payload
        assert restored.count == accumulator.count

    @pytest.mark.parametrize("kind", sorted(_fresh_accumulators()))
    def test_empty_round_trip(self, kind):
        accumulator = _fresh_accumulators()[kind]
        restored = accumulator_from_dict(json.loads(json.dumps(accumulator.to_dict())))
        assert restored.count == 0
        assert restored.to_dict() == accumulator.to_dict()


class TestMergeAssociativity:
    @pytest.mark.parametrize("kind", sorted(_fresh_accumulators()))
    def test_grouping_invariance(self, kind):
        values = _sample_values(7, 300)
        chunks = [values[:100], values[100:180], values[180:]]
        offsets = [0, 100, 180]
        parts = [
            _fill(_fresh_accumulators()[kind], chunk, key_offset=offset)
            for chunk, offset in zip(chunks, offsets)
        ]
        left = copy.deepcopy(parts[0]).merge(copy.deepcopy(parts[1]))
        left = left.merge(copy.deepcopy(parts[2]))
        right = copy.deepcopy(parts[1]).merge(copy.deepcopy(parts[2]))
        right = copy.deepcopy(parts[0]).merge(right)
        a, b = left.to_dict(), right.to_dict()
        if kind == "moments":
            # Chan's formula is associative up to floating-point rounding.
            assert a["n"] == b["n"] and a["min"] == b["min"] and a["max"] == b["max"]
            assert a["mean"] == pytest.approx(b["mean"], rel=1e-12)
            assert a["m2"] == pytest.approx(b["m2"], rel=1e-9)
        elif kind == "sum":
            # Float addition is associative up to rounding; integer tallies
            # (the production use) are exact — see the dedicated test below.
            assert a["n"] == b["n"]
            assert a["total"] == pytest.approx(b["total"], rel=1e-12)
        else:
            assert a == b

    @pytest.mark.parametrize(
        "kind", ["histogram", "top-k", "reservoir", "quantile-sketch"]
    )
    def test_merged_partials_equal_single_pass(self, kind):
        values = _sample_values(11, 250)
        single = _fill(_fresh_accumulators()[kind], values)
        parts = [
            _fill(_fresh_accumulators()[kind], values[:90], key_offset=0),
            _fill(_fresh_accumulators()[kind], values[90:], key_offset=90),
        ]
        assert merge_accumulators(parts).to_dict() == single.to_dict()

    def test_sum_tallies_merge_exactly(self):
        # Integer tallies (the production use: cost counters, job counts)
        # merge without any floating-point drift.
        values = [float(v) for v in range(250)]
        single = _fill(SumAccumulator(), values)
        parts = [_fill(SumAccumulator(), values[:90]), _fill(SumAccumulator(), values[90:])]
        assert merge_accumulators(parts).to_dict() == single.to_dict()

    def test_type_mismatch_rejected(self):
        with pytest.raises(ReproError, match="cannot merge"):
            Moments().merge(SumAccumulator())

    def test_empty_sequence_rejected(self):
        with pytest.raises(ReproError):
            merge_accumulators([])


class TestMoments:
    def test_matches_numpy(self):
        values = _sample_values(1, 500)
        moments = _fill(Moments(), values)
        assert moments.count == 500
        assert moments.mean == pytest.approx(values.mean(), rel=1e-12)
        assert moments.std == pytest.approx(values.std(ddof=0), rel=1e-9)
        assert moments.minimum == values.min()
        assert moments.maximum == values.max()
        assert moments.total == pytest.approx(values.sum(), rel=1e-12)

    def test_single_element(self):
        moments = _fill(Moments(), [4.25])
        assert moments.count == 1
        assert moments.mean == 4.25
        assert moments.std == 0.0
        assert moments.minimum == moments.maximum == 4.25

    def test_merge_with_empty_is_identity(self):
        moments = _fill(Moments(), [1.0, 2.0, 3.0])
        before = moments.to_dict()
        assert moments.merge(Moments()).to_dict() == before
        empty = Moments()
        empty.merge(_fill(Moments(), [1.0, 2.0, 3.0]))
        assert empty.to_dict() == before


class TestExactDistribution:
    def test_byte_identical_to_numpy(self):
        values = list(_sample_values(2, 97))
        exact = ExactDistribution(values)
        array = np.asarray(values, dtype=float)
        assert exact.percentile(95) == float(np.percentile(array, 95))
        assert exact.quantile(0.5) == float(np.percentile(array, 50))

    def test_empty_percentile_rejected(self):
        with pytest.raises(ReproError):
            ExactDistribution().percentile(50)


class TestFixedHistogram:
    def test_under_over_flow(self):
        histogram = FixedHistogram(low=0.0, high=10.0, bins=5)
        histogram.update([-1.0, 0.0, 9.999, 10.0, 25.0, 5.0])
        assert histogram.underflow == 1
        assert histogram.overflow == 2
        assert sum(histogram.counts) == 3
        assert histogram.count == 6
        assert len(histogram.edges()) == 6

    def test_config_mismatch_rejected(self):
        with pytest.raises(ReproError, match="bin configurations"):
            FixedHistogram(0, 1, 4).merge(FixedHistogram(0, 1, 5))

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedHistogram(low=1.0, high=1.0, bins=4)
        with pytest.raises(ConfigurationError):
            FixedHistogram(low=0.0, high=1.0, bins=0)


class TestTopK:
    def test_keeps_largest_with_deterministic_ties(self):
        tracker = TopK(k=3)
        for key, value in enumerate([5.0, 1.0, 9.0, 9.0, 2.0]):
            tracker.add(value, key=key)
        assert tracker.items() == [(9.0, 2), (9.0, 3), (5.0, 0)]
        assert tracker.count == 5

    def test_numeric_keys_tie_break_numerically(self):
        # '10' < '9' lexicographically; the documented order is numeric.
        tracker = TopK(k=2)
        tracker.add(9.0, key=10)
        tracker.add(9.0, key=9)
        assert tracker.items() == [(9.0, 9), (9.0, 10)]

    def test_k_mismatch_rejected(self):
        with pytest.raises(ReproError):
            TopK(k=2).merge(TopK(k=3))


class TestReservoirSample:
    def test_uniform_coverage(self):
        # Every key should be selectable: with many disjoint streams of the
        # same size, each key's inclusion frequency should be near k/n.
        hits = {}
        for seed_key in range(200):
            reservoir = ReservoirSample(k=4, seed=seed_key)
            for key in range(20):
                reservoir.add(key, key=key)
            for key in reservoir.keys():
                hits[key] = hits.get(key, 0) + 1
        frequencies = [hits.get(key, 0) / 200 for key in range(20)]
        assert all(0.05 < frequency < 0.45 for frequency in frequencies), frequencies

    def test_merge_equals_single_pass(self):
        single = ReservoirSample(k=5, seed=3)
        first = ReservoirSample(k=5, seed=3)
        second = ReservoirSample(k=5, seed=3)
        for key in range(60):
            single.add(key * 1.5, key=key)
            (first if key < 30 else second).add(key * 1.5, key=key)
        assert first.merge(second).to_dict() == single.to_dict()

    def test_needs_key(self):
        with pytest.raises(ReproError, match="unique key"):
            ReservoirSample(k=2).add(1.0)

    def test_seed_mismatch_rejected(self):
        with pytest.raises(ReproError):
            ReservoirSample(k=2, seed=1).merge(ReservoirSample(k=2, seed=2))
