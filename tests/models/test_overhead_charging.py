"""Overhead-model semantics: what each model charges and where it lands.

Unit-level: per-model arithmetic (event gating, memory scaling, per-class
bandwidth) and constructor validation.  Engine-level: charges land on
``penalty_remaining`` (delaying completions) and in the run's cost tally
(``overhead_events`` / ``overhead_seconds``) at exactly the preemption /
migration / checkpoint / resume instants.
"""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig, Simulator
from repro.core.job import JobSpec
from repro.exceptions import ConfigurationError
from repro.models import (
    CheckpointBandwidthOverheadModel,
    ConstantOverheadModel,
    MemoryLinearOverheadModel,
    NoOverheadModel,
    job_memory_gb,
)
from repro.platform import TraceNodeEventSource
from repro.schedulers.registry import create_scheduler
from repro.workloads.lublin import LublinWorkloadGenerator

#: 4 tasks x 0.25 of an 8 GB node = 8 GB of state to move.
SPEC = JobSpec(0, 0.0, 4, 1.0, 0.25, 100.0)
CLUSTER = Cluster(8, 4, 8.0)


class TestModelArithmetic:
    def test_job_memory_is_physical_footprint(self):
        assert job_memory_gb(SPEC, CLUSTER) == pytest.approx(8.0)

    def test_none_charges_nothing_anywhere(self):
        model = NoOverheadModel()
        for event in ("preemption", "migration", "resume", "checkpoint"):
            assert model.overhead_seconds(event, SPEC, CLUSTER) == 0.0

    def test_constant_charges_per_event_kind(self):
        model = ConstantOverheadModel(
            preemption_seconds=5.0, migration_seconds=10.0, resume_seconds=2.0
        )
        assert model.overhead_seconds("preemption", SPEC, CLUSTER) == 5.0
        assert model.overhead_seconds("migration", SPEC, CLUSTER) == 10.0
        assert model.overhead_seconds("resume", SPEC, CLUSTER) == 2.0
        assert model.overhead_seconds("checkpoint", SPEC, CLUSTER) == 0.0

    def test_memory_linear_scales_with_footprint_and_gates_events(self):
        model = MemoryLinearOverheadModel(
            seconds_per_gb=0.5, events=("migration",)
        )
        assert model.overhead_seconds("migration", SPEC, CLUSTER) == (
            pytest.approx(4.0)
        )
        assert model.overhead_seconds("preemption", SPEC, CLUSTER) == 0.0

    def test_checkpoint_bandwidth_uses_slowest_class_in_assignment(self):
        model = CheckpointBandwidthOverheadModel(
            bandwidth_gb_per_sec=2.0, class_bandwidth={"slow": 0.5}
        )
        classes = ("fast", "slow")
        # No assignment known: default bandwidth (8 GB / 2 GB/s).
        assert model.overhead_seconds("checkpoint", SPEC, CLUSTER) == (
            pytest.approx(4.0)
        )
        # Assignment touches the slow class: its 0.5 GB/s dominates.
        assert model.overhead_seconds(
            "checkpoint", SPEC, CLUSTER, nodes=(0, 1), node_classes=classes
        ) == pytest.approx(16.0)
        # Fast-only assignment: no override for "fast", default applies.
        assert model.overhead_seconds(
            "checkpoint", SPEC, CLUSTER, nodes=(0,), node_classes=classes
        ) == pytest.approx(4.0)

    def test_unknown_event_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown overhead event"):
            NoOverheadModel().overhead_seconds("restart", SPEC, CLUSTER)

    def test_invalid_options_rejected(self):
        with pytest.raises(ConfigurationError, match="preemption_seconds"):
            ConstantOverheadModel(preemption_seconds=-1.0)
        with pytest.raises(ConfigurationError, match="at least one event"):
            MemoryLinearOverheadModel(seconds_per_gb=1.0, events=())
        with pytest.raises(ConfigurationError, match="duplicates"):
            MemoryLinearOverheadModel(
                seconds_per_gb=1.0, events=("resume", "resume")
            )
        with pytest.raises(ConfigurationError, match="bandwidth_gb_per_sec"):
            CheckpointBandwidthOverheadModel(bandwidth_gb_per_sec=0.0)
        with pytest.raises(ConfigurationError, match="class_bandwidth"):
            CheckpointBandwidthOverheadModel(
                bandwidth_gb_per_sec=1.0, class_bandwidth={"slow": -2.0}
            )


class TestEngineCharging:
    def test_checkpoint_and_resume_charges_delay_completions(self):
        # The failure-semantics scenario from the platform tests: dynmcb8
        # packs both jobs onto node 0, which fails at t=200; both checkpoint
        # and resume on node 1 within the same event and (uncharged) finish
        # at exactly t=1000.  A 50 s checkpoint + 25 s resume charge lands
        # on penalty_remaining, so each finishes 75 s later.
        specs = [
            JobSpec(0, 0.0, 1, 0.5, 0.4, 1000.0),
            JobSpec(1, 0.0, 1, 0.5, 0.4, 1000.0),
        ]
        config = SimulationConfig(
            node_events=TraceNodeEventSource(
                events_list=((200.0, 0, "down"), (500.0, 0, "up"))
            ),
            failure_policy="migrate",
            overhead_model=ConstantOverheadModel(
                checkpoint_seconds=50.0, resume_seconds=25.0
            ),
        )
        result = Simulator(
            Cluster(2), create_scheduler("dynmcb8"), config
        ).run(specs)
        for record in result.jobs:
            assert record.completion_time == pytest.approx(1075.0)
        assert result.costs.overhead_events == 4
        assert result.costs.overhead_seconds == pytest.approx(150.0)

    def test_preemption_charges_match_preemption_count(self):
        # Failure-free run: every preemption charge instant coincides with a
        # preemption tally, so a preemption-only constant model must record
        # exactly preemption_count events at 2 s each (migrations and
        # resumes are consulted too, but charge zero and go unrecorded).
        workload = LublinWorkloadGenerator(CLUSTER).generate(40, seed=2010)
        config = SimulationConfig(
            overhead_model=ConstantOverheadModel(preemption_seconds=2.0)
        )
        result = Simulator(
            CLUSTER, create_scheduler("dynmcb8-asap-per-600"), config
        ).run(workload.jobs)
        count = result.costs.preemption_count
        assert count > 0
        assert result.costs.overhead_events == count
        assert result.costs.overhead_seconds == pytest.approx(2.0 * count)

    def test_overheads_inflate_stretch_monotonically(self):
        workload = LublinWorkloadGenerator(CLUSTER).generate(40, seed=2010)

        def mean_stretch(seconds_per_gb):
            model = (
                MemoryLinearOverheadModel(seconds_per_gb=seconds_per_gb)
                if seconds_per_gb
                else None
            )
            result = Simulator(
                CLUSTER,
                create_scheduler("greedy-pmtn-migr"),
                SimulationConfig(overhead_model=model),
            ).run(workload.jobs)
            return result.mean_stretch, result.costs.overhead_seconds

        free_stretch, free_seconds = mean_stretch(0.0)
        costly_stretch, costly_seconds = mean_stretch(5.0)
        assert free_seconds == 0.0
        assert costly_seconds > 0.0
        assert costly_stretch > free_stretch
