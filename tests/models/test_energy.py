"""Per-node-class power draw wired into the engine's energy integral.

``SimulationConfig.node_power`` turns on an incremental power integral:
busy nodes draw their busy watts, idle nodes their idle watts, down nodes
nothing.  Platforms expose the vectors only when some node class declares
watts, so power-free specs keep their form, hash, and engine path.
"""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig, Simulator
from repro.core.job import JobSpec
from repro.exceptions import SimulationError
from repro.platform import (
    DEFAULT_BUSY_WATTS,
    DEFAULT_IDLE_WATTS,
    HomogeneousPlatform,
    NodeClass,
    NodeClassesPlatform,
    TraceNodeEventSource,
)
from repro.schedulers.registry import create_scheduler


class TestEngineEnergy:
    def test_busy_and_idle_draw_integrate_exactly(self):
        # One 100 s serial job on node 0 of a 2-node cluster: node 0 draws
        # busy watts, node 1 idle watts, for the whole run.
        config = SimulationConfig(node_power=((300.0, 180.0), (250.0, 100.0)))
        result = Simulator(
            Cluster(2), create_scheduler("greedy"), config
        ).run([JobSpec(0, 0.0, 1, 1.0, 0.5, 100.0)])
        assert result.energy_joules == pytest.approx(100.0 * (300.0 + 100.0))

    def test_down_nodes_draw_nothing(self):
        # Node 1 is down for the whole run: only node 0's busy draw counts.
        config = SimulationConfig(
            node_power=((300.0, 180.0), (300.0, 180.0)),
            node_events=TraceNodeEventSource(events_list=((0.0, 1, "down"),)),
        )
        result = Simulator(
            Cluster(2), create_scheduler("greedy"), config
        ).run([JobSpec(0, 0.0, 1, 1.0, 0.5, 100.0)])
        assert result.energy_joules == pytest.approx(100.0 * 300.0)

    def test_without_node_power_energy_is_zero(self):
        result = Simulator(
            Cluster(2), create_scheduler("greedy"), SimulationConfig()
        ).run([JobSpec(0, 0.0, 1, 1.0, 0.5, 100.0)])
        assert result.energy_joules == 0.0

    def test_wrong_length_power_vector_rejected(self):
        config = SimulationConfig(node_power=((300.0, 180.0),))
        with pytest.raises(SimulationError, match="node_power"):
            Simulator(Cluster(2), create_scheduler("greedy"), config)


class TestPlatformPowerVectors:
    def test_no_watts_declared_means_no_vectors(self):
        platform = NodeClassesPlatform(
            classes=(NodeClass("fat", 2), NodeClass("thin", 2, cpu=0.5))
        )
        assert platform.power_vectors() is None
        assert HomogeneousPlatform(nodes=4).power_vectors() is None

    def test_declared_watts_expand_per_node_with_defaults(self):
        platform = NodeClassesPlatform(
            classes=(
                NodeClass("fat", 2, busy_watts=400.0, idle_watts=200.0),
                NodeClass("thin", 1),
            )
        )
        assert platform.power_vectors() == (
            (400.0, 200.0),
            (400.0, 200.0),
            (DEFAULT_BUSY_WATTS, DEFAULT_IDLE_WATTS),
        )

    def test_watts_serialised_only_when_set(self):
        bare = NodeClass("fat", 2)
        assert "busy_watts" not in bare.to_dict()
        assert "idle_watts" not in bare.to_dict()
        powered = NodeClass("fat", 2, busy_watts=400.0, idle_watts=200.0)
        spec = powered.to_dict()
        assert spec["busy_watts"] == 400.0
        assert spec["idle_watts"] == 200.0
        assert NodeClass.of(spec) == powered

    def test_scenario_wires_power_and_class_names_into_the_config(self):
        from repro.campaign.scenario import LublinSource, Scenario

        scenario = Scenario(
            name="energy",
            source=LublinSource(num_traces=1, num_jobs=5),
            algorithms=("greedy",),
            platform=NodeClassesPlatform(
                classes=(
                    NodeClass("fat", 2, busy_watts=400.0, idle_watts=200.0),
                    NodeClass("thin", 2),
                )
            ),
        )
        config = scenario.simulation_config()
        assert config.node_class_names == ("fat", "fat", "thin", "thin")
        assert config.node_power == (
            (400.0, 200.0),
            (400.0, 200.0),
            (DEFAULT_BUSY_WATTS, DEFAULT_IDLE_WATTS),
            (DEFAULT_BUSY_WATTS, DEFAULT_IDLE_WATTS),
        )
