"""The scenario ``models`` block: spec form, hash pinning, sweep templating.

Default models (``none`` / ``exact``) are demoted and a defaults-only block
is dropped entirely, so a model-free spec's hash — and therefore its run
cache and artifact names — is untouched by this subsystem.  Non-default
blocks round-trip canonically, template over sweep axes with the same
``{axis}`` syntax as platforms, and reach the engine through both the
materialized and streaming campaign paths.
"""

from __future__ import annotations

import pytest

from repro.campaign import Campaign
from repro.campaign.scenario import (
    CollectorSpec,
    GeneratorSource,
    LublinSource,
    Scenario,
    scenario_from_dict,
    scenario_hash,
)
from repro.core.cluster import Cluster
from repro.exceptions import ConfigurationError
from repro.models import (
    ConstantOverheadModel,
    MemoryLinearOverheadModel,
    StochasticExecutionTimeModel,
)


def _scenario(**overrides) -> Scenario:
    options = dict(
        name="models-spec",
        source=LublinSource(num_traces=1, num_jobs=20),
        algorithms=("greedy-pmtn-migr",),
        cluster=Cluster(8, 4, 8.0),
        collectors=(CollectorSpec("costs"),),
    )
    options.update(overrides)
    return Scenario(**options)


class TestSpecForm:
    def test_defaults_only_block_is_dropped_and_hash_pinned(self):
        bare = _scenario()
        defaulted = _scenario(
            models={
                "overhead": {"type": "none"},
                "execution_time": {"type": "exact"},
            }
        )
        assert defaulted.models is None
        assert "models" not in defaulted.to_dict()
        assert scenario_hash(defaulted) == scenario_hash(bare)

    def test_non_default_block_round_trips_canonically(self):
        scenario = _scenario(
            models={
                "overhead": {"type": "memory-linear", "seconds_per_gb": 0.5},
                "execution_time": {
                    "type": "stochastic",
                    "seed": 7,
                    "min_multiplier": 1.0,
                    "max_multiplier": 1.3,
                },
            }
        )
        rebuilt = scenario_from_dict(scenario.to_dict())
        assert rebuilt.models == scenario.models
        assert scenario_hash(rebuilt) == scenario_hash(scenario)
        overhead, execution = scenario.resolved_models()
        assert overhead == MemoryLinearOverheadModel(seconds_per_gb=0.5)
        assert execution == StochasticExecutionTimeModel(
            seed=7, min_multiplier=1.0, max_multiplier=1.3
        )

    def test_model_instances_are_coerced_to_spec_form(self):
        scenario = _scenario(
            models={"overhead": ConstantOverheadModel(preemption_seconds=5.0)}
        )
        assert scenario.models["overhead"]["type"] == "constant"
        overhead, execution = scenario.resolved_models()
        assert overhead == ConstantOverheadModel(preemption_seconds=5.0)
        assert execution is None

    def test_models_reach_the_simulation_config(self):
        scenario = _scenario(
            models={"overhead": {"type": "constant", "preemption_seconds": 5.0}}
        )
        config = scenario.simulation_config()
        assert config.overhead_model == ConstantOverheadModel(
            preemption_seconds=5.0
        )
        assert config.execution_time_model is None
        assert _scenario().simulation_config().overhead_model is None

    def test_unknown_keys_and_bad_specs_rejected(self):
        with pytest.raises(ConfigurationError, match="models"):
            _scenario(models={"overheads": {"type": "none"}})
        with pytest.raises(ConfigurationError, match="unknown overhead model"):
            _scenario(models={"overhead": {"type": "quadratic"}})
        with pytest.raises(ConfigurationError, match="type"):
            _scenario(models={"overhead": {"seconds_per_gb": 1.0}})


class TestSweepTemplating:
    def test_templated_axis_resolves_per_cell(self):
        scenario = _scenario(
            models={
                "overhead": {"type": "memory-linear", "seconds_per_gb": "{cost}"}
            },
            sweep=(("cost", (0.0, 2.0)),),
        )
        assert scenario.has_models_template
        overhead, _ = scenario.resolved_models({"cost": 2.0})
        assert overhead == MemoryLinearOverheadModel(seconds_per_gb=2.0)
        # Demotion is by *kind* ("none"/"exact"), not by parameter value: a
        # zero-cost memory-linear cell keeps its model (which charges 0 s).
        zero_overhead, _ = scenario.resolved_models({"cost": 0.0})
        assert zero_overhead == MemoryLinearOverheadModel(seconds_per_gb=0.0)

    def test_template_must_reference_a_swept_axis(self):
        with pytest.raises(ConfigurationError, match="cost"):
            _scenario(
                models={
                    "overhead": {
                        "type": "memory-linear",
                        "seconds_per_gb": "{cost}",
                    }
                }
            )

    def test_bad_axis_value_fails_at_construction(self):
        # Eager first-cell validation: a sweep value the model rejects is a
        # spec error, not a mid-campaign crash.
        with pytest.raises(ConfigurationError, match="seconds_per_gb"):
            _scenario(
                models={
                    "overhead": {
                        "type": "memory-linear",
                        "seconds_per_gb": "{cost}",
                    }
                },
                sweep=(("cost", (-1.0, 2.0)),),
            )


class TestCampaignIntegration:
    def test_materialized_sweep_charges_scale_with_the_axis(self):
        scenario = _scenario(
            models={
                "overhead": {"type": "memory-linear", "seconds_per_gb": "{cost}"}
            },
            sweep=(("cost", (0.0, 5.0)),),
        )
        outcome = Campaign().run(scenario)
        by_cost = {}
        for row in outcome.rows:
            cost = row.params_dict()["cost"]
            by_cost.setdefault(cost, 0.0)
            by_cost[cost] += row.metric("overhead_seconds")
        assert by_cost[0.0] == 0.0
        assert by_cost[5.0] > 0.0

    def test_streaming_campaign_carries_models(self):
        scenario = Scenario(
            name="models-stream",
            source=GeneratorSource(
                model="diurnal-poisson",
                instances=1,
                seed_base=7,
                options={
                    "num_jobs": 200,
                    "mean_interarrival_seconds": 60.0,
                    "runtime_log_mean": 5.5,
                    "runtime_log_sigma": 1.2,
                    "max_runtime_seconds": 14400.0,
                },
            ),
            algorithms=("dynmcb8-asap-per-600",),
            cluster=Cluster(16, 4, 8.0),
            models={
                "overhead": {"type": "memory-linear", "seconds_per_gb": 2.0}
            },
            collectors=(CollectorSpec("costs"),),
        )
        row = Campaign(streaming=True).run(scenario).rows[0]
        assert row.metric("pmtn_per_job") > 0.0
        assert row.metric("overhead_events") > 0
        assert row.metric("overhead_seconds") > 0.0
