"""Execution-time-model semantics: admission-time scaling, nominal estimates.

Unit-level: table lookup and seeded-stochastic arithmetic plus constructor
validation.  Engine-level: the multiplier scales the job's dedicated work
(completions move) while the scheduler-visible trace record is untouched,
the charge is independent of admission order and execution path, and a
model returning a non-positive multiplier fails the run fast.
"""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig, Simulator
from repro.core.job import JobSpec
from repro.exceptions import ConfigurationError, SimulationError
from repro.models import (
    ExecutionTimeModel,
    StochasticExecutionTimeModel,
    TableExecutionTimeModel,
)
from repro.schedulers.registry import create_scheduler
from repro.serve import PlacementLogObserver, SchedulerService
from repro.traces import DiurnalPoissonTraceSource

CLUSTER = Cluster(4, 4, 8.0)


class TestModelArithmetic:
    def test_table_picks_first_unexceeded_bound(self):
        model = TableExecutionTimeModel(
            breakpoints=((60.0, 1.5), (3600.0, 1.1)), default=1.0
        )

        def multiplier(execution_time):
            spec = JobSpec(0, 0.0, 1, 1.0, 0.5, execution_time)
            return model.execution_multiplier(spec)

        assert multiplier(30.0) == 1.5
        assert multiplier(60.0) == 1.5  # inclusive upper bound
        assert multiplier(600.0) == 1.1
        assert multiplier(7200.0) == 1.0

    def test_stochastic_is_a_pure_function_of_seed_and_job_id(self):
        model = StochasticExecutionTimeModel(
            seed=7, min_multiplier=1.0, max_multiplier=1.3
        )
        clone = StochasticExecutionTimeModel(
            seed=7, min_multiplier=1.0, max_multiplier=1.3
        )
        reseeded = StochasticExecutionTimeModel(
            seed=8, min_multiplier=1.0, max_multiplier=1.3
        )
        values = []
        for job_id in range(50):
            spec = JobSpec(job_id, 0.0, 1, 1.0, 0.5, 100.0)
            value = model.execution_multiplier(spec)
            assert 1.0 <= value <= 1.3
            assert clone.execution_multiplier(spec) == value
            values.append(value)
        assert len(set(values)) > 40  # actually spreads over the range
        spec = JobSpec(0, 0.0, 1, 1.0, 0.5, 100.0)
        assert reseeded.execution_multiplier(spec) != (
            model.execution_multiplier(spec)
        )

    def test_invalid_options_rejected(self):
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            TableExecutionTimeModel(breakpoints=((60.0, 1.1), (60.0, 1.2)))
        with pytest.raises(ConfigurationError, match="multiplier"):
            TableExecutionTimeModel(breakpoints=((60.0, 0.0),))
        with pytest.raises(ConfigurationError, match="min_multiplier"):
            StochasticExecutionTimeModel(
                seed=1, min_multiplier=1.5, max_multiplier=1.2
            )


class _ZeroMultiplierModel(ExecutionTimeModel):
    kind = "broken"
    spec_expressible = False

    def execution_multiplier(self, spec):
        return 0.0


class TestEngineAdmission:
    def test_multiplier_scales_completion_not_the_trace_record(self):
        spec = JobSpec(0, 0.0, 1, 1.0, 0.5, 100.0)
        model = TableExecutionTimeModel(breakpoints=((600.0, 1.5),))
        result = Simulator(
            CLUSTER,
            create_scheduler("greedy"),
            SimulationConfig(execution_time_model=model),
        ).run([spec])
        record = result.jobs[0]
        # The job actually ran 50 % long...
        assert record.completion_time == pytest.approx(150.0)
        # ...but the scheduler-visible record still says 100 s of work:
        # stretch and estimate studies read the nominal trace value.
        assert record.spec.execution_time == 100.0

    def test_stochastic_model_agrees_across_execution_paths(self):
        trace = DiurnalPoissonTraceSource(
            num_jobs=60,
            seed=11,
            mean_interarrival_seconds=90.0,
            runtime_log_mean=5.0,
            runtime_log_sigma=1.0,
            max_runtime_seconds=7200.0,
            serial_fraction=0.6,
        )
        cluster = Cluster(16, 4, 8.0)

        def config():
            return SimulationConfig(
                streaming_metrics=True,
                execution_time_model=StochasticExecutionTimeModel(
                    seed=7, min_multiplier=1.0, max_multiplier=1.3
                ),
            )

        observer = PlacementLogObserver()
        Simulator(
            cluster,
            create_scheduler("greedy-pmtn-migr"),
            config(),
            observers=[observer],
        ).run_stream(trace.jobs(cluster))
        stream_bytes = observer.to_json_bytes()

        observer = PlacementLogObserver()
        SchedulerService(
            cluster, "greedy-pmtn-migr", config=config(), observers=[observer]
        ).replay(trace)
        assert observer.to_json_bytes() == stream_bytes

    def test_non_positive_multiplier_fails_fast(self):
        simulator = Simulator(
            CLUSTER,
            create_scheduler("greedy"),
            SimulationConfig(execution_time_model=_ZeroMultiplierModel()),
        )
        with pytest.raises(SimulationError, match="finite and > 0"):
            simulator.run([JobSpec(0, 0.0, 1, 1.0, 0.5, 100.0)])
