"""The tentpole pin: explicit default models are byte-identical to none.

A :class:`SimulationConfig` carrying ``NoOverheadModel`` +
``ExactExecutionTimeModel`` must produce exactly what a config with no
models at all produces — per-job records, cost tallies, and placement-log
bytes — for every paper algorithm and every execution path (materialized
``run``, streaming ``run_stream``, serve replay).  This is what licenses
the scenario layer to demote default models to ``None`` and keep model-free
spec hashes unchanged.
"""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig, Simulator
from repro.models import ExactExecutionTimeModel, NoOverheadModel
from repro.schedulers import PAPER_ALGORITHMS, create_scheduler
from repro.serve import PlacementLogObserver, SchedulerService
from repro.traces import DiurnalPoissonTraceSource

CLUSTER = Cluster(16, 4, 8.0)

#: Sub-critical arrivals (the serve replay-determinism recipe, shortened):
#: enough churn to exercise the preemption/migration/resume charge sites
#: without backlog blowing up the suite runtime.
TRACE = DiurnalPoissonTraceSource(
    num_jobs=80,
    seed=11,
    mean_interarrival_seconds=90.0,
    runtime_log_mean=5.0,
    runtime_log_sigma=1.0,
    max_runtime_seconds=7200.0,
    serial_fraction=0.6,
)


def _default_model_kwargs():
    return {
        "overhead_model": NoOverheadModel(),
        "execution_time_model": ExactExecutionTimeModel(),
    }


def _stream_log(algorithm, config):
    observer = PlacementLogObserver()
    engine = Simulator(
        CLUSTER, create_scheduler(algorithm), config, observers=[observer]
    )
    engine.run_stream(TRACE.jobs(CLUSTER))
    return observer.to_json_bytes()


def _replay_log(algorithm, config):
    observer = PlacementLogObserver()
    service = SchedulerService(
        CLUSTER, algorithm, config=config, observers=[observer]
    )
    service.replay(TRACE)
    return observer.to_json_bytes()


@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
def test_materialized_run_is_identical(algorithm):
    specs = TRACE.materialize(CLUSTER).jobs
    bare = Simulator(
        CLUSTER, create_scheduler(algorithm), SimulationConfig()
    ).run(specs)
    modeled = Simulator(
        CLUSTER,
        create_scheduler(algorithm),
        SimulationConfig(**_default_model_kwargs()),
    ).run(specs)
    # Frozen-dataclass equality: exact floats, not approx — byte-identical.
    assert modeled.jobs == bare.jobs
    assert modeled.costs == bare.costs
    assert modeled.makespan == bare.makespan
    assert modeled.idle_node_seconds == bare.idle_node_seconds
    assert modeled.costs.overhead_events == 0
    assert modeled.costs.overhead_seconds == 0.0


@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
def test_stream_and_replay_logs_are_identical(algorithm):
    bare = _stream_log(algorithm, SimulationConfig(streaming_metrics=True))
    modeled_config = SimulationConfig(
        streaming_metrics=True, **_default_model_kwargs()
    )
    assert _stream_log(algorithm, modeled_config) == bare
    assert _replay_log(algorithm, modeled_config) == bare
