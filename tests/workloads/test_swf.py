"""Tests for the SWF parser/writer and HPC2N preprocessing."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import TraceFormatError, WorkloadError
from repro.workloads.hpc2n import (
    HPC2N_CLUSTER,
    Hpc2nLikeTraceGenerator,
    Hpc2nPreprocessingOptions,
    swf_to_dfrs_jobs,
)
from repro.workloads.scaling import DEFAULT_LOAD_LEVELS, load_sweep, scale_to_load
from repro.workloads.swf import (
    SwfHeader,
    SwfRecord,
    iter_swf_records,
    parse_swf,
    parse_swf_lines,
    parse_swf_with_header,
    read_swf_header,
    swf_header,
    write_swf,
)

SAMPLE_SWF = """
; Computer: test cluster
; MaxProcs: 240
1 0 10 3600 4 3600 524288 4 7200 524288 1 1 1 1 1 -1 -1 -1
2 60 0 30 1 30 -1 1 60 -1 1 2 1 1 1 -1 -1 -1
3 120 5 86400 8 86000 1048576 8 90000 1048576 1 3 1 2 1 -1 -1 -1
; trailing comment
4 180 0 -1 2 -1 -1 2 100 -1 0 4 1 1 1 -1 -1 -1
"""


class TestSwfParsing:
    def test_parse_lines(self):
        records = parse_swf_lines(SAMPLE_SWF.splitlines())
        assert len(records) == 4
        first = records[0]
        assert first.job_number == 1
        assert first.submit_time == 0.0
        assert first.run_time == 3600.0
        assert first.used_memory_kb == 524288.0
        assert first.requested_processors == 4

    def test_processors_falls_back_to_allocated(self):
        record = SwfRecord(job_number=1, submit_time=0.0, allocated_processors=6,
                           requested_processors=-1, run_time=10.0)
        assert record.processors == 6

    def test_is_usable(self):
        records = parse_swf_lines(SAMPLE_SWF.splitlines())
        assert records[0].is_usable()
        assert not records[3].is_usable()  # run_time = -1

    def test_short_lines_are_padded(self):
        records = parse_swf_lines(["5 10 0 100 2"])
        assert records[0].job_number == 5
        assert records[0].requested_processors == -1

    def test_garbage_line_raises(self):
        with pytest.raises(TraceFormatError):
            parse_swf_lines(["not a number at all x y z a b c d e f g h i j k l m"])

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceFormatError):
            parse_swf(tmp_path / "missing.swf")

    def test_round_trip_through_file(self, tmp_path):
        records = parse_swf_lines(SAMPLE_SWF.splitlines())
        path = tmp_path / "out.swf"
        write_swf(records, path, header=swf_header(computer="test", max_procs=240))
        reread = parse_swf(path)
        assert len(reread) == len(records)
        assert reread[0].run_time == records[0].run_time
        assert reread[2].requested_processors == records[2].requested_processors

    def test_write_to_stream(self):
        records = parse_swf_lines(SAMPLE_SWF.splitlines())
        buffer = io.StringIO()
        write_swf(records, buffer)
        text = buffer.getvalue()
        assert len(text.strip().splitlines()) == 4

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=10_000),
                st.floats(min_value=0, max_value=1e7),
                st.floats(min_value=1, max_value=1e6),
                st.integers(min_value=1, max_value=240),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, rows):
        records = [
            SwfRecord(job_number=n, submit_time=float(int(s)), run_time=float(int(r)),
                      allocated_processors=p, requested_processors=p)
            for n, s, r, p in rows
        ]
        buffer = io.StringIO()
        write_swf(records, buffer)
        reread = parse_swf_lines(buffer.getvalue().splitlines())
        assert len(reread) == len(records)
        for original, parsed in zip(records, reread):
            assert parsed.job_number == original.job_number
            assert parsed.submit_time == pytest.approx(original.submit_time)
            assert parsed.run_time == pytest.approx(original.run_time)
            assert parsed.processors == original.processors


class TestHpc2nPreprocessing:
    def test_even_processors_small_memory_become_dual_core_tasks(self):
        record = SwfRecord(job_number=1, submit_time=0.0, run_time=100.0,
                           allocated_processors=8, requested_processors=8,
                           used_memory_kb=0.2 * 2 * 1024 * 1024)
        workload = swf_to_dfrs_jobs([record])
        spec = workload.jobs[0]
        assert spec.num_tasks == 4
        assert spec.cpu_need == pytest.approx(1.0)
        assert spec.mem_requirement == pytest.approx(0.4)

    def test_odd_processors_keep_one_task_per_processor(self):
        record = SwfRecord(job_number=1, submit_time=0.0, run_time=100.0,
                           allocated_processors=3, requested_processors=3,
                           used_memory_kb=0.2 * 2 * 1024 * 1024)
        workload = swf_to_dfrs_jobs([record])
        spec = workload.jobs[0]
        assert spec.num_tasks == 3
        assert spec.cpu_need == pytest.approx(0.5)
        assert spec.mem_requirement == pytest.approx(0.2)

    def test_memory_hungry_even_job_not_paired(self):
        record = SwfRecord(job_number=1, submit_time=0.0, run_time=100.0,
                           allocated_processors=4, requested_processors=4,
                           used_memory_kb=0.6 * 2 * 1024 * 1024)
        workload = swf_to_dfrs_jobs([record])
        spec = workload.jobs[0]
        assert spec.num_tasks == 4
        assert spec.cpu_need == pytest.approx(0.5)
        assert spec.mem_requirement == pytest.approx(0.6)

    def test_missing_memory_defaults_to_ten_percent(self):
        record = SwfRecord(job_number=1, submit_time=0.0, run_time=100.0,
                           allocated_processors=1, requested_processors=1)
        workload = swf_to_dfrs_jobs([record])
        assert workload.jobs[0].mem_requirement == pytest.approx(0.1)

    def test_memory_is_max_of_used_and_requested(self):
        record = SwfRecord(job_number=1, submit_time=0.0, run_time=100.0,
                           allocated_processors=1, requested_processors=1,
                           used_memory_kb=0.2 * 2 * 1024 * 1024,
                           requested_memory_kb=0.7 * 2 * 1024 * 1024)
        workload = swf_to_dfrs_jobs([record])
        assert workload.jobs[0].mem_requirement == pytest.approx(0.7)

    def test_unusable_records_dropped(self):
        records = [
            SwfRecord(job_number=1, submit_time=0.0, run_time=-1.0,
                      allocated_processors=1),
            SwfRecord(job_number=2, submit_time=0.0, run_time=100.0,
                      allocated_processors=1, requested_processors=1),
        ]
        workload = swf_to_dfrs_jobs(records)
        assert workload.num_jobs == 1

    def test_all_unusable_raises(self):
        records = [SwfRecord(job_number=1, submit_time=0.0, run_time=-1.0)]
        with pytest.raises(WorkloadError):
            swf_to_dfrs_jobs(records)


class TestHpc2nLikeGenerator:
    def test_workload_shape(self):
        generator = Hpc2nLikeTraceGenerator(jobs_per_week=200)
        workload = generator.generate_workload(1, seed=5)
        assert workload.cluster.num_nodes == 120
        assert workload.num_jobs > 150
        stats = workload.statistics()
        # The defining trait: a large majority of short serial jobs.
        assert stats["serial_fraction"] >= 0.6
        assert stats["median_runtime"] < stats["mean_runtime"]

    def test_records_are_valid_swf(self):
        generator = Hpc2nLikeTraceGenerator(jobs_per_week=100)
        records = generator.generate_records(1, seed=2)
        assert all(r.is_usable() or r.run_time <= 0 for r in records)
        buffer = io.StringIO()
        write_swf(records, buffer)
        assert len(parse_swf_lines(buffer.getvalue().splitlines())) == len(records)

    def test_determinism(self):
        generator = Hpc2nLikeTraceGenerator(jobs_per_week=100)
        first = generator.generate_workload(1, seed=9)
        second = generator.generate_workload(1, seed=9)
        assert [s.submit_time for s in first] == [s.submit_time for s in second]

    def test_invalid_configuration(self):
        with pytest.raises(WorkloadError):
            Hpc2nLikeTraceGenerator(serial_fraction=1.5)
        with pytest.raises(WorkloadError):
            Hpc2nLikeTraceGenerator(jobs_per_week=0)
        with pytest.raises(WorkloadError):
            Hpc2nLikeTraceGenerator().generate_records(0)


class TestScaling:
    def test_scale_to_load_hits_target(self, small_cluster):
        from repro.workloads.lublin import LublinWorkloadGenerator

        workload = LublinWorkloadGenerator(small_cluster).generate(200, seed=1)
        for target in (0.1, 0.5, 0.9):
            scaled = scale_to_load(workload, target)
            assert scaled.load() == pytest.approx(target, rel=1e-6)
            assert scaled.num_jobs == workload.num_jobs

    def test_load_sweep_levels(self, small_cluster):
        from repro.workloads.lublin import LublinWorkloadGenerator

        workload = LublinWorkloadGenerator(small_cluster).generate(100, seed=2)
        sweep = load_sweep(workload, (0.2, 0.4))
        assert set(sweep) == {0.2, 0.4}
        assert sweep[0.2].load() == pytest.approx(0.2, rel=1e-6)

    def test_default_levels_match_paper(self):
        assert DEFAULT_LOAD_LEVELS == tuple(round(0.1 * i, 1) for i in range(1, 10))

    def test_invalid_target(self, small_workload):
        with pytest.raises(WorkloadError):
            scale_to_load(small_workload, 0.0)

    def test_too_few_jobs(self, small_cluster):
        from repro.workloads.model import Workload
        from ..conftest import make_job

        workload = Workload("one", small_cluster, [make_job(0)])
        with pytest.raises(WorkloadError):
            scale_to_load(workload, 0.5)


HEADERED_SWF = """\
; Computer: Linux Cluster (HPC2N)
; MaxNodes: 120
; MaxProcs: 240
; UnixStartTime: 1027839845
; Note: preprocessed
1 0 10 3600 4 3600 524288 4 7200 524288 1 1 1 1 1 -1 -1 -1
2 60 0 30 1 30 -1 1 60 -1 1 2 1 1 1 -1 -1 -1
"""


class TestSwfHeader:
    def test_directives_parsed_into_typed_fields(self, tmp_path):
        path = tmp_path / "trace.swf"
        path.write_text(HEADERED_SWF, encoding="utf-8")
        header, records = parse_swf_with_header(path)
        assert header.computer == "Linux Cluster (HPC2N)"
        assert header.max_nodes == 120
        assert header.max_procs == 240
        assert header.unix_start_time == 1027839845
        assert header.directives_dict()["Note"] == "preprocessed"
        assert len(records) == 2

    def test_read_header_only_stops_at_first_job(self, tmp_path):
        path = tmp_path / "trace.swf"
        path.write_text(HEADERED_SWF, encoding="utf-8")
        header = read_swf_header(path)
        assert header.max_nodes == 120

    def test_headerless_trace_yields_empty_header(self, tmp_path):
        path = tmp_path / "bare.swf"
        path.write_text("1 0 0 100 1 100 -1 1 100 -1 1 1 1 1 1 -1 -1 -1\n")
        header, records = parse_swf_with_header(path)
        assert header == SwfHeader()
        assert len(records) == 1

    def test_malformed_directives_are_kept_verbatim_only(self):
        header = SwfHeader.from_comment_lines(
            ["; MaxNodes: not-a-number", "; no colon here", ";"]
        )
        assert header.max_nodes is None
        assert header.directives_dict() == {"MaxNodes": "not-a-number"}


class TestGzipTransparency:
    def _write_gz(self, tmp_path):
        import gzip

        path = tmp_path / "trace.swf.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(HEADERED_SWF)
        return path

    def test_parse_swf_opens_gz(self, tmp_path):
        path = self._write_gz(tmp_path)
        records = parse_swf(path)
        assert len(records) == 2
        assert records[0].job_number == 1

    def test_header_read_from_gz(self, tmp_path):
        header = read_swf_header(self._write_gz(tmp_path))
        assert header.max_nodes == 120

    def test_gz_and_plain_parse_identically(self, tmp_path):
        gz_path = self._write_gz(tmp_path)
        plain = tmp_path / "trace.swf"
        plain.write_text(HEADERED_SWF, encoding="utf-8")
        assert parse_swf(gz_path) == parse_swf(plain)

    def test_write_swf_compresses_gz_round_trip(self, tmp_path):
        records = parse_swf_lines(HEADERED_SWF.splitlines())
        path = tmp_path / "out.swf.gz"
        write_swf(records, path, header=swf_header(computer="x"))
        assert parse_swf(path) == records
        # The file on disk really is gzip (magic bytes), not plain text.
        assert path.read_bytes()[:2] == b"\x1f\x8b"


class TestStreamingIterator:
    def test_streams_records_lazily(self, tmp_path):
        path = tmp_path / "trace.swf"
        path.write_text(HEADERED_SWF, encoding="utf-8")
        iterator = iter_swf_records(path)
        first = next(iterator)
        assert first.job_number == 1
        assert [record.job_number for record in iterator] == [2]

    def test_matches_parse_swf(self, tmp_path):
        path = tmp_path / "trace.swf"
        path.write_text(HEADERED_SWF, encoding="utf-8")
        assert list(iter_swf_records(path)) == parse_swf(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceFormatError):
            list(iter_swf_records(tmp_path / "missing.swf"))
