"""Tests for the Lublin synthetic workload generator and its annotations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cluster import Cluster
from repro.exceptions import ConfigurationError
from repro.workloads.cpu import CpuNeedModel
from repro.workloads.lublin import LublinModelParameters, LublinWorkloadGenerator
from repro.workloads.memory import MemoryRequirementModel


class TestCpuNeedModel:
    def test_paper_values(self):
        model = CpuNeedModel(cores_per_node=4)
        assert model.cpu_need(1) == pytest.approx(0.25)
        assert model.cpu_need(2) == pytest.approx(1.0)
        assert model.cpu_need(64) == pytest.approx(1.0)

    def test_dual_core(self):
        model = CpuNeedModel(cores_per_node=2)
        assert model.sequential_need == pytest.approx(0.5)

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            CpuNeedModel(cores_per_node=0)
        with pytest.raises(ConfigurationError):
            CpuNeedModel(parallel_task_need=0.0)
        with pytest.raises(ConfigurationError):
            CpuNeedModel(partial_need_fraction=2.0)

    def test_invalid_task_count(self):
        with pytest.raises(ConfigurationError):
            CpuNeedModel().cpu_need(0)

    def test_partial_need_fraction(self):
        model = CpuNeedModel(partial_need_fraction=1.0, partial_need_value=0.5)
        rng = np.random.default_rng(0)
        assert model.cpu_need(8, rng) == pytest.approx(0.5)


class TestMemoryModel:
    def test_support_matches_paper(self):
        model = MemoryRequirementModel()
        assert model.support() == [
            pytest.approx(0.1 * x) for x in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
        ]

    def test_small_fraction_is_roughly_55_percent(self):
        model = MemoryRequirementModel()
        rng = np.random.default_rng(7)
        samples = [model.memory_requirement(rng) for _ in range(4000)]
        small = sum(1 for value in samples if value == pytest.approx(0.1))
        assert 0.50 <= small / len(samples) <= 0.60

    def test_values_always_in_support(self):
        model = MemoryRequirementModel()
        rng = np.random.default_rng(3)
        support = {round(v, 6) for v in model.support()}
        for _ in range(500):
            assert round(model.memory_requirement(rng), 6) in support

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            MemoryRequirementModel(small_probability=1.5)
        with pytest.raises(ConfigurationError):
            MemoryRequirementModel(large_multipliers=())
        with pytest.raises(ConfigurationError):
            MemoryRequirementModel(large_multipliers=(20,))


class TestLublinGenerator:
    @pytest.fixture(scope="class")
    def workload(self):
        cluster = Cluster(128, cores_per_node=4, node_memory_gb=8.0)
        return LublinWorkloadGenerator(cluster).generate(1000, seed=11)

    def test_basic_shape(self, workload):
        assert workload.num_jobs == 1000
        assert all(spec.num_tasks >= 1 for spec in workload)
        assert all(spec.num_tasks <= 128 for spec in workload)
        assert all(spec.execution_time > 0 for spec in workload)

    def test_submission_span_matches_paper_ballpark(self, workload):
        """1,000 jobs should span on the order of 4-6 days (paper §IV-C)."""
        days = workload.span_seconds / 86400.0
        assert 2.0 <= days <= 12.0

    def test_cpu_need_annotation(self, workload):
        for spec in workload:
            if spec.num_tasks == 1:
                assert spec.cpu_need == pytest.approx(0.25)
            else:
                assert spec.cpu_need == pytest.approx(1.0)

    def test_memory_annotation_in_support(self, workload):
        support = {round(0.1 * x, 6) for x in range(1, 11)}
        for spec in workload:
            assert round(spec.mem_requirement, 6) in support

    def test_serial_fraction_plausible(self, workload):
        stats = workload.statistics()
        assert 0.10 <= stats["serial_fraction"] <= 0.45

    def test_power_of_two_bias(self, workload):
        parallel = [spec.num_tasks for spec in workload if spec.num_tasks > 1]
        powers = sum(1 for size in parallel if (size & (size - 1)) == 0)
        assert powers / len(parallel) >= 0.5

    def test_determinism(self):
        cluster = Cluster(32)
        first = LublinWorkloadGenerator(cluster).generate(50, seed=3)
        second = LublinWorkloadGenerator(cluster).generate(50, seed=3)
        assert [s.submit_time for s in first] == [s.submit_time for s in second]
        assert [s.num_tasks for s in first] == [s.num_tasks for s in second]
        different = LublinWorkloadGenerator(cluster).generate(50, seed=4)
        assert [s.submit_time for s in first] != [s.submit_time for s in different]

    def test_invalid_num_jobs(self):
        with pytest.raises(ConfigurationError):
            LublinWorkloadGenerator(Cluster(8)).generate(0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            LublinModelParameters(serial_probability=1.5)
        with pytest.raises(ConfigurationError):
            LublinModelParameters(daily_cycle_depth=1.0)
        with pytest.raises(ConfigurationError):
            LublinModelParameters(min_runtime=10.0, max_runtime=1.0)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_generated_specs_are_always_valid_property(self, seed):
        cluster = Cluster(16)
        workload = LublinWorkloadGenerator(cluster).generate(20, seed=seed)
        previous = -1.0
        for spec in workload:
            assert spec.submit_time >= previous
            previous = spec.submit_time
            assert 1 <= spec.num_tasks <= 16
            assert 0.0 < spec.cpu_need <= 1.0
            assert 0.0 < spec.mem_requirement <= 1.0
            assert spec.execution_time >= 1.0
