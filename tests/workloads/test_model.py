"""Tests for the Workload container and offered-load computation."""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.exceptions import WorkloadError
from repro.workloads.model import Workload, offered_load

from ..conftest import make_job


class TestOfferedLoad:
    def test_simple_load(self):
        cluster = Cluster(10)
        jobs = [
            make_job(0, submit=0.0, tasks=5, runtime=100.0),
            make_job(1, submit=100.0, tasks=5, runtime=100.0),
        ]
        # Demand = 1000 node-seconds; capacity = 10 nodes * 100 s span.
        assert offered_load(jobs, cluster) == pytest.approx(1.0)

    def test_empty_is_zero(self):
        assert offered_load([], Cluster(4)) == 0.0

    def test_zero_span_is_infinite(self):
        jobs = [make_job(0), make_job(1)]
        assert offered_load(jobs, Cluster(4)) == float("inf")


class TestWorkload:
    def test_jobs_sorted_by_submit_time(self, small_cluster):
        jobs = [make_job(1, submit=100.0), make_job(0, submit=50.0)]
        workload = Workload("w", small_cluster, jobs)
        assert [spec.job_id for spec in workload] == [0, 1]
        assert workload.num_jobs == 2
        assert workload.span_seconds == pytest.approx(50.0)

    def test_duplicate_ids_rejected(self, small_cluster):
        with pytest.raises(WorkloadError):
            Workload("w", small_cluster, [make_job(0), make_job(0, submit=10.0)])

    def test_scaled_interarrival_changes_load_not_mix(self, small_cluster):
        jobs = [make_job(i, submit=100.0 * i, tasks=2, runtime=50.0) for i in range(10)]
        workload = Workload("w", small_cluster, jobs)
        scaled = workload.scaled_interarrival(2.0)
        assert scaled.num_jobs == workload.num_jobs
        assert scaled.span_seconds == pytest.approx(2.0 * workload.span_seconds)
        assert scaled.load() == pytest.approx(workload.load() / 2.0)
        # Job attributes other than submit time are preserved.
        for original, rescaled in zip(workload.jobs, scaled.jobs):
            assert original.num_tasks == rescaled.num_tasks
            assert original.execution_time == rescaled.execution_time

    def test_scaled_interarrival_invalid_factor(self, small_cluster):
        workload = Workload("w", small_cluster, [make_job(0), make_job(1, submit=10.0)])
        with pytest.raises(WorkloadError):
            workload.scaled_interarrival(0.0)

    def test_head(self, small_cluster):
        jobs = [make_job(i, submit=float(i)) for i in range(10)]
        workload = Workload("w", small_cluster, jobs)
        head = workload.head(3)
        assert head.num_jobs == 3
        with pytest.raises(WorkloadError):
            workload.head(0)

    def test_segments_rebase_times(self, small_cluster):
        week = 7 * 24 * 3600.0
        jobs = [
            make_job(0, submit=100.0),
            make_job(1, submit=week + 200.0),
            make_job(2, submit=week + 300.0),
        ]
        workload = Workload("w", small_cluster, jobs)
        segments = workload.segments(week)
        assert len(segments) == 2
        assert segments[0].num_jobs == 1
        assert segments[1].num_jobs == 2
        # Segments are measured from the first submission (t=100), so the job
        # submitted at week+200 lands 100 s into the second segment.
        assert segments[1].jobs[0].submit_time == pytest.approx(100.0)

    def test_segments_invalid_duration(self, small_cluster):
        workload = Workload("w", small_cluster, [make_job(0)])
        with pytest.raises(WorkloadError):
            workload.segments(0.0)

    def test_statistics(self, small_workload):
        stats = small_workload.statistics()
        assert stats["num_jobs"] == 30
        assert stats["max_tasks"] <= small_workload.cluster.num_nodes
        assert 0.0 <= stats["serial_fraction"] <= 1.0
        assert stats["load"] > 0.0
