"""Direct unit tests for the offered-load scaling helpers (paper §IV-C)."""

from __future__ import annotations

import pytest

from repro.core import Cluster, JobSpec
from repro.exceptions import WorkloadError
from repro.workloads import (
    DEFAULT_LOAD_LEVELS,
    Workload,
    load_sweep,
    offered_load,
    scale_to_load,
)

CLUSTER = Cluster(num_nodes=8, cores_per_node=4, node_memory_gb=8.0)


def _spec(job_id, submit, tasks=2, runtime=400.0):
    return JobSpec(job_id, submit, tasks, 0.5, 0.2, runtime)


def _workload(num_jobs=10, gap=100.0):
    return Workload(
        "scalable",
        CLUSTER,
        [_spec(i, i * gap) for i in range(num_jobs)],
    )


class TestScaleToLoad:
    @pytest.mark.parametrize("target", [0.1, 0.5, 0.9, 1.5])
    def test_hits_target_exactly(self, target):
        scaled = scale_to_load(_workload(), target)
        assert scaled.load() == pytest.approx(target)

    def test_job_mix_is_preserved(self):
        workload = _workload()
        scaled = scale_to_load(workload, 0.3)
        assert scaled.num_jobs == workload.num_jobs
        for before, after in zip(workload.jobs, scaled.jobs):
            assert after.job_id == before.job_id
            assert after.num_tasks == before.num_tasks
            assert after.execution_time == before.execution_time
            assert after.cpu_need == before.cpu_need
            assert after.mem_requirement == before.mem_requirement

    def test_only_interarrivals_move(self):
        workload = _workload()
        scaled = scale_to_load(workload, workload.load() / 2.0)
        # Halving the load doubles the submission span, anchored at the
        # first submission.
        assert scaled.jobs[0].submit_time == workload.jobs[0].submit_time
        assert scaled.span_seconds == pytest.approx(2.0 * workload.span_seconds)

    def test_scaled_name_mentions_load(self):
        assert scale_to_load(_workload(), 0.5).name == "scalable-load0.5"

    def test_rejects_nonpositive_target(self):
        with pytest.raises(WorkloadError):
            scale_to_load(_workload(), 0.0)
        with pytest.raises(WorkloadError):
            scale_to_load(_workload(), -0.5)

    def test_rejects_tiny_workloads(self):
        single = Workload("one", CLUSTER, [_spec(0, 0.0)])
        with pytest.raises(WorkloadError):
            scale_to_load(single, 0.5)

    def test_rejects_degenerate_span(self):
        burst = Workload("burst", CLUSTER, [_spec(0, 0.0), _spec(1, 0.0)])
        # All jobs submitted at t=0: offered load is infinite.
        with pytest.raises(WorkloadError):
            scale_to_load(burst, 0.5)


class TestLoadSweep:
    def test_default_levels_are_the_papers_nine(self):
        assert DEFAULT_LOAD_LEVELS == (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)

    def test_sweep_produces_one_workload_per_level(self):
        sweep = load_sweep(_workload(), levels=(0.2, 0.6))
        assert set(sweep) == {0.2, 0.6}
        for level, workload in sweep.items():
            assert workload.load() == pytest.approx(level)

    def test_sweep_levels_are_independent(self):
        sweep = load_sweep(_workload(), levels=(0.2, 0.6))
        # Scaling is always anchored on the original workload, not chained.
        ratio = sweep[0.2].span_seconds / sweep[0.6].span_seconds
        assert ratio == pytest.approx(3.0)


class TestOfferedLoad:
    def test_matches_hand_computation(self):
        jobs = [_spec(0, 0.0, tasks=4, runtime=100.0), _spec(1, 50.0, tasks=2, runtime=100.0)]
        # demand = 4*100 + 2*100 = 600 node-seconds over span 50 s on 8 nodes.
        assert offered_load(jobs, CLUSTER) == pytest.approx(600.0 / (8 * 50.0))

    def test_empty_jobs_have_zero_load(self):
        assert offered_load([], CLUSTER) == 0.0
