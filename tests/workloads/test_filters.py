"""Tests for the workload filtering and transformation helpers."""

from __future__ import annotations

import pytest

from repro.core import Cluster, JobSpec
from repro.exceptions import WorkloadError
from repro.workloads import (
    Workload,
    clip_runtimes,
    drop_shorter_than,
    drop_wider_than,
    filter_jobs,
    merge_workloads,
    rebase_submit_times,
    truncate_after,
)

CLUSTER = Cluster(num_nodes=8, cores_per_node=4, node_memory_gb=8.0)


def _spec(job_id, submit=0.0, tasks=1, runtime=100.0, cpu=0.5, mem=0.2):
    return JobSpec(job_id, submit, tasks, cpu, mem, runtime)


def _workload(specs, name="wl"):
    return Workload(name, CLUSTER, specs)


class TestFilterJobs:
    def test_predicate_applied(self):
        workload = _workload([_spec(0, tasks=1), _spec(1, tasks=4)])
        narrow = filter_jobs(workload, lambda spec: spec.num_tasks == 1)
        assert [spec.job_id for spec in narrow.jobs] == [0]

    def test_original_untouched(self):
        workload = _workload([_spec(0), _spec(1)])
        filter_jobs(workload, lambda spec: False)
        assert workload.num_jobs == 2

    def test_custom_name(self):
        workload = _workload([_spec(0)])
        named = filter_jobs(workload, lambda spec: True, name="picked")
        assert named.name == "picked"


class TestDropFilters:
    def test_drop_wider_than_cluster_default(self):
        wide = JobSpec(1, 0.0, 32, 0.5, 0.2, 100.0)
        workload = _workload([_spec(0), wide])
        cleaned = drop_wider_than(workload)
        assert [spec.job_id for spec in cleaned.jobs] == [0]

    def test_drop_wider_than_explicit_limit(self):
        workload = _workload([_spec(0, tasks=2), _spec(1, tasks=4)])
        cleaned = drop_wider_than(workload, max_tasks=2)
        assert [spec.job_id for spec in cleaned.jobs] == [0]

    def test_drop_wider_invalid_limit(self):
        with pytest.raises(WorkloadError):
            drop_wider_than(_workload([_spec(0)]), max_tasks=0)

    def test_drop_shorter_than(self):
        workload = _workload([_spec(0, runtime=5.0), _spec(1, runtime=500.0)])
        cleaned = drop_shorter_than(workload, 30.0)
        assert [spec.job_id for spec in cleaned.jobs] == [1]

    def test_drop_shorter_invalid(self):
        with pytest.raises(WorkloadError):
            drop_shorter_than(_workload([_spec(0)]), -1.0)


class TestClipRuntimes:
    def test_clips_both_ends(self):
        workload = _workload([_spec(0, runtime=0.5), _spec(1, runtime=1e6)])
        clipped = clip_runtimes(workload, min_runtime_seconds=1.0, max_runtime_seconds=1000.0)
        runtimes = sorted(spec.execution_time for spec in clipped.jobs)
        assert runtimes == [1.0, 1000.0]

    def test_keeps_job_count(self):
        workload = _workload([_spec(i, runtime=10.0 * (i + 1)) for i in range(5)])
        clipped = clip_runtimes(workload, min_runtime_seconds=15.0)
        assert clipped.num_jobs == 5

    def test_invalid_bounds_rejected(self):
        workload = _workload([_spec(0)])
        with pytest.raises(WorkloadError):
            clip_runtimes(workload, min_runtime_seconds=0.0)
        with pytest.raises(WorkloadError):
            clip_runtimes(workload, min_runtime_seconds=10.0, max_runtime_seconds=5.0)


class TestRebaseAndTruncate:
    def test_rebase_to_zero(self):
        workload = _workload([_spec(0, submit=100.0), _spec(1, submit=160.0)])
        rebased = rebase_submit_times(workload)
        assert min(spec.submit_time for spec in rebased.jobs) == 0.0
        assert rebased.span_seconds == pytest.approx(60.0)

    def test_rebase_to_custom_start(self):
        workload = _workload([_spec(0, submit=100.0)])
        rebased = rebase_submit_times(workload, start=10.0)
        assert rebased.jobs[0].submit_time == pytest.approx(10.0)

    def test_rebase_negative_start_rejected(self):
        with pytest.raises(WorkloadError):
            rebase_submit_times(_workload([_spec(0)]), start=-5.0)

    def test_rebase_empty_workload(self):
        assert rebase_submit_times(_workload([])).num_jobs == 0

    def test_truncate_after(self):
        workload = _workload([_spec(0, submit=0.0), _spec(1, submit=50.0), _spec(2, submit=500.0)])
        shortened = truncate_after(workload, 100.0)
        assert [spec.job_id for spec in shortened.jobs] == [0, 1]

    def test_truncate_invalid_duration(self):
        with pytest.raises(WorkloadError):
            truncate_after(_workload([_spec(0)]), 0.0)


class TestMergeWorkloads:
    def test_interleaved_merge_keeps_times(self):
        first = _workload([_spec(0, submit=0.0), _spec(1, submit=100.0)], name="a")
        second = _workload([_spec(0, submit=50.0)], name="b")
        merged = merge_workloads("merged", [first, second])
        assert merged.num_jobs == 3
        assert len({spec.job_id for spec in merged.jobs}) == 3
        assert sorted(spec.submit_time for spec in merged.jobs) == [0.0, 50.0, 100.0]

    def test_sequential_merge_offsets_times(self):
        first = _workload([_spec(0, submit=0.0), _spec(1, submit=100.0)], name="a")
        second = _workload([_spec(0, submit=0.0)], name="b")
        merged = merge_workloads("seq", [first, second], sequential=True, gap_seconds=50.0)
        assert max(spec.submit_time for spec in merged.jobs) == pytest.approx(150.0)

    def test_mismatched_clusters_rejected(self):
        other_cluster = Cluster(num_nodes=4)
        first = _workload([_spec(0)], name="a")
        second = Workload("b", other_cluster, [_spec(0)])
        with pytest.raises(WorkloadError):
            merge_workloads("bad", [first, second])

    def test_empty_list_rejected(self):
        with pytest.raises(WorkloadError):
            merge_workloads("none", [])

    def test_negative_gap_rejected(self):
        with pytest.raises(WorkloadError):
            merge_workloads("gap", [_workload([_spec(0)])], sequential=True, gap_seconds=-1.0)

    def test_merged_workload_is_simulatable(self):
        from repro.experiments import run_instance

        first = _workload([_spec(i, submit=i * 10.0) for i in range(3)], name="a")
        second = _workload([_spec(i, submit=5.0 + i * 10.0) for i in range(3)], name="b")
        merged = merge_workloads("combo", [first, second])
        outcome = run_instance(merged, ["greedy-pmtn"], penalty_seconds=0.0)
        assert outcome.results["greedy-pmtn"].num_jobs == 6
