"""Tests for workload characterization."""

from __future__ import annotations

import pytest

from repro.core import Cluster, JobSpec
from repro.exceptions import WorkloadError
from repro.workloads import (
    LublinWorkloadGenerator,
    Workload,
    characterization_table,
    characterize,
    size_histogram,
)

CLUSTER = Cluster(num_nodes=16, cores_per_node=4, node_memory_gb=8.0)


def _workload(specs, name="test"):
    return Workload(name, CLUSTER, specs)


def _spec(job_id, submit=0.0, tasks=1, cpu=0.25, mem=0.1, runtime=100.0):
    return JobSpec(job_id, submit, tasks, cpu, mem, runtime)


class TestCharacterize:
    def test_empty_workload_rejected(self):
        with pytest.raises(WorkloadError):
            characterize(_workload([]))

    def test_serial_fraction(self):
        specs = [_spec(0, tasks=1), _spec(1, tasks=1), _spec(2, tasks=4)]
        profile = characterize(_workload(specs))
        assert profile.serial_fraction == pytest.approx(2 / 3)

    def test_memory_threshold_fraction(self):
        specs = [
            _spec(0, mem=0.1),
            _spec(1, mem=0.3),
            _spec(2, mem=0.5),
            _spec(3, mem=0.9),
        ]
        profile = characterize(_workload(specs))
        assert profile.fraction_memory_under_40pct == pytest.approx(0.5)

    def test_cpu_threshold_fraction(self):
        specs = [_spec(0, cpu=0.25), _spec(1, cpu=0.25), _spec(2, cpu=1.0), _spec(3, cpu=0.5)]
        profile = characterize(_workload(specs))
        assert profile.fraction_cpu_under_50pct == pytest.approx(0.5)

    def test_custom_thresholds(self):
        specs = [_spec(0, mem=0.2), _spec(1, mem=0.6)]
        profile = characterize(_workload(specs), memory_threshold=0.7)
        assert profile.fraction_memory_under_40pct == pytest.approx(1.0)

    def test_invalid_thresholds_rejected(self):
        workload = _workload([_spec(0)])
        with pytest.raises(WorkloadError):
            characterize(workload, memory_threshold=0.0)
        with pytest.raises(WorkloadError):
            characterize(workload, cpu_threshold=1.5)

    def test_demand_and_runtime_statistics(self):
        specs = [_spec(0, tasks=2, runtime=100.0), _spec(1, tasks=4, runtime=50.0, submit=60.0)]
        profile = characterize(_workload(specs))
        assert profile.total_demand_node_seconds == pytest.approx(400.0)
        assert profile.mean_runtime_seconds == pytest.approx(75.0)
        assert profile.mean_interarrival_seconds == pytest.approx(60.0)

    def test_as_dict_round_trip(self):
        profile = characterize(_workload([_spec(0), _spec(1, submit=10.0)]))
        data = profile.as_dict()
        assert data["num_jobs"] == 2.0
        assert "fraction_memory_under_40pct" in data

    def test_lublin_traces_match_paper_motivation(self):
        # The synthetic annotation model (§IV-C) makes serial tasks 25% CPU
        # and most memory requirements small; the motivating observation that
        # many jobs under-use nodes must therefore hold.
        workload = LublinWorkloadGenerator(Cluster(128, 4, 8.0)).generate(300, seed=7)
        profile = characterize(workload)
        assert profile.fraction_memory_under_40pct >= 0.5
        assert 0.0 <= profile.fraction_cpu_under_50pct <= 1.0
        assert profile.serial_fraction == pytest.approx(
            profile.fraction_cpu_under_50pct, abs=1e-9
        )


class TestSizeHistogram:
    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            size_histogram(_workload([]))

    def test_buckets_are_powers_of_two(self):
        specs = [_spec(0, tasks=1), _spec(1, tasks=2), _spec(2, tasks=3), _spec(3, tasks=8)]
        histogram = size_histogram(_workload(specs))
        labels = [label for label, _ in histogram]
        assert labels == ["1", "2-3", "8-15"]
        counts = dict(histogram)
        assert counts["2-3"] == 2

    def test_counts_sum_to_job_count(self):
        workload = LublinWorkloadGenerator(CLUSTER).generate(100, seed=3)
        histogram = size_histogram(workload)
        assert sum(count for _, count in histogram) == workload.num_jobs


class TestCharacterizationTable:
    def test_renders_one_row_per_workload(self):
        profiles = [
            characterize(_workload([_spec(0), _spec(1, submit=5.0)], name="alpha")),
            characterize(_workload([_spec(0, tasks=4)], name="beta")),
        ]
        table = characterization_table(profiles)
        assert "alpha" in table
        assert "beta" in table
        assert len(table.splitlines()) == 4  # header + separator + 2 rows

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            characterization_table([])


class TestCharacterizeStream:
    """The single-pass streaming twin must agree with the materialized path."""

    def _parity_workload(self):
        return LublinWorkloadGenerator(CLUSTER).generate(300, seed=11)

    def test_matches_materialized_characterize(self):
        from repro.workloads import characterize_stream

        workload = self._parity_workload()
        exact = characterize(workload)
        profile, histogram = characterize_stream(
            iter(workload.jobs), CLUSTER, name=workload.name
        )
        assert profile.num_jobs == exact.num_jobs
        assert profile.serial_fraction == exact.serial_fraction
        assert profile.fraction_memory_under_40pct == exact.fraction_memory_under_40pct
        assert profile.fraction_cpu_under_50pct == exact.fraction_cpu_under_50pct
        assert profile.max_tasks == exact.max_tasks
        assert profile.span_seconds == exact.span_seconds
        assert profile.offered_load == pytest.approx(exact.offered_load, rel=1e-12)
        assert profile.mean_tasks == pytest.approx(exact.mean_tasks, rel=1e-12)
        assert profile.mean_runtime_seconds == pytest.approx(
            exact.mean_runtime_seconds, rel=1e-12
        )
        assert profile.mean_interarrival_seconds == pytest.approx(
            exact.mean_interarrival_seconds, rel=1e-12
        )
        assert profile.total_demand_node_seconds == pytest.approx(
            exact.total_demand_node_seconds, rel=1e-12
        )
        # Quantile statistics are nearest-rank estimates within the sketch's
        # documented 0.1 % bound (np.median/np.percentile interpolate between
        # order statistics, so compare against the nearest-rank references).
        import math

        import numpy as np

        runtimes = np.sort([spec.execution_time for spec in workload.jobs])

        def nearest_rank(q):
            return float(runtimes[max(1, math.ceil(q * runtimes.size - 1e-9)) - 1])

        assert profile.median_runtime_seconds == pytest.approx(
            nearest_rank(0.5), rel=2e-3
        )
        assert profile.p95_runtime_seconds == pytest.approx(
            nearest_rank(0.95), rel=2e-3
        )
        # The width histogram is exact and identical to size_histogram.
        assert histogram == size_histogram(workload)

    def test_is_single_pass(self):
        from repro.workloads import characterize_stream

        workload = self._parity_workload()
        profile, _ = characterize_stream(iter(workload.jobs), CLUSTER)
        assert profile.num_jobs == workload.num_jobs

    def test_empty_stream_rejected(self):
        from repro.workloads import characterize_stream

        with pytest.raises(WorkloadError, match="empty"):
            characterize_stream(iter(()), CLUSTER, name="nothing")

    def test_single_job_stream(self):
        from repro.workloads import characterize_stream

        profile, histogram = characterize_stream(
            iter([_spec(0, tasks=4, runtime=50.0)]), CLUSTER
        )
        assert profile.num_jobs == 1
        assert profile.mean_interarrival_seconds == 0.0
        assert profile.median_runtime_seconds == 50.0
        assert histogram == [("4-7", 1)]

    def test_bad_thresholds_rejected(self):
        from repro.workloads import characterize_stream

        with pytest.raises(WorkloadError):
            characterize_stream(iter([_spec(0)]), CLUSTER, memory_threshold=0.0)
        with pytest.raises(WorkloadError):
            characterize_stream(iter([_spec(0)]), CLUSTER, cpu_threshold=1.5)

    def test_out_of_order_stream_matches_sorted_semantics(self):
        # Archive traces are submit-ordered only by convention; a stray
        # out-of-order record must not corrupt span/load/inter-arrival.
        from repro.workloads import characterize_stream

        specs = [
            _spec(0, submit=0.0),
            _spec(1, submit=1000.0),
            _spec(2, submit=2000.0),
            _spec(3, submit=500.0),
        ]
        exact = characterize(_workload(list(specs)))
        profile, _ = characterize_stream(iter(specs), CLUSTER)
        assert profile.span_seconds == exact.span_seconds == 2000.0
        assert profile.offered_load == pytest.approx(exact.offered_load, rel=1e-12)
        assert profile.mean_interarrival_seconds == pytest.approx(
            exact.mean_interarrival_seconds, rel=1e-12
        )
