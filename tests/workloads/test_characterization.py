"""Tests for workload characterization."""

from __future__ import annotations

import pytest

from repro.core import Cluster, JobSpec
from repro.exceptions import WorkloadError
from repro.workloads import (
    LublinWorkloadGenerator,
    Workload,
    characterization_table,
    characterize,
    size_histogram,
)

CLUSTER = Cluster(num_nodes=16, cores_per_node=4, node_memory_gb=8.0)


def _workload(specs, name="test"):
    return Workload(name, CLUSTER, specs)


def _spec(job_id, submit=0.0, tasks=1, cpu=0.25, mem=0.1, runtime=100.0):
    return JobSpec(job_id, submit, tasks, cpu, mem, runtime)


class TestCharacterize:
    def test_empty_workload_rejected(self):
        with pytest.raises(WorkloadError):
            characterize(_workload([]))

    def test_serial_fraction(self):
        specs = [_spec(0, tasks=1), _spec(1, tasks=1), _spec(2, tasks=4)]
        profile = characterize(_workload(specs))
        assert profile.serial_fraction == pytest.approx(2 / 3)

    def test_memory_threshold_fraction(self):
        specs = [
            _spec(0, mem=0.1),
            _spec(1, mem=0.3),
            _spec(2, mem=0.5),
            _spec(3, mem=0.9),
        ]
        profile = characterize(_workload(specs))
        assert profile.fraction_memory_under_40pct == pytest.approx(0.5)

    def test_cpu_threshold_fraction(self):
        specs = [_spec(0, cpu=0.25), _spec(1, cpu=0.25), _spec(2, cpu=1.0), _spec(3, cpu=0.5)]
        profile = characterize(_workload(specs))
        assert profile.fraction_cpu_under_50pct == pytest.approx(0.5)

    def test_custom_thresholds(self):
        specs = [_spec(0, mem=0.2), _spec(1, mem=0.6)]
        profile = characterize(_workload(specs), memory_threshold=0.7)
        assert profile.fraction_memory_under_40pct == pytest.approx(1.0)

    def test_invalid_thresholds_rejected(self):
        workload = _workload([_spec(0)])
        with pytest.raises(WorkloadError):
            characterize(workload, memory_threshold=0.0)
        with pytest.raises(WorkloadError):
            characterize(workload, cpu_threshold=1.5)

    def test_demand_and_runtime_statistics(self):
        specs = [_spec(0, tasks=2, runtime=100.0), _spec(1, tasks=4, runtime=50.0, submit=60.0)]
        profile = characterize(_workload(specs))
        assert profile.total_demand_node_seconds == pytest.approx(400.0)
        assert profile.mean_runtime_seconds == pytest.approx(75.0)
        assert profile.mean_interarrival_seconds == pytest.approx(60.0)

    def test_as_dict_round_trip(self):
        profile = characterize(_workload([_spec(0), _spec(1, submit=10.0)]))
        data = profile.as_dict()
        assert data["num_jobs"] == 2.0
        assert "fraction_memory_under_40pct" in data

    def test_lublin_traces_match_paper_motivation(self):
        # The synthetic annotation model (§IV-C) makes serial tasks 25% CPU
        # and most memory requirements small; the motivating observation that
        # many jobs under-use nodes must therefore hold.
        workload = LublinWorkloadGenerator(Cluster(128, 4, 8.0)).generate(300, seed=7)
        profile = characterize(workload)
        assert profile.fraction_memory_under_40pct >= 0.5
        assert 0.0 <= profile.fraction_cpu_under_50pct <= 1.0
        assert profile.serial_fraction == pytest.approx(
            profile.fraction_cpu_under_50pct, abs=1e-9
        )


class TestSizeHistogram:
    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            size_histogram(_workload([]))

    def test_buckets_are_powers_of_two(self):
        specs = [_spec(0, tasks=1), _spec(1, tasks=2), _spec(2, tasks=3), _spec(3, tasks=8)]
        histogram = size_histogram(_workload(specs))
        labels = [label for label, _ in histogram]
        assert labels == ["1", "2-3", "8-15"]
        counts = dict(histogram)
        assert counts["2-3"] == 2

    def test_counts_sum_to_job_count(self):
        workload = LublinWorkloadGenerator(CLUSTER).generate(100, seed=3)
        histogram = size_histogram(workload)
        assert sum(count for _, count in histogram) == workload.num_jobs


class TestCharacterizationTable:
    def test_renders_one_row_per_workload(self):
        profiles = [
            characterize(_workload([_spec(0), _spec(1, submit=5.0)], name="alpha")),
            characterize(_workload([_spec(0, tasks=4)], name="beta")),
        ]
        table = characterization_table(profiles)
        assert "alpha" in table
        assert "beta" in table
        assert len(table.splitlines()) == 4  # header + separator + 2 rows

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            characterization_table([])
