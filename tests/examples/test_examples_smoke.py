"""Smoke tests: every example script must run end-to-end at a tiny scale.

The examples are part of the public deliverable, so they are executed as real
subprocesses (the way a user would run them), with arguments small enough to
finish in a few seconds each.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"

_CASES = {
    "quickstart.py": ["--jobs", "30", "--nodes", "8", "--load", "0.5"],
    "load_sweep.py": ["--traces", "1", "--jobs", "25", "--nodes", "8", "--loads", "0.5"],
    "memory_pressure_study.py": ["--jobs", "25", "--nodes", "8", "--load", "0.5"],
    "swf_trace_replay.py": ["--weeks", "1", "--jobs-per-week", "40"],
    "custom_scheduler.py": ["--jobs", "25", "--nodes", "8", "--load", "0.5"],
    "energy_and_utilization.py": ["--jobs", "25", "--nodes", "8", "--load", "0.3"],
    "ablations_and_extensions.py": ["--jobs", "25", "--nodes", "8", "--traces", "1"],
}


def _run_example(name: str, arguments):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *arguments],
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_every_example_has_a_smoke_case():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(_CASES), (
        "every example script must have a smoke-test entry (and vice versa)"
    )


#: Where a misbehaving example could plausibly drop files: next to itself
#: (the historical bug), into the package, or cwd-relative into the repo
#: root.  Deliberately not the whole tree — .git churn, virtualenvs, and
#: cache directories would make the assertion flaky.
_WATCHED_DIRS = ("examples", "src", "tests", "benchmarks")
_VOLATILE_PARTS = {"__pycache__", ".pytest_cache", ".hypothesis", "results"}


def _tree_files(root: Path):
    """Every file under the watched repo-tree areas an example could pollute."""
    files = {path for path in root.iterdir() if path.is_file()}
    for name in _WATCHED_DIRS:
        files.update(
            path
            for path in (root / name).rglob("*")
            if path.is_file()
            and not any(
                part in _VOLATILE_PARTS or part.endswith(".egg-info")
                for part in path.relative_to(root).parts
            )
        )
    return files


@pytest.mark.parametrize("name", sorted(_CASES))
def test_example_runs_successfully(name):
    before = _tree_files(REPO_ROOT)
    completed = _run_example(name, _CASES[name])
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), f"{name} produced no output"
    created = _tree_files(REPO_ROOT) - before
    assert not created, (
        f"{name} wrote files into the source tree: "
        f"{sorted(str(p) for p in created)}"
    )


def test_swf_replay_honours_output_dir(tmp_path):
    completed = _run_example(
        "swf_trace_replay.py",
        [*_CASES["swf_trace_replay.py"], "--output-dir", str(tmp_path)],
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert (tmp_path / "hpc2n_like_generated.swf").is_file()


def test_quickstart_reports_degradation_factors():
    completed = _run_example("quickstart.py", _CASES["quickstart.py"])
    assert "degradation factor" in completed.stdout


def test_energy_example_reports_savings():
    completed = _run_example(
        "energy_and_utilization.py", _CASES["energy_and_utilization.py"]
    )
    assert "savings" in completed.stdout


def test_ablations_example_reports_all_four_studies():
    completed = _run_example(
        "ablations_and_extensions.py", _CASES["ablations_and_extensions.py"]
    )
    for marker in (
        "Packing-heuristic ablation",
        "Period sensitivity",
        "Extensions vs. paper algorithms",
        "Utilization and energy study",
    ):
        assert marker in completed.stdout
