"""Smoke tests: every example script must run end-to-end at a tiny scale.

The examples are part of the public deliverable, so they are executed as real
subprocesses (the way a user would run them), with arguments small enough to
finish in a few seconds each.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

_CASES = {
    "quickstart.py": ["--jobs", "30", "--nodes", "8", "--load", "0.5"],
    "load_sweep.py": ["--traces", "1", "--jobs", "25", "--nodes", "8", "--loads", "0.5"],
    "memory_pressure_study.py": ["--jobs", "25", "--nodes", "8", "--load", "0.5"],
    "swf_trace_replay.py": ["--weeks", "1", "--jobs-per-week", "40"],
    "custom_scheduler.py": ["--jobs", "25", "--nodes", "8", "--load", "0.5"],
    "energy_and_utilization.py": ["--jobs", "25", "--nodes", "8", "--load", "0.3"],
    "ablations_and_extensions.py": ["--jobs", "25", "--nodes", "8", "--traces", "1"],
}


def _run_example(name: str, arguments):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *arguments],
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_every_example_has_a_smoke_case():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(_CASES), (
        "every example script must have a smoke-test entry (and vice versa)"
    )


@pytest.mark.parametrize("name", sorted(_CASES))
def test_example_runs_successfully(name):
    completed = _run_example(name, _CASES[name])
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), f"{name} produced no output"


def test_quickstart_reports_degradation_factors():
    completed = _run_example("quickstart.py", _CASES["quickstart.py"])
    assert "degradation factor" in completed.stdout


def test_energy_example_reports_savings():
    completed = _run_example(
        "energy_and_utilization.py", _CASES["energy_and_utilization.py"]
    )
    assert "savings" in completed.stdout


def test_ablations_example_reports_all_four_studies():
    completed = _run_example(
        "ablations_and_extensions.py", _CASES["ablations_and_extensions.py"]
    )
    for marker in (
        "Packing-heuristic ablation",
        "Period sensitivity",
        "Extensions vs. paper algorithms",
        "Utilization and energy study",
    ):
        assert marker in completed.stdout
