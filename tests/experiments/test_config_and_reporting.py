"""Tests for experiment configuration and plain-text reporting."""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.exceptions import ConfigurationError
from repro.experiments.config import (
    ExperimentConfig,
    default_scale,
    paper_scale,
    quick_scale,
)
from repro.experiments.reporting import format_figure_series, format_table


class TestExperimentConfig:
    def test_presets(self):
        quick = quick_scale()
        default = default_scale()
        paper = paper_scale()
        assert quick.num_jobs < default.num_jobs < paper.num_jobs
        assert paper.num_traces == 100
        assert paper.load_levels == tuple(round(0.1 * i, 1) for i in range(1, 10))
        assert paper.cluster.num_nodes == 128
        assert len(paper.algorithms) == 9

    def test_with_penalty_and_algorithms(self):
        config = quick_scale().with_penalty(0.0).with_algorithms(["fcfs", "greedy"])
        assert config.penalty_seconds == 0.0
        assert config.algorithms == ("fcfs", "greedy")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_traces": 0},
            {"num_jobs": 1},
            {"load_levels": ()},
            {"load_levels": (0.0,)},
            {"algorithms": ()},
            {"penalty_seconds": -1.0},
            {"hpc2n_weeks": 0},
            {"hpc2n_jobs_per_week": 1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(**kwargs)


class TestReporting:
    def test_format_table_alignment_and_floats(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.23456], ["b", 10.0]],
            title="My table",
        )
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.23" in text
        assert "10.00" in text

    def test_format_table_without_title(self):
        text = format_table(["a"], [[1]])
        assert not text.startswith("\n")
        assert "1" in text

    def test_format_figure_series(self):
        series = {"fcfs": {0.1: 10.0, 0.5: 20.0}, "easy": {0.1: 5.0}}
        text = format_figure_series(series, title="Figure")
        assert "Figure" in text
        assert "0.1" in text and "0.5" in text
        assert "fcfs" in text and "easy" in text
        # Missing points are rendered as a dash.
        assert "-" in text.splitlines()[-1] or "-" in text
