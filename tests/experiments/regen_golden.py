"""Regenerate the golden driver outputs (see golden_config.py for the rules)."""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from golden_config import (
    EXTENSIONS_GOLDEN_ALGORITHMS,
    GOLDEN_CONFIG,
    TABLE2_GOLDEN_ALGORITHMS,
)

from repro.experiments.extensions import run_extensions_comparison
from repro.experiments.figure1 import run_figure1
from repro.experiments.packing_ablation import run_packing_ablation
from repro.experiments.period_sweep import run_period_sweep
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.timing import run_timing_study
from repro.experiments.utilization_study import run_utilization_study

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"


def main() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    config = GOLDEN_CONFIG
    outputs = {
        "figure1.txt": run_figure1(config).format(),
        "table1.txt": run_table1(config).format(),
        "table2.txt": run_table2(
            config, algorithms=TABLE2_GOLDEN_ALGORITHMS
        ).format(),
        "extensions.txt": run_extensions_comparison(
            config, algorithms=EXTENSIONS_GOLDEN_ALGORITHMS
        ).format(),
        "period_sweep.txt": run_period_sweep(
            config, periods=(300.0, 1200.0), load=0.5
        ).format(),
        "packing_ablation.txt": run_packing_ablation(
            num_nodes=8,
            num_instances=5,
            jobs_per_instance=10,
            seed=3,
            packers=("mcb8", "first-fit", "worst-fit"),
        ).format(),
        "utilization.txt": run_utilization_study(
            config, load=0.5, algorithms=("easy", "dynmcb8-asap-per-600")
        ).format(),
        "timing.txt": run_timing_study(config, algorithm="dynmcb8").format(),
    }
    for name, text in outputs.items():
        (GOLDEN_DIR / name).write_text(text + "\n", encoding="utf-8")
        print(f"wrote {name} ({len(text)} chars)")


if __name__ == "__main__":
    main()
