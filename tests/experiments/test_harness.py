"""End-to-end tests of the experiment harness at a tiny scale."""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.experiments.config import ExperimentConfig
from repro.experiments.degradation import aggregate_instances
from repro.experiments.figure1 import run_figure1
from repro.experiments.runner import (
    generate_synthetic_instances,
    run_algorithm,
    run_instance,
)
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import TABLE2_ALGORITHMS, run_table2
from repro.experiments.timing import run_timing_study

TINY = ExperimentConfig(
    cluster=Cluster(16, 4, 8.0),
    num_traces=2,
    num_jobs=30,
    load_levels=(0.3, 0.8),
    algorithms=("fcfs", "easy", "greedy-pmtn", "dynmcb8-asap-per-600"),
    penalty_seconds=300.0,
    hpc2n_weeks=1,
    hpc2n_jobs_per_week=40,
    seed_base=7,
)


class TestRunner:
    def test_generate_synthetic_instances_scaled(self):
        instances = generate_synthetic_instances(TINY, load=0.5)
        assert len(instances) == TINY.num_traces
        for workload in instances:
            assert workload.num_jobs == TINY.num_jobs
            assert workload.load() == pytest.approx(0.5, rel=1e-6)

    def test_generate_synthetic_instances_unscaled(self):
        instances = generate_synthetic_instances(TINY, load=None)
        assert len(instances) == TINY.num_traces
        assert instances[0].load() != pytest.approx(instances[1].load())

    def test_run_algorithm_completes_every_job(self):
        workload = generate_synthetic_instances(TINY, load=0.5)[0]
        result = run_algorithm(workload, "greedy-pmtn", penalty_seconds=300.0)
        assert result.num_jobs == workload.num_jobs
        assert result.max_stretch >= 1.0

    def test_run_instance_and_degradation(self):
        workload = generate_synthetic_instances(TINY, load=0.5)[0]
        instance = run_instance(workload, TINY.algorithms, penalty_seconds=300.0)
        assert set(instance.results) == set(TINY.algorithms)
        factors = instance.degradation_factors()
        assert min(factors.values()) == pytest.approx(1.0)
        aggregate = aggregate_instances([instance])
        assert aggregate.best_algorithm() in TINY.algorithms


class TestArtifacts:
    def test_figure1_structure(self):
        result = run_figure1(TINY, penalty_seconds=0.0)
        assert set(result.points) == set(TINY.load_levels)
        for load, values in result.points.items():
            assert set(values) == set(TINY.algorithms)
            assert min(values.values()) >= 1.0 - 1e-9
        text = result.format()
        assert "Figure 1" in text
        for algorithm in TINY.algorithms:
            assert algorithm in text

    def test_table1_structure(self):
        result = run_table1(TINY)
        assert set(result.columns) == {"scaled", "unscaled", "real"}
        for column in result.columns.values():
            assert set(column) == set(TINY.algorithms)
            for stats in column.values():
                assert stats.average >= 1.0 - 1e-9
                assert stats.maximum >= stats.average - 1e-9
        assert "Table I" in result.format()

    def test_table2_structure(self):
        config = TINY.with_algorithms(("greedy-pmtn", "dynmcb8-asap-per-600"))
        result = run_table2(config, algorithms=config.algorithms)
        assert set(result.metrics) == set(config.algorithms)
        for metrics in result.metrics.values():
            for name in result.METRIC_NAMES:
                assert metrics[name].maximum >= metrics[name].average - 1e-9
        # GREEDY-PMTN never migrates (Table II shows 0.00 in the paper).
        assert result.metrics["greedy-pmtn"]["migr_per_job"].maximum == pytest.approx(0.0)
        assert "Table II" in result.format()

    def test_table2_requires_high_load_level(self):
        config = ExperimentConfig(
            cluster=Cluster(8),
            num_traces=1,
            num_jobs=10,
            load_levels=(0.3,),
            algorithms=("greedy-pmtn",),
        )
        with pytest.raises(ValueError):
            run_table2(config, algorithms=("greedy-pmtn",))

    def test_timing_study(self):
        config = TINY.with_algorithms(("dynmcb8",))
        result = run_timing_study(config, algorithm="dynmcb8")
        assert result.num_observations > 0
        assert result.max_seconds >= result.mean_seconds
        assert 0.0 <= result.small_event_fast_fraction <= 1.0
        assert result.mean_interarrival_seconds > 0.0
        assert "dynmcb8" in result.format()
