"""Tests for the parallel experiment runner (:mod:`repro.experiments.parallel`).

The contract is strict: ``workers=N`` must be *bit-for-bit* identical to the
serial path, both for simulation fan-out and for seeded trace generation —
parallelism only changes wall-clock time, never results.
"""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import (
    generate_instances,
    resolve_workers,
    run_instances,
)
from repro.experiments.runner import generate_synthetic_instances, run_instance
from repro.workloads.lublin import LublinWorkloadGenerator

ALGORITHMS = ["fcfs", "easy"]


def _small_config(num_traces=3):
    return ExperimentConfig(
        cluster=Cluster(8, 4, 8.0),
        num_traces=num_traces,
        num_jobs=25,
        load_levels=(0.5,),
        algorithms=tuple(ALGORITHMS),
        hpc2n_weeks=1,
        hpc2n_jobs_per_week=20,
    )


def _workloads(num=3, jobs=25):
    cluster = Cluster(8, 4, 8.0)
    generator = LublinWorkloadGenerator(cluster)
    return [
        generator.generate(jobs, seed=100 + i, name=f"wl-{i}") for i in range(num)
    ]


def _result_fingerprint(result):
    return (
        result.algorithm,
        result.makespan,
        result.idle_node_seconds,
        [
            (r.spec.job_id, r.first_start_time, r.completion_time,
             r.preemptions, r.migrations)
            for r in result.jobs
        ],
    )


def _instance_fingerprint(instance):
    return (
        instance.workload_name,
        [(name, _result_fingerprint(res)) for name, res in instance.results.items()],
    )


class TestResolveWorkers:
    def test_none_and_one_are_serial(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1

    def test_zero_and_negative_mean_all_cpus(self):
        assert resolve_workers(0) >= 1
        assert resolve_workers(-3) >= 1

    def test_positive_passthrough(self):
        assert resolve_workers(5) == 5


class TestRunInstancesParallel:
    def test_parallel_identical_to_serial(self):
        workloads = _workloads()
        serial = [
            run_instance(w, ALGORITHMS, penalty_seconds=300.0) for w in workloads
        ]
        parallel = run_instances(
            workloads, ALGORITHMS, penalty_seconds=300.0, workers=2
        )
        assert [_instance_fingerprint(i) for i in parallel] == [
            _instance_fingerprint(i) for i in serial
        ]

    def test_preserves_instance_and_algorithm_order(self):
        workloads = _workloads(num=2)
        outcomes = run_instances(workloads, ALGORITHMS, workers=2)
        assert [o.workload_name for o in outcomes] == ["wl-0", "wl-1"]
        for outcome in outcomes:
            assert list(outcome.results) == ALGORITHMS

    def test_workers_one_uses_serial_path(self):
        workloads = _workloads(num=1)
        outcomes = run_instances(workloads, ALGORITHMS, workers=1)
        assert len(outcomes) == 1
        assert set(outcomes[0].results) == set(ALGORITHMS)

    def test_empty_workload_list(self):
        assert run_instances([], ALGORITHMS, workers=2) == []


class TestGenerateInstancesParallel:
    def test_parallel_traces_identical_to_serial(self):
        config = _small_config(num_traces=4)
        serial = generate_synthetic_instances(config, load=0.5)
        parallel = generate_instances(config, load=0.5, workers=2)
        assert len(parallel) == len(serial)
        for a, b in zip(serial, parallel):
            assert a.name == b.name
            assert a.jobs == b.jobs

    def test_unscaled_traces_identical(self):
        config = _small_config(num_traces=2)
        serial = generate_synthetic_instances(config, load=None)
        parallel = generate_instances(config, load=None, workers=2)
        for a, b in zip(serial, parallel):
            assert a.jobs == b.jobs


class TestDriverWiring:
    def test_config_carries_workers(self):
        config = _small_config()
        assert config.workers == 1
        from dataclasses import replace

        assert replace(config, workers=4).workers == 4

    def test_figure1_parallel_matches_serial(self):
        from dataclasses import replace

        from repro.experiments.figure1 import run_figure1

        config = _small_config(num_traces=2)
        serial = run_figure1(config)
        parallel = run_figure1(replace(config, workers=2))
        assert parallel.points == serial.points

    def test_cli_exposes_workers_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["--workers", "3", "figure1"])
        assert args.workers == 3

        from repro.cli import _config_from_args

        assert _config_from_args(args).workers == 3
