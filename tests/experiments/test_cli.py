"""Tests for the ``repro-dfrs`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_global_options(self):
        parser = build_parser()
        args = parser.parse_args(
            ["--nodes", "16", "--num-jobs", "50", "--loads", "0.2,0.6",
             "--algorithms", "fcfs,greedy", "--penalty", "0", "figure1"]
        )
        assert args.nodes == 16
        assert args.num_jobs == 50
        assert args.command == "figure1"

    def test_compare_load_option(self):
        parser = build_parser()
        args = parser.parse_args(["compare", "--load", "0.4"])
        assert args.load == pytest.approx(0.4)


class TestMain:
    def _common(self):
        return [
            "--nodes", "8",
            "--num-traces", "1",
            "--num-jobs", "12",
            "--algorithms", "easy,greedy-pmtn",
            "--seed", "3",
        ]

    def test_compare_command(self, capsys):
        code = main(self._common() + ["compare", "--load", "0.5"])
        assert code == 0
        output = capsys.readouterr().out
        assert "easy" in output and "greedy-pmtn" in output
        assert "max stretch" in output

    def test_figure1_command(self, capsys):
        code = main(self._common() + ["--loads", "0.5", "figure1"])
        assert code == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_timing_command(self, capsys):
        code = main(self._common() + ["--algorithms", "dynmcb8", "timing"])
        assert code == 0
        assert "Scheduling-time" in capsys.readouterr().out
