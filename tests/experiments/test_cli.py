"""Tests for the ``repro-dfrs`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_global_options(self):
        parser = build_parser()
        args = parser.parse_args(
            ["--nodes", "16", "--num-jobs", "50", "--loads", "0.2,0.6",
             "--algorithms", "fcfs,greedy", "--penalty", "0", "figure1"]
        )
        assert args.nodes == 16
        assert args.num_jobs == 50
        assert args.command == "figure1"

    def test_compare_load_option(self):
        parser = build_parser()
        args = parser.parse_args(["compare", "--load", "0.4"])
        assert args.load == pytest.approx(0.4)


class TestMain:
    def _common(self):
        return [
            "--nodes", "8",
            "--num-traces", "1",
            "--num-jobs", "12",
            "--algorithms", "easy,greedy-pmtn",
            "--seed", "3",
        ]

    def test_compare_command(self, capsys):
        code = main(self._common() + ["compare", "--load", "0.5"])
        assert code == 0
        output = capsys.readouterr().out
        assert "easy" in output and "greedy-pmtn" in output
        assert "max stretch" in output

    def test_figure1_command(self, capsys):
        code = main(self._common() + ["--loads", "0.5", "figure1"])
        assert code == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_timing_command(self, capsys):
        code = main(self._common() + ["--algorithms", "dynmcb8", "timing"])
        assert code == 0
        assert "Scheduling-time" in capsys.readouterr().out

    def test_algorithms_command(self, capsys):
        code = main(["algorithms"])
        assert code == 0
        output = capsys.readouterr().out
        from repro.schedulers.registry import available_algorithms

        for name in available_algorithms():
            assert name in output
        # The periodic-name grammar is spelled out, not buried in --help.
        assert "-<seconds>" in output
        assert "default 600" in output

    def test_export_dir_writes_campaign_artifacts(self, tmp_path, capsys):
        export_dir = tmp_path / "artifacts"
        code = main(
            self._common()
            + ["--loads", "0.5", "--export-dir", str(export_dir), "figure1"]
        )
        assert code == 0
        json_files = list(export_dir.glob("figure1-*.json"))
        csv_files = list(export_dir.glob("figure1-*.rows.csv"))
        assert len(json_files) == 1 and len(csv_files) == 1
        output = capsys.readouterr().out
        assert str(json_files[0]) in output

    def test_export_dir_table1_writes_all_three_campaigns(self, tmp_path):
        export_dir = tmp_path / "artifacts"
        code = main(
            self._common()
            + ["--loads", "0.5", "--export-dir", str(export_dir), "table1"]
        )
        assert code == 0
        stems = {path.name.split("-", 2)[1] for path in export_dir.glob("table1-*")}
        assert stems == {"scaled", "unscaled", "real"}

    def test_export_dir_packing_ablation(self, tmp_path):
        export_dir = tmp_path / "artifacts"
        code = main(
            [
                "--export-dir", str(export_dir),
                "packing-ablation",
                "--pack-nodes", "8", "--pack-instances", "2", "--pack-jobs", "8",
            ]
        )
        assert code == 0
        assert len(list(export_dir.glob("packing-ablation-*.rows.csv"))) == 1

    def test_compare_through_campaign_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        args = self._common() + ["--cache-dir", str(cache_dir), "compare", "--load", "0.5"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first
        assert list(cache_dir.glob("*.json"))
