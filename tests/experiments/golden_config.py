"""Shared tiny-scale configurations for the golden-output tests.

These configurations pin down the exact workloads behind the golden files in
``tests/experiments/golden/``; regenerate the files with
``python tests/experiments/regen_golden.py`` (only legitimate when the
*formatting* intentionally changes — the simulated numbers must not move).
"""

from __future__ import annotations

from repro.core.cluster import Cluster
from repro.experiments.config import ExperimentConfig

GOLDEN_CONFIG = ExperimentConfig(
    cluster=Cluster(16, 4, 8.0),
    num_traces=2,
    num_jobs=30,
    load_levels=(0.3, 0.8),
    algorithms=("fcfs", "easy", "greedy-pmtn", "dynmcb8-asap-per-600"),
    penalty_seconds=300.0,
    hpc2n_weeks=1,
    hpc2n_jobs_per_week=40,
    seed_base=7,
)

TABLE2_GOLDEN_ALGORITHMS = ("greedy-pmtn", "greedy-pmtn-migr", "dynmcb8-per-600")

EXTENSIONS_GOLDEN_ALGORITHMS = (
    "easy",
    "dynmcb8-asap-per-600",
    "dynmcb8-asap-throttled-per-600",
)
