"""Tests for the ablation and extension experiment harnesses."""

from __future__ import annotations

import pytest

from repro.core import Cluster
from repro.exceptions import ConfigurationError
from repro.experiments import (
    EXTENSION_ALGORITHMS,
    ExperimentConfig,
    generate_packing_instances,
    run_extensions_comparison,
    run_packing_ablation,
    run_period_sweep,
    run_utilization_study,
)


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        cluster=Cluster(16, 4, 8.0),
        num_traces=1,
        num_jobs=40,
        load_levels=(0.5,),
        hpc2n_weeks=1,
        hpc2n_jobs_per_week=40,
    )


class TestPeriodSweep:
    @pytest.fixture(scope="class")
    def sweep(self, request):
        config = ExperimentConfig(
            cluster=Cluster(16, 4, 8.0),
            num_traces=1,
            num_jobs=40,
            load_levels=(0.5,),
            hpc2n_weeks=1,
            hpc2n_jobs_per_week=40,
        )
        return run_period_sweep(
            config, periods=(300.0, 1200.0), load=0.5, penalty_seconds=300.0
        )

    def test_one_point_per_period(self, sweep):
        assert len(sweep.points) == 2
        assert {point.period_seconds for point in sweep.points} == {300.0, 1200.0}

    def test_stretches_are_at_least_one(self, sweep):
        for point in sweep.points:
            assert point.mean_max_stretch >= 1.0
            assert point.max_max_stretch >= point.mean_max_stretch

    def test_cost_rates_non_negative(self, sweep):
        for point in sweep.points:
            assert point.preemptions_per_hour >= 0.0
            assert point.migrations_per_hour >= 0.0

    def test_best_period_is_one_of_the_swept_values(self, sweep):
        assert sweep.best_period() in (300.0, 1200.0)

    def test_format_mentions_algorithm_and_periods(self, sweep):
        text = sweep.format()
        assert "dynmcb8-asap-per" in text
        assert "300" in text and "1200" in text

    def test_empty_periods_rejected(self, tiny_config):
        with pytest.raises(ConfigurationError):
            run_period_sweep(tiny_config, periods=())

    def test_non_positive_period_rejected(self, tiny_config):
        with pytest.raises(ConfigurationError):
            run_period_sweep(tiny_config, periods=(0.0,))


class TestPackingAblation:
    def test_instance_generation_shape(self):
        instances = generate_packing_instances(3, 10, seed=1)
        assert len(instances) == 3
        assert all(len(jobs) == 10 for jobs in instances)
        for jobs in instances:
            for job in jobs:
                assert 0.0 < job.cpu_need <= 1.0
                assert 0.0 < job.mem_requirement <= 1.0

    def test_instance_generation_deterministic(self):
        first = generate_packing_instances(2, 5, seed=7)
        second = generate_packing_instances(2, 5, seed=7)
        assert first == second

    def test_invalid_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_packing_instances(0, 5)
        with pytest.raises(ConfigurationError):
            generate_packing_instances(5, 0)

    @pytest.fixture(scope="class")
    def ablation(self):
        return run_packing_ablation(
            num_nodes=8,
            num_instances=5,
            jobs_per_instance=10,
            seed=3,
            packers=("mcb8", "first-fit", "worst-fit"),
        )

    def test_one_score_per_packer(self, ablation):
        assert {score.packer for score in ablation.scores} == {
            "mcb8",
            "first-fit",
            "worst-fit",
        }

    def test_yields_within_unit_interval(self, ablation):
        for score in ablation.scores:
            assert 0.0 <= score.worst_yield <= score.mean_yield <= 1.0

    def test_bound_ratio_never_exceeds_one_plus_accuracy(self, ablation):
        for score in ablation.scores:
            assert score.mean_bound_ratio <= 1.02

    def test_ranking_sorted_by_mean_yield(self, ablation):
        ranking = ablation.ranking()
        means = [ablation.score_for(name).mean_yield for name in ranking]
        assert means == sorted(means, reverse=True)

    def test_mcb8_competitive_with_first_fit(self, ablation):
        mcb8 = ablation.score_for("mcb8").mean_yield
        ffd = ablation.score_for("first-fit").mean_yield
        assert mcb8 >= ffd - 0.05

    def test_score_for_unknown_packer_rejected(self, ablation):
        with pytest.raises(ConfigurationError):
            ablation.score_for("nonexistent")

    def test_format_lists_packers(self, ablation):
        text = ablation.format()
        for name in ("mcb8", "first-fit", "worst-fit"):
            assert name in text

    def test_invalid_node_count_rejected(self):
        with pytest.raises(ConfigurationError):
            run_packing_ablation(num_nodes=0)

    def test_empty_packers_rejected(self):
        with pytest.raises(ConfigurationError):
            run_packing_ablation(packers=())


class TestUtilizationStudy:
    @pytest.fixture(scope="class")
    def study(self):
        config = ExperimentConfig(
            cluster=Cluster(16, 4, 8.0),
            num_traces=1,
            num_jobs=30,
            load_levels=(0.5,),
            hpc2n_weeks=1,
            hpc2n_jobs_per_week=30,
        )
        return run_utilization_study(
            config,
            load=0.5,
            penalty_seconds=0.0,
            algorithms=("easy", "dynmcb8-asap-per-600"),
        )

    def test_one_profile_per_algorithm(self, study):
        assert {profile.algorithm for profile in study.profiles} == {
            "easy",
            "dynmcb8-asap-per-600",
        }

    def test_busy_nodes_within_cluster(self, study):
        for profile in study.profiles:
            assert 0.0 <= profile.mean_busy_nodes <= study.num_nodes
            assert 0 <= profile.peak_busy_nodes <= study.num_nodes

    def test_energy_savings_fraction_valid(self, study):
        for profile in study.profiles:
            assert 0.0 <= profile.energy.savings_fraction <= 1.0

    def test_fairness_index_valid(self, study):
        for profile in study.profiles:
            assert 0.0 < profile.fairness.jain_stretch <= 1.0

    def test_profile_for_lookup(self, study):
        assert study.profile_for("easy").algorithm == "easy"
        with pytest.raises(ConfigurationError):
            study.profile_for("nonexistent")

    def test_format_contains_headline_columns(self, study):
        text = study.format()
        assert "mean busy nodes" in text
        assert "Jain" in text

    def test_empty_algorithms_rejected(self, tiny_config):
        with pytest.raises(ConfigurationError):
            run_utilization_study(tiny_config, algorithms=())


class TestExtensionsComparison:
    @pytest.fixture(scope="class")
    def outcome(self):
        config = ExperimentConfig(
            cluster=Cluster(16, 4, 8.0),
            num_traces=1,
            num_jobs=30,
            load_levels=(0.5,),
            hpc2n_weeks=1,
            hpc2n_jobs_per_week=30,
        )
        return run_extensions_comparison(
            config,
            algorithms=("easy", "dynmcb8-asap-per-600", "dynmcb8-asap-weighted-per-600"),
            penalty_seconds=300.0,
        )

    def test_default_algorithm_set_contains_extensions(self):
        assert "dynmcb8-asap-throttled-per-600" in EXTENSION_ALGORITHMS
        assert "dynmcb8-asap-weighted-per-600" in EXTENSION_ALGORITHMS
        assert "conservative" in EXTENSION_ALGORITHMS

    def test_stats_per_algorithm(self, outcome):
        assert set(outcome.stats) == {
            "easy",
            "dynmcb8-asap-per-600",
            "dynmcb8-asap-weighted-per-600",
        }
        for stats in outcome.stats.values():
            assert stats.average >= 1.0
            assert stats.maximum >= stats.average

    def test_best_algorithm_is_a_dfrs_variant(self, outcome):
        assert outcome.best_algorithm().startswith("dynmcb8")

    def test_format_sorted_best_first(self, outcome):
        text = outcome.format()
        best = outcome.best_algorithm()
        assert text.index(best) < text.index("easy")

    def test_empty_algorithms_rejected(self, tiny_config):
        with pytest.raises(ConfigurationError):
            run_extensions_comparison(tiny_config, algorithms=())
