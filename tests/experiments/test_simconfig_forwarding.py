"""Satellite regression: ``run_algorithm`` forwards a full SimulationConfig.

The seed implementation hardcoded the engine configuration inside
``run_algorithm``, so per-scenario engine options (``legacy_event_loop``,
``record_scheduler_times``) could never reach single-run paths.  These tests
pin the forwarding through ``run_algorithm``, ``run_instance``, and
``run_instances`` (serial and pooled), and through campaign scenarios.
"""

from __future__ import annotations

import pytest

from repro.campaign.executor import Campaign
from repro.campaign.scenario import LublinSource, Scenario
from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig
from repro.core.penalties import ReschedulingPenaltyModel
from repro.experiments.runner import (
    resolve_simulation_config,
    run_algorithm,
    run_instance,
    run_instances,
)
from repro.workloads.lublin import LublinWorkloadGenerator

CLUSTER = Cluster(16, 4, 8.0)


@pytest.fixture(scope="module")
def workload():
    return LublinWorkloadGenerator(CLUSTER).generate(20, seed=3, name="t")


class TestResolveSimulationConfig:
    def test_default_builds_penalty_model(self):
        config = resolve_simulation_config(300.0)
        assert config.penalty_model == ReschedulingPenaltyModel(300.0)
        assert not config.legacy_event_loop

    def test_explicit_config_wins_wholesale(self):
        explicit = SimulationConfig(
            penalty_model=ReschedulingPenaltyModel(42.0), legacy_event_loop=True
        )
        assert resolve_simulation_config(300.0, explicit) is explicit


class TestForwarding:
    def test_legacy_event_loop_reaches_single_run(self, workload):
        config = SimulationConfig(
            penalty_model=ReschedulingPenaltyModel(300.0), legacy_event_loop=True
        )
        legacy = run_algorithm(
            workload, "greedy-pmtn", simulation_config=config
        )
        modern = run_algorithm(workload, "greedy-pmtn", penalty_seconds=300.0)
        # The two event loops must agree bit-for-bit (engine contract), which
        # also proves the flag actually reached the engine on both paths.
        assert legacy.max_stretch == modern.max_stretch
        assert legacy.summary() == modern.summary()

    def test_record_scheduler_times_toggle_forwarded(self, workload):
        config = SimulationConfig(
            penalty_model=ReschedulingPenaltyModel(0.0),
            record_scheduler_times=False,
        )
        result = run_algorithm(workload, "dynmcb8", simulation_config=config)
        assert list(result.scheduler_times) == []
        with_times = run_algorithm(workload, "dynmcb8", penalty_seconds=0.0)
        assert len(with_times.scheduler_times) > 0

    def test_run_instance_forwards(self, workload):
        config = SimulationConfig(
            penalty_model=ReschedulingPenaltyModel(0.0),
            record_scheduler_times=False,
        )
        instance = run_instance(workload, ("dynmcb8",), simulation_config=config)
        assert list(instance.results["dynmcb8"].scheduler_times) == []

    @pytest.mark.parametrize("workers", [1, 2])
    def test_run_instances_forwards_serial_and_pooled(self, workload, workers):
        config = SimulationConfig(
            penalty_model=ReschedulingPenaltyModel(0.0),
            record_scheduler_times=False,
        )
        outcomes = run_instances(
            [workload], ("dynmcb8", "greedy"), simulation_config=config,
            workers=workers,
        )
        for result in outcomes[0].results.values():
            assert list(result.scheduler_times) == []


class TestScenarioEngineOptions:
    def test_scenario_legacy_event_loop_matches_modern(self):
        common = dict(
            source=LublinSource(num_traces=1, num_jobs=20, seed_base=5),
            cluster=CLUSTER,
            algorithms=("greedy-pmtn",),
            penalty_seconds=300.0,
        )
        modern = Campaign().run(Scenario(name="modern", **common))
        legacy = Campaign().run(
            Scenario(name="legacy", legacy_event_loop=True, **common)
        )
        assert [row.metrics for row in legacy.rows] == [
            row.metrics for row in modern.rows
        ]

    def test_scenario_can_disable_scheduler_times(self):
        scenario = Scenario(
            name="no-times",
            source=LublinSource(num_traces=1, num_jobs=20, seed_base=5),
            cluster=CLUSTER,
            algorithms=("dynmcb8",),
            record_scheduler_times=False,
            collectors=("timing",),
        )
        outcome = Campaign().run(scenario)
        assert outcome.rows[0].metric("scheduler_times") == []
