"""Unit tests for the degradation-factor aggregation layer."""

from __future__ import annotations

import pytest

from repro.core.records import CostSummary, SimulationResult
from repro.core.cluster import Cluster
from repro.experiments.degradation import DegradationAggregate, aggregate_instances
from repro.experiments.runner import InstanceResult

from ..conftest import make_job
from ..core.test_records import record


def instance(name: str, stretches: dict) -> InstanceResult:
    """Build an InstanceResult whose per-algorithm max stretch is prescribed."""
    result = InstanceResult(workload_name=name)
    for algorithm, stretch in stretches.items():
        # One job whose bounded stretch equals the prescribed value.
        runtime = 1000.0
        completion = runtime * stretch
        result.results[algorithm] = SimulationResult(
            algorithm=algorithm,
            cluster=Cluster(4),
            jobs=[record(0, submit=0.0, start=0.0, end=completion, runtime=runtime)],
            costs=CostSummary(),
            makespan=completion,
        )
    return result


class TestInstanceResult:
    def test_max_stretches_and_factors(self):
        inst = instance("i0", {"a": 2.0, "b": 8.0})
        assert inst.max_stretches() == {"a": pytest.approx(2.0), "b": pytest.approx(8.0)}
        factors = inst.degradation_factors()
        assert factors["a"] == pytest.approx(1.0)
        assert factors["b"] == pytest.approx(4.0)


class TestDegradationAggregate:
    def test_aggregation_over_instances(self):
        aggregate = aggregate_instances(
            [
                instance("i0", {"a": 2.0, "b": 4.0}),
                instance("i1", {"a": 9.0, "b": 3.0}),
            ]
        )
        stats = aggregate.stats()
        assert stats["a"].average == pytest.approx((1.0 + 3.0) / 2.0)
        assert stats["b"].average == pytest.approx((2.0 + 1.0) / 2.0)
        assert stats["a"].maximum == pytest.approx(3.0)
        assert aggregate.best_algorithm() == "b"
        assert set(aggregate.algorithms()) == {"a", "b"}

    def test_averages_shortcut(self):
        aggregate = aggregate_instances([instance("i0", {"a": 5.0, "b": 10.0})])
        averages = aggregate.averages()
        assert averages["a"] == pytest.approx(1.0)
        assert averages["b"] == pytest.approx(2.0)

    def test_best_algorithm_requires_data(self):
        with pytest.raises(ValueError):
            DegradationAggregate().best_algorithm()
