"""Golden-output tests: the campaign-backed drivers must reproduce the
pre-refactor formatting byte-for-byte.

The files under ``golden/`` were captured from the hand-rolled driver
implementations (before the :mod:`repro.campaign` refactor) at the tiny
scale pinned in ``golden_config.py``.  Every simulation is deterministic
given its seeds, so any byte difference means the refactor changed either
the simulated numbers or the rendering — both regressions.

The timing study is the one exception: its wall-clock statistics depend on
the host, so the lines carrying measured seconds are masked before the
comparison and only the deterministic fields (observation count, interarrival
statistics, layout) are held to the golden file.
"""

from __future__ import annotations

import pathlib
import re
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from golden_config import (  # noqa: E402
    EXTENSIONS_GOLDEN_ALGORITHMS,
    GOLDEN_CONFIG,
    TABLE2_GOLDEN_ALGORITHMS,
)

from repro.experiments.extensions import run_extensions_comparison
from repro.experiments.figure1 import run_figure1
from repro.experiments.packing_ablation import run_packing_ablation
from repro.experiments.period_sweep import run_period_sweep
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.timing import run_timing_study
from repro.experiments.utilization_study import run_utilization_study

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"


def golden(name: str) -> str:
    return (GOLDEN_DIR / name).read_text(encoding="utf-8")[:-1]


class TestGoldenOutputs:
    def test_figure1(self):
        assert run_figure1(GOLDEN_CONFIG).format() == golden("figure1.txt")

    def test_table1(self):
        assert run_table1(GOLDEN_CONFIG).format() == golden("table1.txt")

    def test_table2(self):
        result = run_table2(GOLDEN_CONFIG, algorithms=TABLE2_GOLDEN_ALGORITHMS)
        assert result.format() == golden("table2.txt")

    def test_extensions(self):
        result = run_extensions_comparison(
            GOLDEN_CONFIG, algorithms=EXTENSIONS_GOLDEN_ALGORITHMS
        )
        assert result.format() == golden("extensions.txt")

    def test_period_sweep(self):
        result = run_period_sweep(GOLDEN_CONFIG, periods=(300.0, 1200.0), load=0.5)
        assert result.format() == golden("period_sweep.txt")

    def test_packing_ablation(self):
        result = run_packing_ablation(
            num_nodes=8,
            num_instances=5,
            jobs_per_instance=10,
            seed=3,
            packers=("mcb8", "first-fit", "worst-fit"),
        )
        assert result.format() == golden("packing_ablation.txt")

    def test_utilization(self):
        result = run_utilization_study(
            GOLDEN_CONFIG, load=0.5, algorithms=("easy", "dynmcb8-asap-per-600")
        )
        assert result.format() == golden("utilization.txt")

    @staticmethod
    def _mask_wall_clock(text: str) -> str:
        """Blank the host-dependent values of the timing table."""
        masked_rows = (
            "mean scheduling time (s)",
            "max scheduling time (s)",
            "fraction of",
        )
        lines = []
        for line in text.splitlines():
            if any(marker in line for marker in masked_rows):
                line = re.sub(r"\d+\.\d+\s*$", "<wall-clock>", line)
            lines.append(line)
        return "\n".join(lines)

    def test_timing_masked(self):
        result = run_timing_study(GOLDEN_CONFIG, algorithm="dynmcb8")
        assert self._mask_wall_clock(result.format()) == self._mask_wall_clock(
            golden("timing.txt")
        )

    def test_timing_deterministic_fields(self):
        # The observation count and interarrival mean are seed-determined.
        result = run_timing_study(GOLDEN_CONFIG, algorithm="dynmcb8")
        golden_text = golden("timing.txt")
        assert str(result.num_observations) in golden_text
        assert f"{result.mean_interarrival_seconds:.4f}" in golden_text
