"""CLI tests for the ablation / extension subcommands."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

_COMMON = [
    "--nodes", "16",
    "--num-traces", "1",
    "--num-jobs", "25",
    "--loads", "0.5",
]


class TestParser:
    @pytest.mark.parametrize(
        "command",
        ["period-sweep", "packing-ablation", "utilization", "extensions"],
    )
    def test_new_subcommands_are_registered(self, command):
        args = build_parser().parse_args([command])
        assert args.command == command

    def test_period_sweep_options(self):
        args = build_parser().parse_args(
            ["period-sweep", "--base-algorithm", "dynmcb8-per", "--periods", "60,600"]
        )
        assert args.base_algorithm == "dynmcb8-per"
        assert args.periods == "60,600"

    def test_packing_ablation_options(self):
        args = build_parser().parse_args(
            ["packing-ablation", "--pack-nodes", "8", "--pack-instances", "3"]
        )
        assert args.pack_nodes == 8
        assert args.pack_instances == 3


class TestMain:
    def test_period_sweep_prints_table(self, capsys):
        exit_code = main(
            _COMMON
            + ["--algorithms", "dynmcb8-asap-per-600"]
            + ["period-sweep", "--periods", "600,1800", "--load", "0.5"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Period sensitivity" in output
        assert "600" in output

    def test_packing_ablation_prints_table(self, capsys):
        exit_code = main(
            ["packing-ablation", "--pack-nodes", "8", "--pack-instances", "3", "--pack-jobs", "8"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Packing ablation" in output
        assert "mcb8" in output

    def test_utilization_prints_table(self, capsys):
        exit_code = main(
            _COMMON
            + ["--algorithms", "easy,dynmcb8-asap-per-600", "--penalty", "0"]
            + ["utilization", "--load", "0.5"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Utilization and energy study" in output
        assert "easy" in output

    def test_extensions_prints_table(self, capsys):
        exit_code = main(
            _COMMON
            + ["--algorithms", "easy,dynmcb8-asap-per-600,conservative"]
            + ["extensions"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Extensions vs. paper algorithms" in output
        assert "conservative" in output

    def test_characterize_synthetic_trace(self, capsys):
        exit_code = main(_COMMON + ["characterize", "--load", "0.5"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "mem<40%" in output
        assert "job width histogram" in output

    def test_characterize_swf_trace(self, capsys, tmp_path):
        from repro.workloads import Hpc2nLikeTraceGenerator, write_swf

        path = tmp_path / "trace.swf"
        records = Hpc2nLikeTraceGenerator(jobs_per_week=60).generate_records(1, seed=3)
        write_swf(records, path)
        exit_code = main(["characterize", "--swf", str(path)])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "hpc2n" in output
        assert "job width histogram" in output
