"""Tests for the analytic packing bounds and feasibility checks."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ReproError
from repro.packing import (
    PackingJob,
    cpu_capacity_yield_bound,
    infeasibility_reasons,
    job_items,
    maximize_min_yield,
    memory_feasible,
    memory_lower_bound_bins,
    mcb8_pack,
    total_cpu_need,
    total_memory_requirement,
)


def _job(job_id, tasks=1, cpu=0.5, mem=0.2):
    return PackingJob(job_id=job_id, num_tasks=tasks, cpu_need=cpu, mem_requirement=mem)


class TestTotals:
    def test_total_cpu_need(self):
        jobs = [_job(0, tasks=2, cpu=0.5), _job(1, tasks=3, cpu=1.0)]
        assert total_cpu_need(jobs) == pytest.approx(4.0)

    def test_total_memory(self):
        jobs = [_job(0, tasks=2, mem=0.25), _job(1, tasks=1, mem=0.5)]
        assert total_memory_requirement(jobs) == pytest.approx(1.0)

    def test_empty_totals_are_zero(self):
        assert total_cpu_need([]) == 0.0
        assert total_memory_requirement([]) == 0.0


class TestCpuCapacityYieldBound:
    def test_underloaded_cluster_allows_full_yield(self):
        jobs = [_job(0, tasks=2, cpu=0.5)]
        assert cpu_capacity_yield_bound(jobs, 4) == 1.0

    def test_overloaded_cluster_caps_yield(self):
        # 8 node-units of demand on 4 nodes -> yield at most 0.5.
        jobs = [_job(0, tasks=8, cpu=1.0)]
        assert cpu_capacity_yield_bound(jobs, 4) == pytest.approx(0.5)

    def test_empty_jobs_give_one(self):
        assert cpu_capacity_yield_bound([], 4) == 1.0

    def test_invalid_node_count_rejected(self):
        with pytest.raises(ReproError):
            cpu_capacity_yield_bound([], 0)

    def test_bound_never_exceeded_by_mcb8_search(self):
        jobs = [
            _job(0, tasks=4, cpu=1.0, mem=0.1),
            _job(1, tasks=4, cpu=0.8, mem=0.2),
            _job(2, tasks=2, cpu=0.6, mem=0.3),
        ]
        num_nodes = 3
        bound = cpu_capacity_yield_bound(jobs, num_nodes)
        result = maximize_min_yield(jobs, num_nodes)
        assert result.success
        assert result.yield_value <= bound + 0.01  # binary-search accuracy

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=6),
                st.floats(min_value=0.05, max_value=1.0),
                st.floats(min_value=0.05, max_value=0.5),
            ),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_search_respects_capacity_bound(self, raw_jobs, num_nodes):
        jobs = [
            _job(i, tasks=tasks, cpu=cpu, mem=mem)
            for i, (tasks, cpu, mem) in enumerate(raw_jobs)
        ]
        bound = cpu_capacity_yield_bound(jobs, num_nodes)
        result = maximize_min_yield(jobs, num_nodes)
        if result.success:
            assert result.yield_value <= bound + 0.011


class TestMemoryLowerBound:
    def test_empty_items(self):
        assert memory_lower_bound_bins([]) == 0

    def test_volume_bound(self):
        items = job_items(0, 4, cpu=0.1, memory=0.6)
        # 2.4 node-units of memory -> at least 3 bins; also 4 items > 0.5.
        assert memory_lower_bound_bins(items) == 4

    def test_pairing_bound_dominates(self):
        items = job_items(0, 3, cpu=0.1, memory=0.51)
        assert memory_lower_bound_bins(items) == 3

    def test_small_items_use_volume(self):
        items = job_items(0, 10, cpu=0.1, memory=0.3)
        assert memory_lower_bound_bins(items) == 3

    def test_bound_is_consistent_with_mcb8(self):
        items = job_items(0, 6, cpu=0.2, memory=0.4) + job_items(1, 3, cpu=0.3, memory=0.7)
        bound = memory_lower_bound_bins(items)
        result = mcb8_pack(items, 64)
        assert result.success
        assert result.bins_used >= bound


class TestFeasibility:
    def test_feasible_case(self):
        jobs = [_job(0, tasks=2, mem=0.4), _job(1, tasks=2, mem=0.4)]
        assert memory_feasible(jobs, 2)
        assert infeasibility_reasons(jobs, 2) == {}

    def test_volume_violation_detected(self):
        jobs = [_job(0, tasks=10, mem=0.9)]
        reasons = infeasibility_reasons(jobs, 4)
        assert "volume" in reasons
        assert not memory_feasible(jobs, 4)

    def test_pairing_violation_detected(self):
        jobs = [_job(0, tasks=5, mem=0.6)]
        reasons = infeasibility_reasons(jobs, 4)
        assert "pairing" in reasons

    def test_invalid_node_count_rejected(self):
        with pytest.raises(ReproError):
            infeasibility_reasons([], 0)

    def test_infeasible_jobs_fail_the_search_too(self):
        jobs = [_job(0, tasks=6, cpu=0.1, mem=0.9)]
        assert not memory_feasible(jobs, 4)
        result = maximize_min_yield(jobs, 4)
        assert not result.success

    def test_feasibility_is_necessary_not_sufficient(self):
        # A job set can pass the necessary checks yet still be unpackable;
        # the check must never claim infeasibility for a packable set.
        jobs = [_job(i, tasks=1, cpu=0.5, mem=0.45) for i in range(8)]
        assert memory_feasible(jobs, 4)
        assert maximize_min_yield(jobs, 4).success
