"""Tests for the MCB-family variants, worst-fit, and the packer registry."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.packing import (
    PACKER_NAMES,
    PackingItem,
    get_packer,
    job_items,
    maximize_min_yield,
    mcb8_pack,
    mcb_family_pack,
    worst_fit_decreasing_pack,
    PackingJob,
)


def _items(spec):
    """Build items from a list of (job_id, tasks, cpu, mem) tuples."""
    items = []
    for job_id, tasks, cpu, mem in spec:
        items.extend(job_items(job_id, tasks, cpu, mem))
    return items


def _assert_valid_packing(items, result, num_bins):
    """Common validity checks: all tasks placed, capacities respected."""
    assert result.success
    placed = 0
    usage = {}
    lookup = {(item.job_id, item.task_index): item for item in items}
    for job_id, nodes in result.assignments.items():
        for task_index, node in enumerate(nodes):
            assert 0 <= node < num_bins
            item = lookup[(job_id, task_index)]
            cpu, mem = usage.get(node, (0.0, 0.0))
            usage[node] = (cpu + item.cpu, mem + item.memory)
            placed += 1
    assert placed == len(items)
    for node, (cpu, mem) in usage.items():
        assert cpu <= 1.0 + 1e-6
        assert mem <= 1.0 + 1e-6


item_lists = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),
        st.floats(min_value=0.05, max_value=1.0),
        st.floats(min_value=0.05, max_value=1.0),
    ),
    min_size=1,
    max_size=10,
).map(
    lambda raw: [
        (job_id, tasks, cpu, mem) for job_id, (tasks, cpu, mem) in enumerate(raw)
    ]
)


class TestMcbFamilyPack:
    @pytest.mark.parametrize("ordering", ["max", "sum", "cpu", "memory", "difference"])
    def test_orderings_produce_valid_packings(self, ordering):
        items = _items([(0, 3, 0.4, 0.3), (1, 2, 0.7, 0.2), (2, 4, 0.2, 0.6)])
        result = mcb_family_pack(items, 16, ordering=ordering)
        _assert_valid_packing(items, result, 16)

    def test_max_ordering_matches_mcb8(self):
        items = _items([(0, 3, 0.4, 0.3), (1, 2, 0.7, 0.2), (2, 4, 0.2, 0.6)])
        family = mcb_family_pack(items, 16, ordering="max")
        original = mcb8_pack(items, 16)
        assert family.success == original.success
        assert family.bins_used == original.bins_used
        assert family.assignments == original.assignments

    def test_unknown_ordering_rejected(self):
        with pytest.raises(ConfigurationError):
            mcb_family_pack([], 4, ordering="nope")

    def test_empty_items_succeed(self):
        result = mcb_family_pack([], 4)
        assert result.success
        assert result.bins_used == 0

    def test_zero_bins_fail_with_items(self):
        items = _items([(0, 1, 0.5, 0.5)])
        assert not mcb_family_pack(items, 0).success

    def test_failure_when_not_enough_bins(self):
        items = _items([(0, 4, 0.9, 0.9)])
        assert not mcb_family_pack(items, 2).success

    @given(item_lists, st.integers(min_value=1, max_value=32))
    @settings(max_examples=50, deadline=None)
    def test_never_violates_capacities(self, spec, num_bins):
        items = _items(spec)
        for ordering in ("max", "sum", "difference"):
            result = mcb_family_pack(items, num_bins, ordering=ordering)
            if result.success:
                _assert_valid_packing(items, result, num_bins)


class TestWorstFit:
    def test_valid_packing(self):
        items = _items([(0, 4, 0.3, 0.3), (1, 2, 0.5, 0.1)])
        result = worst_fit_decreasing_pack(items, 16)
        _assert_valid_packing(items, result, 16)

    def test_spreads_items_across_bins(self):
        # Four small items, plenty of bins: worst-fit opens a new bin only
        # when an item does not fit, so it keeps filling the emptiest; with
        # tiny items it still uses a single bin less than or equal to mcb8.
        items = _items([(0, 4, 0.2, 0.2)])
        result = worst_fit_decreasing_pack(items, 8)
        assert result.success

    def test_empty_items(self):
        assert worst_fit_decreasing_pack([], 4).success

    def test_zero_bins_fail(self):
        assert not worst_fit_decreasing_pack(_items([(0, 1, 0.5, 0.5)]), 0).success

    @given(item_lists, st.integers(min_value=1, max_value=32))
    @settings(max_examples=50, deadline=None)
    def test_never_violates_capacities(self, spec, num_bins):
        items = _items(spec)
        result = worst_fit_decreasing_pack(items, num_bins)
        if result.success:
            _assert_valid_packing(items, result, num_bins)


class TestPackerRegistry:
    def test_all_registered_names_resolve(self):
        for name in PACKER_NAMES:
            packer = get_packer(name)
            assert callable(packer)

    def test_mcb8_is_registered(self):
        assert "mcb8" in PACKER_NAMES
        assert get_packer("mcb8") is mcb8_pack

    def test_lookup_is_case_insensitive(self):
        assert get_packer("MCB8") is mcb8_pack

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_packer("quantum-annealer")

    @pytest.mark.parametrize("name", ["mcb8", "mcb-sum", "first-fit", "best-fit", "worst-fit"])
    def test_registered_packers_produce_valid_packings(self, name):
        items = _items([(0, 3, 0.5, 0.3), (1, 2, 0.3, 0.6), (2, 1, 1.0, 0.1)])
        result = get_packer(name)(items, 16)
        _assert_valid_packing(items, result, 16)

    def test_yield_search_works_with_every_packer(self):
        jobs = [
            PackingJob(0, 3, 0.8, 0.3),
            PackingJob(1, 2, 0.6, 0.4),
            PackingJob(2, 1, 1.0, 0.2),
        ]
        for name in PACKER_NAMES:
            result = maximize_min_yield(jobs, 3, packer=get_packer(name))
            assert result.success
            assert 0.0 < result.yield_value <= 1.0

    def test_mcb8_not_worse_than_single_dimension_orderings_on_balanced_mix(self):
        # A mix designed so that balance-aware packing matters: CPU-heavy and
        # memory-heavy items in equal numbers.
        items = _items(
            [(0, 4, 0.8, 0.2), (1, 4, 0.2, 0.8), (2, 2, 0.6, 0.4), (3, 2, 0.4, 0.6)]
        )
        mcb8_bins = mcb8_pack(items, 64).bins_used
        cpu_only_bins = mcb_family_pack(items, 64, ordering="cpu").bins_used
        assert mcb8_bins <= cpu_only_bins + 1
