"""Unit tests for :mod:`repro.packing.item`."""

from __future__ import annotations

import pytest

from repro.exceptions import AllocationError
from repro.packing.item import Bin, PackingItem, PackingResult, job_items


class TestPackingItem:
    def test_properties(self):
        item = PackingItem(job_id=1, task_index=0, cpu=0.6, memory=0.3)
        assert item.max_requirement == pytest.approx(0.6)
        assert item.cpu_dominant
        item = PackingItem(job_id=1, task_index=1, cpu=0.2, memory=0.9)
        assert item.max_requirement == pytest.approx(0.9)
        assert not item.cpu_dominant

    def test_negative_requirements_rejected(self):
        with pytest.raises(AllocationError):
            PackingItem(1, 0, cpu=-0.1, memory=0.1)
        with pytest.raises(AllocationError):
            PackingItem(1, 0, cpu=0.1, memory=-0.1)

    def test_memory_above_node_rejected(self):
        with pytest.raises(AllocationError):
            PackingItem(1, 0, cpu=0.1, memory=1.5)

    def test_job_items(self):
        items = job_items(7, 3, cpu=0.5, memory=0.2)
        assert len(items) == 3
        assert [item.task_index for item in items] == [0, 1, 2]
        assert all(item.job_id == 7 for item in items)

    def test_job_items_invalid_count(self):
        with pytest.raises(AllocationError):
            job_items(7, 0, cpu=0.5, memory=0.2)


class TestBin:
    def test_fits_and_add(self):
        bin_ = Bin(0)
        item = PackingItem(1, 0, cpu=0.7, memory=0.4)
        assert bin_.fits(item)
        bin_.add(item)
        assert bin_.cpu_used == pytest.approx(0.7)
        assert bin_.memory_used == pytest.approx(0.4)
        assert bin_.cpu_free == pytest.approx(0.3)
        assert bin_.memory_free == pytest.approx(0.6)
        assert not bin_.fits(PackingItem(2, 0, cpu=0.5, memory=0.1))
        assert bin_.fits(PackingItem(2, 0, cpu=0.3, memory=0.1))

    def test_add_rejects_overflow(self):
        bin_ = Bin(0)
        bin_.add(PackingItem(1, 0, cpu=0.9, memory=0.9))
        with pytest.raises(AllocationError):
            bin_.add(PackingItem(2, 0, cpu=0.2, memory=0.01))

    def test_imbalance(self):
        bin_ = Bin(0)
        bin_.add(PackingItem(1, 0, cpu=0.8, memory=0.1))
        # Free memory (0.9) exceeds free CPU (0.2) -> want memory-heavy items.
        assert bin_.imbalance_favors_memory()
        bin_ = Bin(1)
        bin_.add(PackingItem(1, 0, cpu=0.1, memory=0.8))
        assert not bin_.imbalance_favors_memory()


class TestPackingResult:
    def test_failure_constructor(self):
        result = PackingResult.failure()
        assert not result.success
        assert result.assignments == {}
