"""Tests for the yield / estimated-stretch binary searches."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.job import MINIMUM_YIELD
from repro.packing.yield_search import (
    PackingJob,
    YIELD_SEARCH_ACCURACY,
    maximize_min_yield,
    minimize_estimated_stretch,
    stretch_target_yields,
)


def job(job_id, tasks=1, cpu=1.0, mem=0.1, flow=0.0, vt=0.0):
    return PackingJob(
        job_id=job_id,
        num_tasks=tasks,
        cpu_need=cpu,
        mem_requirement=mem,
        flow_time=flow,
        virtual_time=vt,
    )


class TestMaximizeMinYield:
    def test_empty(self):
        result = maximize_min_yield([], 4)
        assert result.success
        assert result.yield_value == pytest.approx(1.0)

    def test_underloaded_cluster_gives_full_yield(self):
        jobs = [job(0, tasks=2, cpu=0.5), job(1, tasks=1, cpu=0.25)]
        result = maximize_min_yield(jobs, 8)
        assert result.success
        assert result.yield_value == pytest.approx(1.0)
        assert set(result.assignments) == {0, 1}

    def test_two_jobs_on_one_node_share_cpu(self):
        jobs = [job(0, cpu=1.0, mem=0.4), job(1, cpu=1.0, mem=0.4)]
        result = maximize_min_yield(jobs, 1)
        assert result.success
        # Both CPU-bound tasks must share a single node: yield ~ 0.5.
        assert result.yield_value == pytest.approx(0.5, abs=YIELD_SEARCH_ACCURACY)

    def test_memory_infeasible_reports_failure(self):
        jobs = [job(0, mem=0.9), job(1, mem=0.9)]
        result = maximize_min_yield(jobs, 1)
        assert not result.success

    def test_yield_never_below_minimum(self):
        jobs = [job(i, cpu=1.0, mem=0.01) for i in range(40)]
        result = maximize_min_yield(jobs, 1)
        assert result.success
        assert result.yield_value >= MINIMUM_YIELD

    @given(
        num_jobs=st.integers(min_value=1, max_value=10),
        num_nodes=st.integers(min_value=1, max_value=8),
        cpu=st.floats(min_value=0.05, max_value=1.0),
        mem=st.floats(min_value=0.05, max_value=0.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_found_yield_is_feasible_property(self, num_jobs, num_nodes, cpu, mem):
        jobs = [job(i, cpu=cpu, mem=mem) for i in range(num_jobs)]
        result = maximize_min_yield(jobs, num_nodes)
        if not result.success:
            return
        # Re-checking feasibility at the returned yield must succeed: the
        # assignments returned are exactly a witness packing.
        loads = {}
        memories = {}
        for job_id, nodes in result.assignments.items():
            for node in nodes:
                loads[node] = loads.get(node, 0.0) + cpu * result.yield_value
                memories[node] = memories.get(node, 0.0) + mem
        assert all(value <= 1.0 + 1e-6 for value in loads.values())
        assert all(value <= 1.0 + 1e-6 for value in memories.values())


class TestStretchTargetYields:
    def test_fresh_job_needs_full_yield_for_stretch_one(self):
        jobs = [job(0, flow=0.0, vt=0.0)]
        yields = stretch_target_yields(jobs, target_stretch=1.0, period=600.0)
        assert yields[0] == pytest.approx(1.0)

    def test_negative_requirement_clamped_to_minimum(self):
        # A job whose virtual time already exceeds what the target requires.
        jobs = [job(0, flow=100.0, vt=1e6)]
        yields = stretch_target_yields(jobs, target_stretch=10.0, period=600.0)
        assert yields[0] == pytest.approx(MINIMUM_YIELD)

    def test_monotone_in_target(self):
        jobs = [job(0, flow=3000.0, vt=600.0)]
        lenient = stretch_target_yields(jobs, target_stretch=10.0, period=600.0)[0]
        strict = stretch_target_yields(jobs, target_stretch=2.0, period=600.0)[0]
        assert strict >= lenient

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            stretch_target_yields([job(0)], target_stretch=0.0, period=600.0)
        with pytest.raises(ValueError):
            stretch_target_yields([job(0)], target_stretch=1.0, period=0.0)


class TestMinimizeEstimatedStretch:
    def test_empty(self):
        result = minimize_estimated_stretch([], 4, 600.0)
        assert result.success

    def test_light_load_achieves_stretch_one(self):
        jobs = [job(0, cpu=0.5), job(1, cpu=0.5)]
        result = minimize_estimated_stretch(jobs, 4, 600.0)
        assert result.success
        assert result.target_stretch == pytest.approx(1.0)
        assert all(abs(y - 1.0) < 1e-9 for y in result.yields.values())

    def test_contended_node_raises_target(self):
        jobs = [job(i, cpu=1.0, mem=0.3) for i in range(3)]
        result = minimize_estimated_stretch(jobs, 1, 600.0)
        assert result.success
        assert result.target_stretch > 1.0
        total_cpu = sum(result.yields.values())
        assert total_cpu <= 1.0 + 0.05

    def test_memory_infeasible_fails(self):
        jobs = [job(0, mem=0.9), job(1, mem=0.9)]
        result = minimize_estimated_stretch(jobs, 1, 600.0)
        assert not result.success

    def test_jobs_with_history_need_less(self):
        # A job far ahead of schedule (large virtual time) can tolerate a low
        # yield, freeing CPU for the others.
        jobs = [
            job(0, cpu=1.0, mem=0.3, flow=600.0, vt=600.0),
            job(1, cpu=1.0, mem=0.3, flow=600.0, vt=10.0),
        ]
        result = minimize_estimated_stretch(jobs, 1, 600.0)
        assert result.success
        assert result.yields[1] > result.yields[0]
