"""Unit and property tests for the MCB8 packing heuristic."""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.packing.first_fit import best_fit_decreasing_pack, first_fit_decreasing_pack
from repro.packing.item import PackingItem, job_items
from repro.packing.mcb8 import mcb8_pack


def _validate_packing(items: List[PackingItem], assignments: Dict[int, Tuple[int, ...]], num_bins: int):
    """Check that a claimed-successful packing respects all capacities."""
    per_job: Dict[int, List[PackingItem]] = {}
    for item in items:
        per_job.setdefault(item.job_id, []).append(item)
    cpu = {}
    memory = {}
    for job_id, job_item_list in per_job.items():
        assert job_id in assignments
        nodes = assignments[job_id]
        assert len(nodes) == len(job_item_list)
        for item, node in zip(sorted(job_item_list, key=lambda i: i.task_index), nodes):
            assert 0 <= node < num_bins
            cpu[node] = cpu.get(node, 0.0) + item.cpu
            memory[node] = memory.get(node, 0.0) + item.memory
    for node, used in cpu.items():
        assert used <= 1.0 + 1e-6
    for node, used in memory.items():
        assert used <= 1.0 + 1e-6


class TestMcb8Basic:
    def test_empty_input(self):
        result = mcb8_pack([], 4)
        assert result.success
        assert result.assignments == {}
        assert result.bins_used == 0

    def test_zero_bins_fails_for_nonempty(self):
        items = job_items(0, 1, 0.5, 0.5)
        assert not mcb8_pack(items, 0).success

    def test_single_item(self):
        items = job_items(0, 1, 0.5, 0.5)
        result = mcb8_pack(items, 1)
        assert result.success
        assert result.assignments[0] == (0,)
        assert result.bins_used == 1

    def test_item_too_large_fails(self):
        items = [PackingItem(0, 0, cpu=1.2, memory=0.1)]
        assert not mcb8_pack(items, 4).success

    def test_exact_fit_two_bins(self):
        items = job_items(0, 4, cpu=0.5, memory=0.5)
        result = mcb8_pack(items, 2)
        assert result.success
        assert result.bins_used == 2
        _validate_packing(items, result.assignments, 2)

    def test_infeasible_when_not_enough_bins(self):
        items = job_items(0, 5, cpu=0.6, memory=0.6)
        assert not mcb8_pack(items, 2).success

    def test_multiple_jobs(self):
        items = (
            job_items(0, 2, cpu=0.6, memory=0.2)
            + job_items(1, 2, cpu=0.2, memory=0.6)
            + job_items(2, 1, cpu=0.3, memory=0.3)
        )
        result = mcb8_pack(items, 3)
        assert result.success
        _validate_packing(items, result.assignments, 3)

    def test_balancing_beats_naive_stacking(self):
        """MCB8 pairs CPU-heavy with memory-heavy items on the same node."""
        items = (
            job_items(0, 2, cpu=0.9, memory=0.1)
            + job_items(1, 2, cpu=0.1, memory=0.9)
        )
        result = mcb8_pack(items, 2)
        assert result.success
        _validate_packing(items, result.assignments, 2)
        # Each bin must hold one CPU-heavy and one memory-heavy task.
        nodes_cpu_heavy = sorted(result.assignments[0])
        nodes_mem_heavy = sorted(result.assignments[1])
        assert nodes_cpu_heavy == nodes_mem_heavy == [0, 1]

    def test_deterministic(self):
        items = job_items(0, 3, cpu=0.4, memory=0.3) + job_items(1, 2, cpu=0.2, memory=0.5)
        first = mcb8_pack(items, 4)
        second = mcb8_pack(items, 4)
        assert first.assignments == second.assignments


@st.composite
def packing_instances(draw):
    num_jobs = draw(st.integers(min_value=1, max_value=8))
    items: List[PackingItem] = []
    for job_id in range(num_jobs):
        tasks = draw(st.integers(min_value=1, max_value=4))
        cpu = draw(st.floats(min_value=0.01, max_value=1.0))
        memory = draw(st.floats(min_value=0.01, max_value=1.0))
        items.extend(job_items(job_id, tasks, cpu, memory))
    num_bins = draw(st.integers(min_value=1, max_value=16))
    return items, num_bins


class TestMcb8Properties:
    @given(packing_instances())
    @settings(max_examples=200, deadline=None)
    def test_successful_packings_are_valid(self, instance):
        items, num_bins = instance
        result = mcb8_pack(items, num_bins)
        if result.success:
            _validate_packing(items, result.assignments, num_bins)
            assert result.bins_used <= num_bins

    @given(packing_instances())
    @settings(max_examples=100, deadline=None)
    def test_one_bin_per_item_always_succeeds(self, instance):
        """With as many bins as items, any instance of unit-sized items packs."""
        items, _ = instance
        result = mcb8_pack(items, len(items))
        assert result.success

    @given(packing_instances())
    @settings(max_examples=100, deadline=None)
    def test_baselines_agree_on_validity(self, instance):
        items, num_bins = instance
        for packer in (first_fit_decreasing_pack, best_fit_decreasing_pack):
            result = packer(items, num_bins)
            if result.success:
                _validate_packing(items, result.assignments, num_bins)


class TestBaselinePackers:
    def test_first_fit_simple(self):
        items = job_items(0, 2, cpu=0.5, memory=0.5)
        result = first_fit_decreasing_pack(items, 2)
        assert result.success

    def test_best_fit_prefers_fuller_bin(self):
        items = (
            job_items(0, 1, cpu=0.6, memory=0.1)
            + job_items(1, 1, cpu=0.3, memory=0.1)
            + job_items(2, 1, cpu=0.35, memory=0.1)
        )
        result = best_fit_decreasing_pack(items, 2)
        assert result.success

    def test_failure_on_too_few_bins(self):
        items = job_items(0, 3, cpu=0.9, memory=0.9)
        assert not first_fit_decreasing_pack(items, 2).success
        assert not best_fit_decreasing_pack(items, 2).success
