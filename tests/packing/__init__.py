"""Test package (enables relative imports of shared conftest helpers)."""
