"""Per-rule fixtures: each rule fires on its violation, stays quiet on the
idiomatic form, and respects ``# repro: noqa`` pragmas."""

import textwrap

import pytest

from repro.devtools import check_paths
from repro.devtools.rulepack import (
    DirectTimeInCoreRule,
    FloatEqualityRule,
    GlobalRngDrawRule,
    SetIterationRule,
    BarePrintRule,
    SwallowedExceptionRule,
    UnpicklableTaskRule,
    UnseededDefaultRngRule,
    WallClockRule,
)

CORE = "src/repro/core/mod.py"
PACKING = "src/repro/packing/mod.py"
OUTSIDE = "src/repro/analysis/mod.py"
TESTFILE = "tests/test_mod.py"


def run_rule(tmp_path, rule, source, relfile=CORE):
    path = tmp_path / relfile
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return check_paths([path], project_root=tmp_path, rules=[rule])


def codes(result):
    return [finding.code for finding in result.findings]


# --------------------------------------------------------------------------- #
# DET101 — unseeded default_rng                                                #
# --------------------------------------------------------------------------- #
def test_det101_flags_unseeded_default_rng(tmp_path):
    result = run_rule(
        tmp_path,
        UnseededDefaultRngRule(),
        """
        import numpy as np
        rng = np.random.default_rng()
        """,
    )
    assert codes(result) == ["DET101"]
    assert result.findings[0].line == 3


def test_det101_allows_seeded_and_alias_forms(tmp_path):
    result = run_rule(
        tmp_path,
        UnseededDefaultRngRule(),
        """
        import numpy as np
        from numpy.random import default_rng
        a = np.random.default_rng(42)
        b = default_rng(seed)
        """,
    )
    assert codes(result) == []


def test_det101_resolves_from_import_alias(tmp_path):
    result = run_rule(
        tmp_path,
        UnseededDefaultRngRule(),
        """
        from numpy.random import default_rng
        rng = default_rng()
        """,
    )
    assert codes(result) == ["DET101"]


def test_det101_noqa_suppresses(tmp_path):
    result = run_rule(
        tmp_path,
        UnseededDefaultRngRule(),
        """
        import numpy as np
        rng = np.random.default_rng()  # repro: noqa[DET101]
        """,
    )
    assert codes(result) == []
    assert result.suppressed == 1


# --------------------------------------------------------------------------- #
# DET102 — global RNG draws                                                    #
# --------------------------------------------------------------------------- #
def test_det102_flags_numpy_and_stdlib_global_draws(tmp_path):
    result = run_rule(
        tmp_path,
        GlobalRngDrawRule(),
        """
        import numpy as np
        import random
        x = np.random.rand(3)
        y = random.randint(0, 5)
        """,
    )
    assert codes(result) == ["DET102", "DET102"]


def test_det102_allows_generator_methods_and_constructors(tmp_path):
    result = run_rule(
        tmp_path,
        GlobalRngDrawRule(),
        """
        import numpy as np
        rng = np.random.default_rng(7)
        seq = np.random.SeedSequence(7)
        x = rng.normal(size=3)
        """,
    )
    assert codes(result) == []


def test_det102_family_noqa_suppresses(tmp_path):
    result = run_rule(
        tmp_path,
        GlobalRngDrawRule(),
        """
        import numpy as np
        x = np.random.rand(3)  # repro: noqa[DET]
        """,
    )
    assert codes(result) == []
    assert result.suppressed == 1


# --------------------------------------------------------------------------- #
# DET103 — wall clock on result paths                                          #
# --------------------------------------------------------------------------- #
WALL_CLOCK_SRC = """
import time
import datetime
t = time.time()
d = datetime.datetime.now()
"""


def test_det103_flags_wall_clock_in_result_packages(tmp_path):
    result = run_rule(tmp_path, WallClockRule(), WALL_CLOCK_SRC)
    assert codes(result) == ["DET103", "DET103"]


def test_det103_ignores_code_outside_result_packages(tmp_path):
    for relfile in (OUTSIDE, TESTFILE):
        result = run_rule(tmp_path, WallClockRule(), WALL_CLOCK_SRC, relfile=relfile)
        assert codes(result) == [], relfile


def test_det103_allows_perf_counter(tmp_path):
    result = run_rule(
        tmp_path,
        WallClockRule(),
        """
        import time
        start = time.perf_counter()
        """,
    )
    assert codes(result) == []


# --------------------------------------------------------------------------- #
# OBS701 — direct time.* calls in core bypass the clock/telemetry seams        #
# --------------------------------------------------------------------------- #
DIRECT_TIME_SRC = """
import time
start = time.perf_counter()
time.sleep(0.1)
"""


def test_obs701_flags_direct_time_calls_in_core(tmp_path):
    result = run_rule(tmp_path, DirectTimeInCoreRule(), DIRECT_TIME_SRC)
    assert codes(result) == ["OBS701", "OBS701"]


def test_obs701_resolves_from_import_alias(tmp_path):
    result = run_rule(
        tmp_path,
        DirectTimeInCoreRule(),
        """
        from time import perf_counter
        start = perf_counter()
        """,
    )
    assert codes(result) == ["OBS701"]


def test_obs701_allows_the_timing_seam(tmp_path):
    result = run_rule(
        tmp_path,
        DirectTimeInCoreRule(),
        """
        from repro.obs.timing import perf_counter
        start = perf_counter()
        """,
    )
    assert codes(result) == []


def test_obs701_exempts_the_clock_seam_and_other_packages(tmp_path):
    for relfile in ("src/repro/core/clock.py", PACKING, OUTSIDE, TESTFILE):
        result = run_rule(
            tmp_path, DirectTimeInCoreRule(), DIRECT_TIME_SRC, relfile=relfile
        )
        assert codes(result) == [], relfile


def test_obs701_noqa_suppresses(tmp_path):
    result = run_rule(
        tmp_path,
        DirectTimeInCoreRule(),
        """
        import time
        start = time.perf_counter()  # repro: noqa[OBS701]
        """,
    )
    assert codes(result) == []
    assert result.suppressed == 1


# --------------------------------------------------------------------------- #
# ORD201 — set iteration order                                                 #
# --------------------------------------------------------------------------- #
def test_ord201_flags_for_loop_over_set(tmp_path):
    result = run_rule(
        tmp_path,
        SetIterationRule(),
        """
        def f(items):
            pending = set(items)
            for item in pending:
                print(item)
        """,
    )
    assert codes(result) == ["ORD201"]


def test_ord201_flags_comprehension_over_set_literal(tmp_path):
    result = run_rule(
        tmp_path,
        SetIterationRule(),
        """
        def f():
            return [x for x in {1, 2, 3}]
        """,
    )
    assert codes(result) == ["ORD201"]


def test_ord201_flags_list_materialisation(tmp_path):
    result = run_rule(
        tmp_path,
        SetIterationRule(),
        """
        def f(a, b):
            return list(set(a) & set(b))
        """,
    )
    assert codes(result) == ["ORD201"]


def test_ord201_allows_sorted_and_dict_iteration(tmp_path):
    result = run_rule(
        tmp_path,
        SetIterationRule(),
        """
        def f(items, mapping):
            for item in sorted(set(items)):
                print(item)
            for key in mapping:
                print(key)
        """,
    )
    assert codes(result) == []


def test_ord201_ignores_non_result_packages(tmp_path):
    result = run_rule(
        tmp_path,
        SetIterationRule(),
        """
        def f(items):
            for item in set(items):
                print(item)
        """,
        relfile=TESTFILE,
    )
    assert codes(result) == []


def test_ord201_blanket_noqa_suppresses(tmp_path):
    result = run_rule(
        tmp_path,
        SetIterationRule(),
        """
        def f(items):
            for item in set(items):  # repro: noqa
                print(item)
        """,
    )
    assert codes(result) == []
    assert result.suppressed == 1


# --------------------------------------------------------------------------- #
# SER301 — unpicklable worker payloads                                         #
# --------------------------------------------------------------------------- #
def test_ser301_flags_lambda_into_map_tasks(tmp_path):
    result = run_rule(
        tmp_path,
        UnpicklableTaskRule(),
        """
        def run(tasks):
            return map_tasks(lambda t: t + 1, tasks)
        """,
    )
    assert codes(result) == ["SER301"]


def test_ser301_flags_nested_def_into_pool_map(tmp_path):
    result = run_rule(
        tmp_path,
        UnpicklableTaskRule(),
        """
        def run(pool, tasks):
            def helper(t):
                return t + 1
            return pool.map(helper, tasks)
        """,
    )
    assert codes(result) == ["SER301"]


def test_ser301_allows_module_level_function(tmp_path):
    result = run_rule(
        tmp_path,
        UnpicklableTaskRule(),
        """
        def helper(t):
            return t + 1

        def run(tasks):
            return map_tasks(helper, tasks)
        """,
    )
    assert codes(result) == []


# --------------------------------------------------------------------------- #
# FLT401 — raw float equality in core/ and packing/                            #
# --------------------------------------------------------------------------- #
def test_flt401_flags_computed_float_equality(tmp_path):
    result = run_rule(
        tmp_path,
        FloatEqualityRule(),
        """
        def f(a, b, c):
            return a / b == c
        """,
        relfile=PACKING,
    )
    assert codes(result) == ["FLT401"]


def test_flt401_flags_non_sentinel_literal(tmp_path):
    result = run_rule(
        tmp_path,
        FloatEqualityRule(),
        """
        def f(x):
            return x != 0.5
        """,
        relfile=PACKING,
    )
    assert codes(result) == ["FLT401"]


def test_flt401_allows_sentinels_and_plain_names(tmp_path):
    result = run_rule(
        tmp_path,
        FloatEqualityRule(),
        """
        def f(x, y):
            if x == 1.0:
                return True
            if x == 0.0:
                return False
            return x == y
        """,
        relfile=CORE,
    )
    assert codes(result) == []


def test_flt401_scoped_to_core_and_packing(tmp_path):
    result = run_rule(
        tmp_path,
        FloatEqualityRule(),
        """
        def f(a, b, c):
            return a / b == c
        """,
        relfile=OUTSIDE,
    )
    assert codes(result) == []


# --------------------------------------------------------------------------- #
# EXC501 — swallowed exceptions                                                #
# --------------------------------------------------------------------------- #
def test_exc501_flags_bare_and_blanket_except(tmp_path):
    result = run_rule(
        tmp_path,
        SwallowedExceptionRule(),
        """
        def f():
            try:
                work()
            except:
                pass

        def g():
            try:
                work()
            except Exception:
                pass
        """,
    )
    assert codes(result) == ["EXC501", "EXC501"]


def test_exc501_allows_narrow_catch_and_reraise(tmp_path):
    result = run_rule(
        tmp_path,
        SwallowedExceptionRule(),
        """
        def f():
            try:
                work()
            except ValueError:
                pass

        def g():
            try:
                work()
            except Exception:
                cleanup()
                raise
        """,
    )
    assert codes(result) == []


# --------------------------------------------------------------------------- #
# Cross-rule: the full pack over one fixture tree                              #
# --------------------------------------------------------------------------- #
def test_full_pack_reports_sorted_findings(tmp_path):
    bad = tmp_path / CORE
    bad.parent.mkdir(parents=True)
    bad.write_text(
        textwrap.dedent(
            """
            import numpy as np
            rng = np.random.default_rng()

            def f(items):
                for item in set(items):
                    print(item)
            """
        )
    )
    result = check_paths([tmp_path / "src"], project_root=tmp_path)
    assert codes(result) == ["DET101", "ORD201", "OBS702"]
    assert result.findings == sorted(result.findings)
    assert result.checked_files == 1

# --------------------------------------------------------------------------- #
# OBS702 — bare print() outside the CLI layers                                 #
# --------------------------------------------------------------------------- #
BARE_PRINT_SRC = """
def helper(x):
    print("debug", x)
    return x
"""


def test_obs702_flags_bare_print_in_library_code(tmp_path):
    for relfile in (CORE, PACKING, "src/repro/obs/soak.py"):
        result = run_rule(tmp_path, BarePrintRule(), BARE_PRINT_SRC, relfile=relfile)
        assert codes(result) == ["OBS702"], relfile


def test_obs702_exempts_cli_layers_and_devtools(tmp_path):
    for relfile in (
        "src/repro/cli.py",
        "src/repro/serve/cli.py",
        "src/repro/obs/cli.py",
        "src/repro/devtools/reporting.py",
        TESTFILE,
    ):
        result = run_rule(tmp_path, BarePrintRule(), BARE_PRINT_SRC, relfile=relfile)
        assert codes(result) == [], relfile


def test_obs702_ignores_non_builtin_print_attributes(tmp_path):
    result = run_rule(
        tmp_path,
        BarePrintRule(),
        """
        class Reporter:
            def print(self, text):
                return text

        def use(reporter):
            reporter.print("ok")
        """,
    )
    assert codes(result) == []


def test_obs702_noqa_suppresses(tmp_path):
    result = run_rule(
        tmp_path,
        BarePrintRule(),
        """
        def helper(x):
            print(x)  # repro: noqa[OBS702]
        """,
    )
    assert codes(result) == []
    assert result.suppressed == 1

