"""Engine behavior: file collection, syntax errors, selection, pragmas,
fingerprints, and the shrink-only baseline lifecycle."""

import json
import textwrap

import pytest

from repro.devtools import (
    Finding,
    check_paths,
    create_rules,
    fingerprint_findings,
    load_baseline,
    write_baseline,
)
from repro.devtools.astutils import noqa_codes
from repro.devtools.engine import collect_files
from repro.exceptions import ConfigurationError

BAD_SOURCE = textwrap.dedent(
    """
    import numpy as np
    rng = np.random.default_rng()
    other = np.random.default_rng()
    """
)


def write_module(tmp_path, source, relfile="src/repro/core/mod.py"):
    path = tmp_path / relfile
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


# --------------------------------------------------------------------------- #
# File collection                                                              #
# --------------------------------------------------------------------------- #
def test_collect_files_sorted_and_skips_junk(tmp_path):
    write_module(tmp_path, "x = 1\n", "src/repro/core/b.py")
    write_module(tmp_path, "x = 1\n", "src/repro/core/a.py")
    write_module(tmp_path, "x = 1\n", "src/repro/core/__pycache__/a.py")
    write_module(tmp_path, "x = 1\n", "src/repro/core/.hidden/c.py")
    write_module(tmp_path, "not python", "src/repro/core/notes.txt")
    files = collect_files([tmp_path / "src"])
    assert [f.name for f in files] == ["a.py", "b.py"]


def test_collect_files_missing_path_is_configuration_error(tmp_path):
    with pytest.raises(ConfigurationError):
        collect_files([tmp_path / "nope"])


def test_syntax_error_becomes_e999_finding(tmp_path):
    path = write_module(tmp_path, "def broken(:\n")
    result = check_paths([path], project_root=tmp_path)
    assert [f.code for f in result.findings] == ["E999"]
    assert not result.ok


# --------------------------------------------------------------------------- #
# Rule selection                                                               #
# --------------------------------------------------------------------------- #
def test_create_rules_family_and_code_selectors():
    det = [rule.code for rule in create_rules(select=["DET"])]
    assert det == ["DET101", "DET102", "DET103"]
    only = [rule.code for rule in create_rules(select=["ORD201"])]
    assert only == ["ORD201"]
    without = [rule.code for rule in create_rules(ignore=["DET", "REG"])]
    assert "DET101" not in without and "REG601" not in without
    assert "ORD201" in without


def test_create_rules_unknown_selector_fails_loudly():
    with pytest.raises(ConfigurationError):
        create_rules(select=["BOGUS"])
    with pytest.raises(ConfigurationError):
        create_rules(ignore=["ZZZ999"])


# --------------------------------------------------------------------------- #
# noqa pragma parsing                                                          #
# --------------------------------------------------------------------------- #
def test_noqa_codes_parsing():
    assert noqa_codes("x = 1") is None
    assert noqa_codes("x = 1  # repro: noqa") == frozenset()
    assert noqa_codes("x = 1  # repro: noqa[DET101]") == frozenset({"DET101"})
    assert noqa_codes("x = 1  # repro: noqa[DET, ORD201]") == frozenset(
        {"DET", "ORD201"}
    )
    # Plain flake8 noqa is NOT a repro pragma.
    assert noqa_codes("x = 1  # noqa") is None


def test_noqa_with_wrong_code_does_not_suppress(tmp_path):
    path = write_module(
        tmp_path,
        """
        import numpy as np
        rng = np.random.default_rng()  # repro: noqa[ORD201]
        """,
    )
    result = check_paths([path], project_root=tmp_path)
    assert [f.code for f in result.findings] == ["DET101"]
    assert result.suppressed == 0


# --------------------------------------------------------------------------- #
# Fingerprints                                                                 #
# --------------------------------------------------------------------------- #
def test_fingerprints_stable_under_line_shifts(tmp_path):
    path = write_module(tmp_path, BAD_SOURCE)
    before = check_paths([path], project_root=tmp_path)
    path.write_text("# a comment\n# another\n" + BAD_SOURCE)
    after = check_paths([path], project_root=tmp_path)
    assert [f.line for f in before.findings] != [f.line for f in after.findings]
    assert fingerprint_findings(before.findings) == fingerprint_findings(
        after.findings
    )


def test_fingerprints_distinguish_identical_violations():
    twins = [
        Finding("a.py", 3, 1, "DET101", "msg", line_text="rng = default_rng()"),
        Finding("a.py", 9, 1, "DET101", "msg", line_text="rng = default_rng()"),
    ]
    prints = fingerprint_findings(twins)
    assert len(set(prints)) == 2
    # Parallel to input order, independent of sort order.
    assert fingerprint_findings(list(reversed(twins))) == list(reversed(prints))


# --------------------------------------------------------------------------- #
# Baseline lifecycle                                                           #
# --------------------------------------------------------------------------- #
def test_baseline_grandfathers_then_goes_stale(tmp_path):
    path = write_module(tmp_path, BAD_SOURCE)
    baseline = tmp_path / "baseline.json"

    # --fix-baseline records the two findings and the check passes.
    fixed = check_paths(
        [path], project_root=tmp_path, baseline_path=baseline, fix_baseline=True
    )
    assert len(fixed.baselined) == 2
    payload = json.loads(baseline.read_text())
    assert payload["version"] == 1 and len(payload["findings"]) == 2

    grandfathered = check_paths([path], project_root=tmp_path, baseline_path=baseline)
    assert grandfathered.ok
    assert grandfathered.findings == [] and len(grandfathered.baselined) == 2

    # Unrelated edits shifting lines do not churn the baseline.
    path.write_text("# header comment\n" + BAD_SOURCE)
    shifted = check_paths([path], project_root=tmp_path, baseline_path=baseline)
    assert shifted.ok and len(shifted.baselined) == 2

    # Fixing one violation turns its entry stale — and stale entries FAIL,
    # so the baseline can only shrink.
    path.write_text(
        textwrap.dedent(
            """
            import numpy as np
            rng = np.random.default_rng()
            other = np.random.default_rng(42)
            """
        )
    )
    stale = check_paths([path], project_root=tmp_path, baseline_path=baseline)
    assert not stale.ok
    assert stale.findings == [] and len(stale.baselined) == 1
    assert len(stale.stale_fingerprints) == 1

    # --fix-baseline drops the stale entry.
    check_paths(
        [path], project_root=tmp_path, baseline_path=baseline, fix_baseline=True
    )
    assert len(json.loads(baseline.read_text())["findings"]) == 1
    assert check_paths([path], project_root=tmp_path, baseline_path=baseline).ok


def test_new_violation_fails_despite_baseline(tmp_path):
    path = write_module(tmp_path, BAD_SOURCE)
    baseline = tmp_path / "baseline.json"
    check_paths(
        [path], project_root=tmp_path, baseline_path=baseline, fix_baseline=True
    )
    path.write_text(BAD_SOURCE + "third = np.random.default_rng()\n")
    result = check_paths([path], project_root=tmp_path, baseline_path=baseline)
    assert not result.ok
    assert len(result.findings) == 1 and len(result.baselined) == 2


def test_load_baseline_missing_and_invalid(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == {}
    garbled = tmp_path / "bad.json"
    garbled.write_text("{not json")
    with pytest.raises(ConfigurationError):
        load_baseline(garbled)
    wrong_version = tmp_path / "old.json"
    wrong_version.write_text(json.dumps({"version": 99, "findings": {}}))
    with pytest.raises(ConfigurationError):
        load_baseline(wrong_version)


def test_write_baseline_is_diff_stable(tmp_path):
    findings = [
        Finding("b.py", 2, 1, "DET101", "msg", line_text="y"),
        Finding("a.py", 1, 1, "DET101", "msg", line_text="x"),
    ]
    first = tmp_path / "one.json"
    second = tmp_path / "two.json"
    write_baseline(first, findings)
    write_baseline(second, list(reversed(findings)))
    assert first.read_text() == second.read_text()


def test_committed_repo_baseline_is_empty():
    # Policy pinned by ISSUE: in-tree violations were fixed, not baselined.
    from pathlib import Path

    repo_baseline = Path(__file__).resolve().parents[2] / "devtools-baseline.json"
    assert json.loads(repo_baseline.read_text())["findings"] == {}
