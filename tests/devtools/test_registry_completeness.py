"""Registry completeness: every registered kind round-trips through its spec.

This is the tier-1 twin of the REG601 static rule: REG601 proves every
spec-expressible class in the subsystem packages is *registered*; this test
proves every *registered* name is live — constructible, serialisable, and
``from_dict(to_dict(x))``-stable — so a registry can neither silently grow a
dangling name nor drift from the ``type`` field its factories emit.
"""

import json
from pathlib import Path

import pytest

from repro.core.cluster import Cluster
from repro.core.observers import available_recorders, create_recorder
from repro.campaign.collectors import available_collectors, create_collector
from repro.devtools import check_paths
from repro.devtools.registry_audit import RegistryCompletenessRule, subsystem_audits
from repro.metrics import (
    ExactDistribution,
    FixedHistogram,
    JobMetricsAccumulator,
    Moments,
    QuantileSketch,
    ReservoirSample,
    SumAccumulator,
    TimeWeightedValue,
    TopK,
    accumulator_from_dict,
    available_accumulators,
)
from repro.models import (
    CheckpointBandwidthOverheadModel,
    ConstantOverheadModel,
    ExactExecutionTimeModel,
    MemoryLinearOverheadModel,
    NoOverheadModel,
    StochasticExecutionTimeModel,
    TableExecutionTimeModel,
    available_execution_time_models,
    available_overhead_models,
    execution_time_model_from_dict,
    overhead_model_from_dict,
)
from repro.platform import (
    ExponentialFailureSource,
    HomogeneousPlatform,
    JsonNodeEventSource,
    NodeClass,
    NodeClassesPlatform,
    NodeEvent,
    TraceNodeEventSource,
    WeibullFailureSource,
    available_node_event_sources,
    available_platforms,
    node_event_source_from_dict,
    platform_from_dict,
    write_node_events_json,
)
from repro.schedulers.registry import (
    PAPER_ALGORITHMS,
    available_algorithms,
    create_scheduler,
)
from repro.serve import (
    AcceptAllPolicy,
    BoundedQueuePolicy,
    LoadThresholdPolicy,
    TokenBucketPolicy,
    admission_policy_from_dict,
    available_admission_policies,
)
from repro.obs import (
    NoTelemetry,
    StatsTelemetry,
    TracingTelemetry,
    available_telemetry_configs,
    telemetry_config_from_dict,
)
from repro.traces import (
    ConcatTraceSource,
    DiurnalPoissonTraceSource,
    DowneyTraceSource,
    Hpc2nLikeTraceSource,
    JsonTraceSource,
    LublinTraceSource,
    SwfTraceSource,
    available_trace_sources,
    trace_source_from_dict,
    write_trace_json,
)
from repro.traces.transforms import (
    BootstrapResample,
    FilterJobs,
    Head,
    Perturb,
    RescaleLoad,
    ScaleInterarrival,
    TimeWindow,
    available_transforms,
    transform_from_dict,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

SWF_TEXT = "; Version: 2.2\n1 0 -1 10 1 -1 -1 1 -1 -1 1 1 1 -1 -1 -1 -1 -1\n"


@pytest.fixture(scope="module")
def swf_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("swf") / "tiny.swf"
    path.write_text(SWF_TEXT)
    return path


@pytest.fixture(scope="module")
def trace_json_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "trace.json"
    workload = LublinTraceSource(num_jobs=5, seed=7).materialize(Cluster(4))
    write_trace_json(workload, path)
    return path


@pytest.fixture(scope="module")
def node_events_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("events") / "events.json"
    write_node_events_json(
        [NodeEvent(10.0, 0, "down"), NodeEvent(20.0, 0, "up")], path
    )
    return path


def trace_source_exemplars(swf_path, trace_json_path):
    lublin = LublinTraceSource(num_jobs=10, seed=3)
    return {
        "concat": ConcatTraceSource(
            sources=(LublinTraceSource(num_jobs=4), DowneyTraceSource(num_jobs=4)),
            gap_seconds=60.0,
        ),
        "diurnal-poisson": DiurnalPoissonTraceSource(num_jobs=20, seed=5),
        "downey": DowneyTraceSource(num_jobs=20, seed=5),
        "hpc2n-like": Hpc2nLikeTraceSource(weeks=1, jobs_per_week=20, seed=5),
        "json": JsonTraceSource(path=str(trace_json_path)),
        "lublin": lublin,
        "swf": SwfTraceSource(path=str(swf_path)),
        "transform": lublin.transformed(Head(count=5)),
    }


def transform_exemplars():
    return {
        "bootstrap": BootstrapResample(num_jobs=8, seed=11),
        "filter": FilterJobs(min_tasks=1, max_runtime_seconds=3600.0),
        "head": Head(count=5),
        "perturb": Perturb(runtime_factor=0.1, seed=11),
        "rescale-load": RescaleLoad(target_load=0.7),
        "scale-interarrival": ScaleInterarrival(factor=2.0),
        "time-window": TimeWindow(start=0.0, end=7200.0),
    }


def accumulator_exemplars():
    exemplars = {
        "exact": ExactDistribution(),
        "histogram": FixedHistogram(low=0.0, high=10.0, bins=4),
        "job-metrics": JobMetricsAccumulator(),
        "moments": Moments(),
        "quantile-sketch": QuantileSketch(),
        "reservoir": ReservoirSample(k=4, seed=9),
        "sum": SumAccumulator(),
        "top-k": TopK(k=3),
    }
    values = [1.0, 2.5, 4.0, 8.0]
    for kind in ("exact", "histogram", "moments", "quantile-sketch", "sum"):
        exemplars[kind].update(values)
    for index, value in enumerate(values):
        exemplars["reservoir"].add(value, key=index)
        exemplars["top-k"].add(value, index)
    time_weighted = TimeWeightedValue()
    for value in values:
        time_weighted.add_segment(value, duration=10.0)
    exemplars["time-weighted"] = time_weighted
    return exemplars


def overhead_model_exemplars():
    return {
        "none": NoOverheadModel(),
        "constant": ConstantOverheadModel(
            preemption_seconds=5.0, migration_seconds=10.0
        ),
        "memory-linear": MemoryLinearOverheadModel(
            seconds_per_gb=0.5, events=("preemption", "checkpoint")
        ),
        "checkpoint-bandwidth": CheckpointBandwidthOverheadModel(
            bandwidth_gb_per_sec=2.0, class_bandwidth={"slow": 0.5}
        ),
    }


def execution_time_model_exemplars():
    return {
        "exact": ExactExecutionTimeModel(),
        "table": TableExecutionTimeModel(
            breakpoints=((600.0, 1.1), (7200.0, 1.02)), default=1.0
        ),
        "stochastic": StochasticExecutionTimeModel(
            seed=7, min_multiplier=1.0, max_multiplier=1.3
        ),
    }


def platform_exemplars():
    return {
        "homogeneous": HomogeneousPlatform(nodes=4),
        "node-classes": NodeClassesPlatform(
            classes=(NodeClass("fat", 2), NodeClass("thin", 1, cpu=2.0, memory=0.5))
        ),
    }


def node_event_source_exemplars(node_events_path):
    return {
        "exponential": ExponentialFailureSource(seed=3),
        "weibull": WeibullFailureSource(seed=3),
        "trace": TraceNodeEventSource(events_list=((10.0, 0, "down"), (20.0, 0, "up"))),
        "json": JsonNodeEventSource(path=str(node_events_path)),
    }


def admission_policy_exemplars():
    return {
        "accept-all": AcceptAllPolicy(),
        "bounded-queue": BoundedQueuePolicy(max_pending=32, mode="shed"),
        "load-threshold": LoadThresholdPolicy(max_load=1.5),
        "token-bucket": TokenBucketPolicy(rate=2.0, burst=16.0),
    }


def telemetry_config_exemplars():
    return {
        "off": NoTelemetry(),
        "stats": StatsTelemetry(),
        "tracing": TracingTelemetry(max_spans=1000),
    }


def assert_registry_round_trips(exemplars, available, from_dict, label):
    assert set(exemplars) == set(available()), (
        f"{label}: exemplar set out of date — update this test when the "
        f"registry gains or loses a kind"
    )
    for kind, exemplar in sorted(exemplars.items()):
        assert exemplar.kind == kind, f"{label}: {kind!r} kind attribute drifted"
        spec = exemplar.to_dict()
        assert spec["type"] == kind, f"{label}: {kind!r} emits wrong type field"
        rebuilt = from_dict(spec)
        assert rebuilt.to_dict() == spec, f"{label}: {kind!r} does not round-trip"
        assert json.loads(json.dumps(spec)) == spec, (
            f"{label}: {kind!r} spec is not JSON-serialisable"
        )


def test_trace_source_registry_round_trips(swf_path, trace_json_path):
    assert_registry_round_trips(
        trace_source_exemplars(swf_path, trace_json_path),
        available_trace_sources,
        trace_source_from_dict,
        "trace source",
    )


def test_transform_registry_round_trips():
    assert_registry_round_trips(
        transform_exemplars(), available_transforms, transform_from_dict, "transform"
    )


def test_accumulator_registry_round_trips():
    assert_registry_round_trips(
        accumulator_exemplars(),
        available_accumulators,
        accumulator_from_dict,
        "accumulator",
    )


def test_platform_registry_round_trips():
    assert_registry_round_trips(
        platform_exemplars(), available_platforms, platform_from_dict, "platform"
    )


def test_node_event_source_registry_round_trips(node_events_path):
    assert_registry_round_trips(
        node_event_source_exemplars(node_events_path),
        available_node_event_sources,
        node_event_source_from_dict,
        "node event source",
    )


def test_admission_policy_registry_round_trips():
    assert_registry_round_trips(
        admission_policy_exemplars(),
        available_admission_policies,
        admission_policy_from_dict,
        "admission policy",
    )


def test_overhead_model_registry_round_trips():
    assert_registry_round_trips(
        overhead_model_exemplars(),
        available_overhead_models,
        overhead_model_from_dict,
        "overhead model",
    )


def test_execution_time_model_registry_round_trips():
    assert_registry_round_trips(
        execution_time_model_exemplars(),
        available_execution_time_models,
        execution_time_model_from_dict,
        "execution-time model",
    )


def test_telemetry_config_registry_round_trips():
    assert_registry_round_trips(
        telemetry_config_exemplars(),
        available_telemetry_configs,
        telemetry_config_from_dict,
        "telemetry spec",
    )


def test_no_dangling_scheduler_names():
    names = available_algorithms()
    assert names == sorted(names)
    for name in names:
        scheduler = create_scheduler(name)
        assert scheduler is not None, name
    # Paper names may carry a period suffix (e.g. dynmcb8-per-600) that the
    # factory parses rather than the registry storing — so the dangling-name
    # check is constructibility, not set membership.
    for name in PAPER_ALGORITHMS:
        assert create_scheduler(name) is not None, name


def test_no_dangling_collector_or_recorder_names():
    for name in available_collectors():
        assert create_collector(name) is not None, name
    for name in available_recorders():
        assert create_recorder(name) is not None, name


def test_audit_covers_every_kind_registry():
    audits = {audit.label: audit for audit in subsystem_audits()}
    assert set(audits) == {
        "trace source",
        "trace transform",
        "accumulator",
        "platform",
        "node event source",
        "admission policy",
        "overhead model",
        "execution-time model",
        "telemetry spec",
    }


def test_reg_rule_finds_nothing_in_tree():
    result = check_paths(
        [str(SRC)],
        project_root=str(REPO_ROOT),
        rules=[RegistryCompletenessRule()],
    )
    assert result.findings == [], [f.format() for f in result.findings]
