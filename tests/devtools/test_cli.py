"""``repro-dfrs dev`` CLI: exit codes (0 clean / 1 findings / 2 usage),
output formats, and the baseline flags."""

import json
import textwrap

from repro.cli import main
from repro.devtools import available_rules

CLEAN_SOURCE = "import numpy as np\nrng = np.random.default_rng(42)\n"
BAD_SOURCE = "import numpy as np\nrng = np.random.default_rng()\n"


def write_module(tmp_path, source, relfile="src/repro/core/mod.py"):
    path = tmp_path / relfile
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def test_check_clean_tree_exits_zero(tmp_path, capsys):
    path = write_module(tmp_path, CLEAN_SOURCE)
    assert main(["dev", "check", str(path), "--no-baseline"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_check_findings_exit_one_with_location(tmp_path, capsys):
    path = write_module(tmp_path, BAD_SOURCE)
    assert main(["dev", "check", str(path), "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "DET101" in out and ":2:" in out


def test_check_unknown_selector_exits_two(tmp_path, capsys):
    path = write_module(tmp_path, CLEAN_SOURCE)
    code = main(["dev", "check", str(path), "--no-baseline", "--select", "BOGUS"])
    assert code == 2
    assert "unknown rule selector" in capsys.readouterr().err


def test_check_missing_path_exits_two(tmp_path, capsys):
    code = main(["dev", "check", str(tmp_path / "nope"), "--no-baseline"])
    assert code == 2
    assert "no such file" in capsys.readouterr().err


def test_select_and_ignore_narrow_the_pack(tmp_path, capsys):
    path = write_module(
        tmp_path,
        """
        import numpy as np
        rng = np.random.default_rng()

        def f(items):
            for item in set(items):
                print(item)
        """,
    )
    assert main(["dev", "check", str(path), "--no-baseline", "--select", "ORD"]) == 1
    out = capsys.readouterr().out
    assert "ORD201" in out and "DET101" not in out
    assert (
        main(["dev", "check", str(path), "--no-baseline", "--ignore", "DET,ORD,OBS"])
        == 0
    )


def test_json_format_is_parseable(tmp_path, capsys):
    path = write_module(tmp_path, BAD_SOURCE)
    assert main(["dev", "check", str(path), "--no-baseline", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["checked_files"] == 1
    assert [f["code"] for f in payload["findings"]] == ["DET101"]


def test_fix_baseline_then_clean_then_stale(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    path = write_module(tmp_path, BAD_SOURCE)
    baseline = tmp_path / "baseline.json"

    assert main(
        ["dev", "check", str(path), "--baseline", str(baseline), "--fix-baseline"]
    ) == 0
    assert "recorded 1 finding(s)" in capsys.readouterr().out

    assert main(["dev", "check", str(path), "--baseline", str(baseline)]) == 0
    assert "1 baselined" in capsys.readouterr().out

    path.write_text(CLEAN_SOURCE)
    assert main(["dev", "check", str(path), "--baseline", str(baseline)]) == 1
    assert "stale baseline entry" in capsys.readouterr().out

    assert main(
        ["dev", "check", str(path), "--baseline", str(baseline), "--fix-baseline"]
    ) == 0
    assert main(["dev", "check", str(path), "--baseline", str(baseline)]) == 0


def test_noqa_suppression_is_counted(tmp_path, capsys):
    path = write_module(
        tmp_path,
        "import numpy as np\nrng = np.random.default_rng()  # repro: noqa[DET101]\n",
    )
    assert main(["dev", "check", str(path), "--no-baseline"]) == 0
    assert "1 noqa-suppressed" in capsys.readouterr().out


def test_dev_rules_lists_whole_catalog(capsys):
    assert main(["dev", "rules"]) == 0
    out = capsys.readouterr().out
    for code in available_rules():
        assert code in out
    assert "[project]" in out  # REG601 is the project-scoped rule


def test_repo_src_is_clean_with_committed_baseline(tmp_path, capsys, monkeypatch):
    # The acceptance gate: `repro-dfrs dev check src` from the repo root
    # exits 0 with the committed (empty) baseline.
    from pathlib import Path

    repo_root = Path(__file__).resolve().parents[2]
    monkeypatch.chdir(repo_root)
    assert main(["dev", "check", "src"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out
