"""Heterogeneous platforms: capacity-aware placement, yields, and packing."""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.context import JobView, SchedulingContext
from repro.core.engine import SimulationConfig, Simulator
from repro.core.invariants import InvariantCheckingObserver
from repro.core.job import JobSpec, JobState
from repro.packing import (
    PackingJob,
    cpu_capacity_yield_bound,
    first_fit_decreasing_pack,
    job_items,
    maximize_min_yield,
    mcb8_pack,
)
from repro.platform import NodeClass, NodeClassesPlatform
from repro.schedulers.dfrs.placement import greedy_place_job
from repro.schedulers.dfrs.yield_opt import fair_yields, improve_average_yield
from repro.schedulers.registry import create_scheduler


def _view(job_id=0, num_tasks=1, cpu_need=0.5, mem_requirement=0.4):
    return JobView(
        job_id=job_id,
        num_tasks=num_tasks,
        cpu_need=cpu_need,
        mem_requirement=mem_requirement,
        submit_time=0.0,
        state=JobState.PENDING,
        virtual_time=0.0,
        flow_time=0.0,
        backoff_count=0,
        assignment=None,
        current_yield=0.0,
        last_assignment=None,
    )


class TestGreedyPlacement:
    def test_prefers_faster_node_at_equal_absolute_load(self):
        cluster = Cluster(2, cpu_capacities=(0.5, 2.0))
        usage = cluster.usage()
        # Same absolute load on both nodes; the fast node's *normalised*
        # load is 4x lower, so the next task goes there.
        usage.add_task(0, 0.25, 0.1, 0.0, check=False)
        usage.add_task(1, 0.25, 0.1, 0.0, check=False)
        nodes = greedy_place_job(_view(), usage)
        assert nodes == [1]

    def test_small_memory_node_refuses_big_tasks(self):
        cluster = Cluster(2, mem_capacities=(0.25, 1.0))
        usage = cluster.usage()
        nodes = greedy_place_job(_view(mem_requirement=0.5), usage)
        assert nodes == [1]
        # A second wide job that only fits the big node fails once it is full.
        assert greedy_place_job(_view(job_id=1, num_tasks=3, mem_requirement=0.4),
                                usage) is None

    def test_fair_yields_respect_slow_nodes(self):
        cluster = Cluster(2, cpu_capacities=(0.5, 1.0))
        placements = {0: (0,), 1: (1,)}
        jobs = {0: _view(0, cpu_need=1.0), 1: _view(1, cpu_need=1.0)}
        yields = fair_yields(placements, jobs, cluster)
        # Node 0 runs at half speed: the common fair yield is capped by it.
        assert yields[0] == pytest.approx(0.5)
        improved = improve_average_yield(placements, yields, jobs, cluster)
        # The improvement step can raise the fast node's job back to 1.0.
        assert improved[1] == pytest.approx(1.0)
        assert improved[0] == pytest.approx(0.5)


class TestCapacityAwarePacking:
    def test_mcb8_uses_big_bins(self):
        # Two 0.8-memory items cannot share a unit bin, but both fit one
        # double-memory bin.
        items = job_items(0, 2, cpu=0.2, memory=0.8)
        unit = mcb8_pack(items, 2)
        assert unit.success and unit.bins_used == 2
        het = mcb8_pack(items, 2, capacities=((1.0, 2.0), (1.0, 1.0)))
        assert het.success and het.bins_used == 1
        assert het.assignments[0] == (0, 0)

    def test_zero_capacity_bins_are_skipped(self):
        items = job_items(0, 2, cpu=0.3, memory=0.3)
        result = mcb8_pack(
            items, 3, capacities=((0.0, 0.0), (1.0, 1.0), (1.0, 1.0))
        )
        assert result.success
        assert all(node != 0 for nodes in result.assignments.values() for node in nodes)

    def test_infeasible_when_only_dead_bins(self):
        items = job_items(0, 1, cpu=0.3, memory=0.3)
        result = mcb8_pack(items, 2, capacities=((0.0, 0.0), (0.0, 0.0)))
        assert not result.success

    def test_first_fit_opens_past_small_bins(self):
        items = job_items(0, 1, cpu=0.9, memory=0.9)
        result = first_fit_decreasing_pack(
            items, 2, capacities=((0.5, 0.5), (1.0, 1.0))
        )
        assert result.success
        assert result.assignments[0] == (1,)

    def test_maximize_min_yield_exploits_fast_nodes(self):
        jobs = [PackingJob(job_id=i, num_tasks=1, cpu_need=1.0,
                           mem_requirement=0.3) for i in range(4)]
        # Four full-need jobs on two double-speed nodes: yield 1.0 feasible.
        result = maximize_min_yield(
            jobs, 2, capacities=((2.0, 1.0), (2.0, 1.0))
        )
        assert result.success
        assert result.yield_value == pytest.approx(1.0)
        # On two unit nodes the same jobs are capped near yield 0.5.
        unit = maximize_min_yield(jobs, 2)
        assert unit.success
        assert unit.yield_value <= 0.51

    def test_pairing_bound_stays_necessary_on_big_nodes(self):
        # Four 0.6-memory tasks pack onto one 4x-memory node; the pairing
        # bound must not declare that infeasible (False proves *no* packing
        # exists — the bound has to stay a necessary condition).
        from repro.packing import infeasibility_reasons, memory_feasible

        jobs = [PackingJob(job_id=1, num_tasks=4, cpu_need=0.1,
                           mem_requirement=0.6)]
        capacities = ((1.0, 4.0), (1.0, 0.4))
        assert memory_feasible(jobs, 2, capacities=capacities)
        packed = mcb8_pack(
            [item for job in jobs for item in job.items(0.1)],
            2, capacities=capacities,
        )
        assert packed.success
        # And it still fires when big tasks genuinely cannot all be hosted.
        wide = [PackingJob(job_id=1, num_tasks=5, cpu_need=0.1,
                           mem_requirement=0.9)]
        reasons = infeasibility_reasons(wide, 2, capacities=capacities)
        assert "pairing" in reasons or "volume" in reasons

    def test_capacity_bound_sums_capacities(self):
        jobs = [PackingJob(job_id=0, num_tasks=4, cpu_need=1.0,
                           mem_requirement=0.1)]
        assert cpu_capacity_yield_bound(jobs, 2) == pytest.approx(0.5)
        assert cpu_capacity_yield_bound(
            jobs, 2, capacities=((2.0, 1.0), (2.0, 1.0))
        ) == pytest.approx(1.0)


class TestPackingCapacitiesFromContext:
    def test_context_fast_path_is_none(self):
        context = SchedulingContext(time=0.0, cluster=Cluster(4), jobs={})
        assert context.packing_capacities() is None

    def test_down_nodes_become_zero_capacity(self):
        context = SchedulingContext(
            time=0.0, cluster=Cluster(3), jobs={}, down_nodes=frozenset({1})
        )
        assert context.packing_capacities() == (
            (1.0, 1.0), (0.0, 0.0), (1.0, 1.0)
        )

    def test_heterogeneous_capacities_surface(self):
        cluster = Cluster(2, cpu_capacities=(2.0, 1.0), mem_capacities=(1.0, 0.5))
        context = SchedulingContext(time=0.0, cluster=cluster, jobs={})
        assert context.packing_capacities() == ((2.0, 1.0), (1.0, 0.5))


class TestHeterogeneousSimulations:
    """Every DFRS algorithm family end-to-end on a skewed platform."""

    ALGORITHMS = (
        "greedy",
        "greedy-pmtn",
        "greedy-pmtn-migr",
        "dynmcb8",
        "dynmcb8-per-600",
        "dynmcb8-asap-per-600",
        "dynmcb8-stretch-per-600",
    )

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_runs_clean_under_invariants(self, algorithm):
        platform = NodeClassesPlatform(
            classes=(
                NodeClass("fast", 4, cpu=2.0, memory=1.0),
                NodeClass("standard", 8, cpu=1.0, memory=1.0),
                NodeClass("small", 4, cpu=0.5, memory=0.5),
            )
        )
        cluster = platform.build_cluster()
        from repro.workloads.lublin import LublinWorkloadGenerator

        workload = LublinWorkloadGenerator(cluster).generate(40, seed=2010)
        checker = InvariantCheckingObserver()
        simulator = Simulator(
            cluster, create_scheduler(algorithm), SimulationConfig(),
            observers=[checker],
        )
        result = simulator.run(workload.jobs)
        assert result.num_jobs == 40
        assert checker.checked_events > 0

    def test_fast_nodes_finish_work_sooner(self):
        # Two identical full-need jobs: a platform whose nodes are twice as
        # fast in aggregate hosts both at full yield, halving the makespan
        # versus one unit node forcing them to share.
        specs = [
            JobSpec(0, 0.0, 1, 1.0, 0.4, 1000.0),
            JobSpec(1, 0.0, 1, 1.0, 0.4, 1000.0),
        ]
        slow = Simulator(Cluster(1), create_scheduler("dynmcb8"), SimulationConfig())
        slow_result = slow.run(specs)
        fast_cluster = NodeClassesPlatform(
            classes=(NodeClass("fast", 1, cpu=2.0),)
        ).build_cluster()
        fast = Simulator(fast_cluster, create_scheduler("dynmcb8"), SimulationConfig())
        fast_result = fast.run(specs)
        assert fast_result.makespan == pytest.approx(1000.0)
        assert slow_result.makespan == pytest.approx(2000.0, rel=0.05)
