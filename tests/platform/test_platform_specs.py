"""Platform contract: spec round-trips, registry dispatch, validation."""

from __future__ import annotations

import random

import pytest

from repro.core.cluster import Cluster
from repro.exceptions import ConfigurationError
from repro.platform import (
    ExponentialFailureSource,
    HomogeneousPlatform,
    NodeClass,
    NodeClassesPlatform,
    TraceNodeEventSource,
    available_platforms,
    platform_from_dict,
    register_platform,
)


class TestClusterCapacities:
    def test_all_ones_vectors_canonicalise_to_none(self):
        cluster = Cluster(4, 4, 8.0, cpu_capacities=(1.0,) * 4, mem_capacities=(1.0,) * 4)
        assert cluster.cpu_capacities is None
        assert cluster.mem_capacities is None
        assert not cluster.is_heterogeneous
        assert cluster == Cluster(4, 4, 8.0)

    def test_heterogeneous_vectors_survive(self):
        cluster = Cluster(3, cpu_capacities=(2.0, 1.0, 0.5))
        assert cluster.is_heterogeneous
        assert cluster.cpu_capacity(0) == 2.0
        assert cluster.mem_capacity(0) == 1.0  # memory stays homogeneous
        assert cluster.total_cpu_capacity() == 3.5
        assert cluster.node_capacities()[2] == (0.5, 1.0)

    def test_wrong_length_rejected(self):
        with pytest.raises(ConfigurationError, match="one capacity per node"):
            Cluster(3, cpu_capacities=(1.0, 2.0))

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(ConfigurationError, match="must be > 0"):
            Cluster(2, mem_capacities=(1.0, 0.0))

    def test_usage_respects_memory_capacity(self):
        cluster = Cluster(2, mem_capacities=(1.0, 0.5))
        usage = cluster.usage()
        assert usage.can_fit_memory(0, 0.8)
        assert not usage.can_fit_memory(1, 0.8)
        assert usage.memory_free(1) == 0.5

    def test_usage_unavailable_nodes(self):
        usage = Cluster(3).usage(unavailable=(1,))
        assert not usage.can_fit_memory(1, 0.1)
        assert usage.nodes_by_cpu_load() == [0, 2]
        snapshot = usage.snapshot()
        assert snapshot.unavailable_nodes() == frozenset({1})

    def test_normalized_load_ordering(self):
        cluster = Cluster(2, cpu_capacities=(2.0, 1.0))
        usage = cluster.usage()
        # Same absolute load, but node 0 is twice as fast: it sorts first.
        usage.add_task(0, 0.5, 0.1, 0.0, check=False)
        usage.add_task(1, 0.5, 0.1, 0.0, check=False)
        assert usage.nodes_by_cpu_load() == [0, 1]
        assert usage.max_cpu_load() == 0.5  # normalised by speed


class TestHomogeneousPlatform:
    def test_builds_the_plain_cluster(self):
        platform = HomogeneousPlatform(nodes=16, cores_per_node=2, node_memory_gb=4.0)
        assert platform.build_cluster() == Cluster(16, 2, 4.0)
        assert not platform.build_cluster().is_heterogeneous

    def test_round_trip(self):
        platform = HomogeneousPlatform(
            nodes=8,
            events=TraceNodeEventSource(events_list=((5.0, 1, "down"),)),
            failure_policy="migrate",
        )
        rebuilt = platform_from_dict(platform.to_dict())
        assert rebuilt == platform

    def test_bad_failure_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="failure_policy"):
            HomogeneousPlatform(nodes=4, failure_policy="explode")

    def test_events_spec_mapping_accepted(self):
        platform = HomogeneousPlatform(
            nodes=4, events={"type": "trace", "events": [[1.0, 0, "down"]]}
        )
        assert isinstance(platform.events, TraceNodeEventSource)


class TestNodeClassesPlatform:
    def test_layout_in_declaration_order(self):
        platform = NodeClassesPlatform(
            classes=(
                NodeClass("fast", 2, cpu=2.0),
                NodeClass("small", 3, cpu=0.5, memory=0.25),
            )
        )
        cluster = platform.build_cluster()
        assert cluster.num_nodes == 5
        assert cluster.cpu_capacities == (2.0, 2.0, 0.5, 0.5, 0.5)
        assert cluster.mem_capacities == (1.0, 1.0, 0.25, 0.25, 0.25)
        assert platform.class_of_node(0).name == "fast"
        assert platform.class_of_node(4).name == "small"

    def test_single_reference_class_is_homogeneous(self):
        platform = NodeClassesPlatform(classes=(NodeClass("ref", 7),))
        cluster = platform.build_cluster()
        assert cluster == Cluster(7)
        assert not cluster.is_heterogeneous

    def test_round_trip(self):
        platform = NodeClassesPlatform(
            classes=(NodeClass("a", 1, cpu=1.5), NodeClass("b", 2, memory=2.0)),
            cores_per_node=8,
            node_memory_gb=16.0,
            events=ExponentialFailureSource(
                mtbf_seconds=1000.0, mttr_seconds=10.0, horizon_seconds=100.0, seed=3
            ),
        )
        rebuilt = platform_from_dict(platform.to_dict())
        assert rebuilt == platform

    def test_duplicate_class_names_rejected(self):
        with pytest.raises(ConfigurationError, match="unique"):
            NodeClassesPlatform(classes=(NodeClass("x", 1), NodeClass("x", 1)))

    def test_empty_classes_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            NodeClassesPlatform(classes=())

    def test_class_validation(self):
        with pytest.raises(ConfigurationError, match="count"):
            NodeClass("x", 0)
        with pytest.raises(ConfigurationError, match="cpu"):
            NodeClass("x", 1, cpu=-1.0)


class TestRegistry:
    def test_known_types(self):
        assert set(available_platforms()) >= {"homogeneous", "node-classes"}

    def test_unknown_type_error_names_known_types(self):
        with pytest.raises(ConfigurationError, match="homogeneous"):
            platform_from_dict({"type": "quantum"})

    def test_missing_type_rejected(self):
        with pytest.raises(ConfigurationError, match="'type'"):
            platform_from_dict({"nodes": 4})

    def test_bad_options_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid options"):
            platform_from_dict({"type": "homogeneous", "nodez": 4})

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_platform("homogeneous", HomogeneousPlatform)

    def test_property_random_node_class_round_trips(self):
        rng = random.Random(20100525)
        for _ in range(25):
            classes = tuple(
                NodeClass(
                    name=f"c{i}",
                    count=rng.randint(1, 8),
                    cpu=round(rng.uniform(0.25, 4.0), 3),
                    memory=round(rng.uniform(0.25, 4.0), 3),
                )
                for i in range(rng.randint(1, 4))
            )
            platform = NodeClassesPlatform(classes=classes)
            rebuilt = platform_from_dict(platform.to_dict())
            assert rebuilt == platform
            cluster = platform.build_cluster()
            assert cluster.num_nodes == sum(c.count for c in classes)
            # The capacity vectors expand class by class, in order.
            cursor = 0
            for node_class in classes:
                for _ in range(node_class.count):
                    assert cluster.cpu_capacity(cursor) == node_class.cpu
                    assert cluster.mem_capacity(cursor) == node_class.memory
                    cursor += 1
