"""Engine semantics of node failures: eviction policies, validation, repair."""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig, Simulator
from repro.core.job import JobSpec
from repro.core.observers import SimulationObserver
from repro.exceptions import SimulationError
from repro.platform import TraceNodeEventSource
from repro.schedulers.registry import create_scheduler


def _trace(*rows):
    return TraceNodeEventSource(events_list=tuple(rows))


def _run(algorithm, specs, cluster, events, policy="resubmit", observers=None,
         penalty=None):
    from repro.core.penalties import ReschedulingPenaltyModel

    config = SimulationConfig(
        node_events=events,
        failure_policy=policy,
        penalty_model=ReschedulingPenaltyModel(penalty or 0.0),
    )
    simulator = Simulator(cluster, create_scheduler(algorithm), config,
                          observers=observers)
    return simulator.run(specs)


class TestResubmitPolicy:
    def test_kill_loses_progress_and_requeues(self):
        # One node, one job; the node fails mid-run and repairs later: the
        # job restarts from scratch at the repair.
        specs = [JobSpec(0, 0.0, 1, 1.0, 0.5, 1000.0)]
        events = _trace((400.0, 0, "down"), (600.0, 0, "up"))
        result = _run("greedy", specs, Cluster(1), events)
        record = result.jobs[0]
        # 400 s of progress lost; full 1000 s re-run after the repair.  The
        # greedy backoff retries may add bounded delay past t=600.
        assert record.completion_time >= 1600.0
        assert result.costs.node_failures == 1
        assert result.costs.failure_job_kills == 1
        assert result.costs.preemption_count == 0

    def test_survivors_are_untouched(self):
        specs = [
            JobSpec(0, 0.0, 1, 0.5, 0.4, 1000.0),
            JobSpec(1, 0.0, 1, 0.5, 0.4, 1000.0),
        ]
        events = _trace((200.0, 0, "down"), (500.0, 0, "up"))
        result = _run("greedy", specs, Cluster(2), events)
        by_id = {record.spec.job_id: record for record in result.jobs}
        # greedy places job 0 on node 0, job 1 on node 1; job 1 is unaffected.
        assert by_id[1].completion_time == 1000.0
        # Job 0 is killed at t=200 and immediately restarts on node 1
        # (memory 0.4 + 0.4 fits), finishing a full run later.
        assert by_id[0].completion_time == pytest.approx(1200.0)
        assert result.costs.failure_job_kills == 1

    def test_batch_scheduler_requeues_killed_jobs(self):
        specs = [
            JobSpec(0, 0.0, 1, 0.5, 0.4, 1000.0),
            JobSpec(1, 0.0, 1, 0.5, 0.4, 1000.0),
        ]
        events = _trace((200.0, 0, "down"), (500.0, 0, "up"))
        result = _run("fcfs", specs, Cluster(2), events)
        by_id = {record.spec.job_id: record for record in result.jobs}
        assert by_id[1].completion_time == 1000.0
        # FCFS never co-locates: the killed job waits for its node to repair.
        assert by_id[0].completion_time == pytest.approx(1500.0)


class TestMigratePolicy:
    def test_checkpoint_keeps_progress(self):
        specs = [
            JobSpec(0, 0.0, 1, 0.5, 0.4, 1000.0),
            JobSpec(1, 0.0, 1, 0.5, 0.4, 1000.0),
        ]
        # dynmcb8 packs both jobs onto node 0; it fails at t=200.
        events = _trace((200.0, 0, "down"), (500.0, 0, "up"))
        result = _run("dynmcb8", specs, Cluster(2), events, policy="migrate")
        # Both checkpoint at 200 and resume on node 1 within the same event:
        # 800 s of work remain, so both finish at 1000.
        for record in result.jobs:
            assert record.completion_time == pytest.approx(1000.0)
            assert record.preemptions == 1
        assert result.costs.preemption_count == 2
        assert result.costs.failure_job_kills == 0

    def test_resume_penalty_is_charged(self):
        specs = [
            JobSpec(0, 0.0, 1, 0.5, 0.4, 1000.0),
            JobSpec(1, 0.0, 1, 0.5, 0.4, 1000.0),
        ]
        events = _trace((200.0, 0, "down"), (500.0, 0, "up"))
        no_penalty = _run("dynmcb8", specs, Cluster(2), events, policy="migrate")
        with_penalty = _run(
            "dynmcb8", specs, Cluster(2), events, policy="migrate", penalty=300.0
        )
        assert with_penalty.makespan >= no_penalty.makespan + 299.0


class TestEngineGuards:
    def test_legacy_loop_rejects_node_events(self):
        config = SimulationConfig(
            node_events=_trace((1.0, 0, "down")), legacy_event_loop=True
        )
        simulator = Simulator(Cluster(2), create_scheduler("greedy"), config)
        with pytest.raises(SimulationError, match="legacy_event_loop"):
            simulator.run([JobSpec(0, 0.0, 1, 0.5, 0.4, 10.0)])

    def test_migrate_policy_needs_a_resuming_scheduler(self):
        # Plain greedy (and the batch baselines) never resume paused jobs;
        # checkpointed failure victims would starve, so the run must fail
        # fast with a targeted error, not a generic mid-run deadlock.
        for algorithm in ("greedy", "fcfs", "gang"):
            config = SimulationConfig(
                node_events=_trace((100.0, 0, "down"), (200.0, 0, "up")),
                failure_policy="migrate",
            )
            simulator = Simulator(Cluster(2), create_scheduler(algorithm), config)
            with pytest.raises(SimulationError, match="never resumes"):
                simulator.run([JobSpec(0, 0.0, 1, 0.5, 0.4, 1000.0)])

    def test_failure_counters_reach_campaign_rows(self):
        from repro.campaign import Campaign
        from repro.campaign.scenario import LublinSource, Scenario
        from repro.platform import HomogeneousPlatform, TraceNodeEventSource

        scenario = Scenario(
            name="failure-metrics",
            source=LublinSource(num_traces=1, num_jobs=20),
            algorithms=("greedy",),
            platform=HomogeneousPlatform(
                nodes=16,
                events=TraceNodeEventSource(
                    events_list=((500.0, 0, "down"), (1500.0, 0, "up"))
                ),
            ),
            collectors=("costs",),
        )
        row = Campaign().run(scenario).rows[0]
        assert row.metric("node_failures") == 1
        assert row.metric("failure_job_kills") >= 0

    def test_unknown_failure_policy_rejected(self):
        config = SimulationConfig(
            node_events=_trace((1.0, 0, "down")), failure_policy="explode"
        )
        simulator = Simulator(Cluster(2), create_scheduler("greedy"), config)
        with pytest.raises(SimulationError, match="failure_policy"):
            simulator.run([JobSpec(0, 0.0, 1, 0.5, 0.4, 10.0)])

    def test_permanently_infeasible_job_fails_fast(self):
        # 4 tasks of memory 0.6: the two half-memory nodes host none and the
        # two full nodes host one each — the job could back off forever, so
        # registration must reject it instead of livelocking the run.
        cluster = Cluster(4, mem_capacities=(1.0, 1.0, 0.5, 0.5))
        simulator = Simulator(cluster, create_scheduler("greedy"), SimulationConfig())
        with pytest.raises(SimulationError, match="permanently infeasible"):
            simulator.run([JobSpec(0, 0.0, 4, 0.2, 0.6, 100.0)])

    def test_co_location_counts_toward_feasibility(self):
        # The same cluster hosts 2 + 2 + 1 + 1 = 6 tasks of memory 0.45.
        cluster = Cluster(4, mem_capacities=(1.0, 1.0, 0.5, 0.5))
        simulator = Simulator(cluster, create_scheduler("greedy"), SimulationConfig())
        result = simulator.run([JobSpec(0, 0.0, 6, 0.1, 0.45, 100.0)])
        assert result.num_jobs == 1

    def test_batch_on_heterogeneous_cluster_runs(self):
        # Batch baselines are node-class aware: a full-CPU task only lands
        # on nodes with enough CPU capacity, so the job must run on node 0.
        cluster = Cluster(2, cpu_capacities=(2.0, 0.5))
        simulator = Simulator(cluster, create_scheduler("easy"), SimulationConfig())
        result = simulator.run([JobSpec(0, 0.0, 1, 1.0, 0.4, 10.0)])
        assert result.num_jobs == 1
        assert result.jobs[0].completion_time == pytest.approx(10.0)

    def test_batch_job_wider_than_eligible_nodes_fails_fast(self):
        # Two full-CPU tasks but only one node can host one: the batch queue
        # would never start the job, so registration rejects it instead of
        # livelocking the run.
        cluster = Cluster(2, cpu_capacities=(2.0, 0.5))
        simulator = Simulator(cluster, create_scheduler("easy"), SimulationConfig())
        with pytest.raises(SimulationError, match="can host"):
            simulator.run([JobSpec(0, 0.0, 2, 1.0, 0.4, 10.0)])

    def test_pre_start_events_set_initial_availability(self):
        # Node 0 is already down when the first job arrives (event before the
        # first submission); the job must run on node 1.
        specs = [JobSpec(0, 100.0, 1, 0.5, 0.4, 50.0)]
        events = _trace((10.0, 0, "down"))

        class _StartRecorder(SimulationObserver):
            nodes = None

            def on_job_started(self, time, spec, allocation):
                self.nodes = allocation.nodes

        recorder = _StartRecorder()
        result = _run("greedy", specs, Cluster(2), events, observers=[recorder])
        assert recorder.nodes == (1,)
        assert result.jobs[0].completion_time == pytest.approx(150.0)

    def test_down_nodes_leave_the_idle_integral(self):
        # One job on node 1 for 100 s while node 0 is down the whole time:
        # zero idle node-seconds (node 1 busy, node 0 down).
        specs = [JobSpec(0, 0.0, 1, 1.0, 0.5, 100.0)]
        events = _trace((0.0, 1, "down"))
        result = _run("greedy", specs, Cluster(2), events)
        assert result.idle_node_seconds == pytest.approx(0.0)


class _NodeHookRecorder(SimulationObserver):
    def __init__(self) -> None:
        self.downs = []
        self.ups = []
        self.preempted = []

    def on_node_down(self, time, node):
        self.downs.append((time, node))

    def on_node_up(self, time, node):
        self.ups.append((time, node))

    def on_job_preempted(self, time, spec):
        self.preempted.append((time, spec.job_id))


class TestObserverHooks:
    def test_node_hooks_and_eviction_notifications(self):
        specs = [JobSpec(0, 0.0, 1, 1.0, 0.5, 1000.0)]
        events = _trace((400.0, 0, "down"), (600.0, 0, "up"))
        recorder = _NodeHookRecorder()
        _run("greedy", specs, Cluster(1), events, observers=[recorder])
        assert recorder.downs == [(400.0, 0)]
        assert recorder.ups == [(600.0, 0)]
        assert recorder.preempted == [(400.0, 0)]
