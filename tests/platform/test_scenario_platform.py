"""Scenario ``platform`` block: spec round-trips, templating, CLI, e2e runs."""

from __future__ import annotations

import json

import pytest

from repro.campaign import Campaign
from repro.campaign.scenario import (
    GeneratorSource,
    LublinSource,
    Scenario,
    scenario_from_dict,
    scenario_hash,
)
from repro.cli import main
from repro.core.cluster import Cluster
from repro.exceptions import ConfigurationError
from repro.platform import (
    HomogeneousPlatform,
    NodeClass,
    NodeClassesPlatform,
    TraceNodeEventSource,
)


def _failure_platform(**overrides):
    options = dict(
        classes=(NodeClass("fast", 8, cpu=2.0), NodeClass("small", 8, memory=0.5)),
        events=TraceNodeEventSource(
            events_list=((1000.0, 0, "down"), (4000.0, 0, "up"))
        ),
        failure_policy="resubmit",
    )
    options.update(overrides)
    return NodeClassesPlatform(**options)


def _scenario(**overrides):
    options = dict(
        name="plat",
        source=LublinSource(num_traces=1, num_jobs=30),
        algorithms=("greedy",),
        platform=_failure_platform(),
    )
    options.update(overrides)
    return Scenario(**options)


class TestScenarioPlatformField:
    def test_cluster_is_derived_from_platform(self):
        scenario = _scenario()
        assert scenario.cluster.num_nodes == 16
        assert scenario.cluster.is_heterogeneous

    def test_simulation_config_carries_events_and_policy(self):
        config = _scenario().simulation_config()
        assert config.node_events is not None
        assert config.failure_policy == "resubmit"

    def test_spec_round_trip_preserves_hash(self):
        scenario = _scenario()
        rebuilt = scenario_from_dict(scenario.to_dict())
        assert scenario_hash(rebuilt) == scenario_hash(scenario)
        assert rebuilt.to_dict() == scenario.to_dict()

    def test_cluster_and_platform_are_mutually_exclusive(self):
        spec = _scenario().to_dict()
        spec["cluster"] = {"nodes": 8}
        with pytest.raises(ConfigurationError, match="both 'cluster' and 'platform'"):
            scenario_from_dict(spec)

    def test_bare_heterogeneous_cluster_rejected(self):
        with pytest.raises(ConfigurationError, match="platform"):
            Scenario(
                name="het",
                source=LublinSource(num_traces=1, num_jobs=10),
                algorithms=("greedy",),
                cluster=Cluster(2, cpu_capacities=(2.0, 1.0)),
            )

    def test_eventless_homogeneous_platform_demotes_to_cluster(self):
        scenario = Scenario(
            name="plain",
            source=LublinSource(num_traces=1, num_jobs=10),
            algorithms=("greedy",),
            platform=HomogeneousPlatform(nodes=32),
        )
        assert scenario.platform is None
        assert "platform" not in scenario.to_dict()
        assert scenario.cluster == Cluster(32)


class TestPlatformTemplating:
    def _templated_spec(self):
        return {
            "name": "mtbf-sweep",
            "source": {"type": "lublin", "num_traces": 1, "num_jobs": 20,
                       "seed_base": 2010},
            "platform": {
                "type": "homogeneous",
                "nodes": 16,
                "events": {"type": "exponential", "mtbf_seconds": "{mtbf}",
                           "mttr_seconds": 600.0, "horizon_seconds": 86400.0,
                           "seed": 3},
                "failure_policy": "resubmit",
            },
            "algorithms": ["greedy"],
            "sweep": {"mtbf": [3600.0, 86400.0]},
        }

    def test_template_resolves_per_cell(self):
        scenario = scenario_from_dict(self._templated_spec())
        assert scenario.has_platform_template
        fast = scenario.resolved_platform({"mtbf": 3600.0})
        slow = scenario.resolved_platform({"mtbf": 86400.0})
        assert fast.events.mtbf_seconds == 3600.0
        assert slow.events.mtbf_seconds == 86400.0

    def test_unknown_axis_rejected(self):
        spec = self._templated_spec()
        spec["sweep"] = {"load": [0.5]}
        with pytest.raises(ConfigurationError, match="mtbf"):
            scenario_from_dict(spec)

    def test_template_round_trips_verbatim(self):
        scenario = scenario_from_dict(self._templated_spec())
        assert scenario.to_dict()["platform"]["events"]["mtbf_seconds"] == "{mtbf}"
        rebuilt = scenario_from_dict(scenario.to_dict())
        assert scenario_hash(rebuilt) == scenario_hash(scenario)

    def test_untemplated_json_events_fingerprint_in_templated_hash(self, tmp_path):
        # The events sub-block of a templated platform is canonicalised when
        # it has no placeholders, so editing a json failure trace in place
        # still invalidates caches (same guarantee as the static path).
        from repro.platform import NodeEvent, write_node_events_json

        trace = tmp_path / "fail.json"
        write_node_events_json([NodeEvent(5.0, 0, False)], trace)
        spec = {
            "name": "t",
            "source": {"type": "lublin", "num_traces": 1, "num_jobs": 10},
            "platform": {"type": "homogeneous", "nodes": "{n}",
                         "events": {"type": "json", "path": str(trace)}},
            "algorithms": ["greedy"],
            "sweep": {"n": [8, 16]},
        }
        before = scenario_hash(scenario_from_dict(spec))
        write_node_events_json([NodeEvent(7.0, 0, False)], trace)
        assert scenario_hash(scenario_from_dict(spec)) != before

    def test_stale_cache_format_is_regenerated(self, tmp_path):
        # Pre-platform caches lack the failure columns of the 'costs'
        # collector; the executor must ignore (and rewrite) them rather than
        # mix rows with inconsistent metric columns.
        import json as jsonlib

        scenario = Scenario(
            name="fmt",
            source=LublinSource(num_traces=1, num_jobs=10),
            algorithms=("greedy",),
            cluster=Cluster(16, 4, 8.0),
            collectors=("costs",),
        )
        first = Campaign(cache_dir=tmp_path).run(scenario)
        cache_file = next(tmp_path.glob("*.json"))
        payload = jsonlib.loads(cache_file.read_text(encoding="utf-8"))
        del payload["format"]  # simulate a cache written before the bump
        for entry in payload["runs"].values():
            entry["metrics"].pop("node_failures", None)
        cache_file.write_text(jsonlib.dumps(payload), encoding="utf-8")
        second = Campaign(cache_dir=tmp_path).run(scenario)
        assert all("node_failures" in row.metrics for row in second.rows)
        assert [row.to_dict() for row in second.rows] == [
            row.to_dict() for row in first.rows
        ]

    def test_campaign_executes_one_platform_per_cell(self):
        scenario = scenario_from_dict(self._templated_spec())
        outcome = Campaign().run(scenario)
        by_mtbf = {
            row.params_dict()["mtbf"]: row for row in outcome.rows
        }
        assert set(by_mtbf) == {3600.0, 86400.0}

    def test_cached_templated_rerun_skips_workload_generation(self, tmp_path):
        # A fully cached rerun of a sweep-templated platform must not touch
        # the workload source: the per-cell instance counts ride in the
        # cache.  Prove it by counting source invocations.
        from repro.campaign.scenario import LublinSource

        calls = {"count": 0}

        class CountingSource(LublinSource):
            def workloads(self, cluster, *, workers=None):
                calls["count"] += 1
                return super().workloads(cluster, workers=workers)

        def scenario():
            return scenario_from_dict(self._templated_spec())

        first = scenario()
        object.__setattr__(
            first, "source", CountingSource(num_traces=1, num_jobs=20)
        )
        outcome = Campaign(cache_dir=tmp_path).run(first)
        assert calls["count"] == 1  # one cluster shared by both cells

        second = scenario()
        object.__setattr__(
            second, "source", CountingSource(num_traces=1, num_jobs=20)
        )
        cached = Campaign(cache_dir=tmp_path).run(second)
        assert calls["count"] == 1  # fully cached rerun: no regeneration
        assert [row.to_dict() for row in cached.rows] == [
            row.to_dict() for row in outcome.rows
        ]

    def test_streaming_rejects_templated_platform(self):
        spec = self._templated_spec()
        spec["source"] = {"type": "generator", "model": "lublin",
                          "options": {"num_jobs": 20}}
        scenario = scenario_from_dict(spec)
        with pytest.raises(ConfigurationError, match="templating"):
            Campaign(streaming=True).run(scenario)


class TestEndToEnd:
    def test_failure_scenario_runs_from_spec_file(self, tmp_path, capsys):
        # The acceptance criterion: a failure-trace scenario runs end-to-end
        # from a SPEC.json with zero driver code.
        spec = {
            "name": "failures-e2e",
            "source": {"type": "lublin", "num_traces": 1, "num_jobs": 25,
                       "seed_base": 2010},
            "platform": {
                "type": "node-classes",
                "classes": [
                    {"name": "fast", "count": 8, "cpu": 2.0, "memory": 1.0},
                    {"name": "small", "count": 8, "cpu": 1.0, "memory": 0.5},
                ],
                "events": {"type": "trace",
                           "events": [[2000.0, 0, "down"], [9000.0, 0, "up"]]},
                "failure_policy": "migrate",
            },
            "algorithms": ["greedy-pmtn-migr", "dynmcb8-asap-per-600"],
            "collectors": ["stretch", "costs"],
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec), encoding="utf-8")
        assert main(["run", str(path)]) == 0
        printed = capsys.readouterr().out
        assert "failures-e2e" in printed
        assert "greedy-pmtn-migr" in printed

    def test_streaming_campaign_with_static_failure_platform(self):
        scenario = Scenario(
            name="stream-failures",
            source=GeneratorSource(
                model="lublin", instances=2, seed_base=2010,
                options={"num_jobs": 25},
            ),
            algorithms=("greedy",),
            platform=HomogeneousPlatform(
                nodes=32,
                events=TraceNodeEventSource(
                    events_list=((2000.0, 1, "down"), (8000.0, 1, "up"))
                ),
            ),
            collectors=("stretch",),
        )
        outcome = Campaign(streaming=True).run(scenario)
        assert len(outcome.rows) == 1
        assert outcome.rows[0].metric("num_jobs") == 50


class TestPlatformCli:
    def test_inspect_platform_spec(self, tmp_path, capsys):
        spec = {
            "type": "node-classes",
            "classes": [{"name": "fast", "count": 2, "cpu": 2.0, "memory": 1.0}],
            "events": {"type": "trace", "events": [[10.0, 0, "down"]]},
        }
        path = tmp_path / "platform.json"
        path.write_text(json.dumps(spec), encoding="utf-8")
        assert main(["platform", "inspect", str(path)]) == 0
        printed = capsys.readouterr().out
        assert "node-classes" in printed
        assert "fast" in printed
        assert "1 events" in printed

    def test_inspect_scenario_spec_with_template(self, tmp_path, capsys):
        scenario_spec = {
            "name": "x",
            "source": {"type": "lublin", "num_traces": 1, "num_jobs": 10},
            "platform": {"type": "homogeneous", "nodes": 4,
                         "events": {"type": "exponential",
                                    "mtbf_seconds": "{mtbf}",
                                    "mttr_seconds": 60.0,
                                    "horizon_seconds": 3600.0, "seed": 1}},
            "algorithms": ["greedy"],
            "sweep": {"mtbf": [600.0]},
        }
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(scenario_spec), encoding="utf-8")
        assert main(["platform", "inspect", str(path)]) == 0
        printed = capsys.readouterr().out
        assert "representative cell" in printed

    def test_inspect_scenario_with_demoted_homogeneous_platform(
        self, tmp_path, capsys
    ):
        # An event-free homogeneous platform is demoted to the plain cluster
        # form inside Scenario; inspect must still describe the spec's block.
        scenario_spec = {
            "name": "plain",
            "source": {"type": "lublin", "num_traces": 1, "num_jobs": 10},
            "platform": {"type": "homogeneous", "nodes": 16},
            "algorithms": ["greedy"],
        }
        path = tmp_path / "plain.json"
        path.write_text(json.dumps(scenario_spec), encoding="utf-8")
        assert main(["platform", "inspect", str(path)]) == 0
        printed = capsys.readouterr().out
        assert "homogeneous" in printed
        assert "static (no failure trace)" in printed

    def test_validate_ok_and_failure(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps({"type": "homogeneous", "nodes": 4}),
                        encoding="utf-8")
        assert main(["platform", "validate", str(good)]) == 0
        assert "platform OK" in capsys.readouterr().out

        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps({"type": "homogeneous", "nodes": 2,
                        "events": {"type": "trace",
                                   "events": [[5.0, 7, "down"]]}}),
            encoding="utf-8",
        )
        with pytest.raises(ConfigurationError, match="node 7"):
            main(["platform", "validate", str(bad)])
