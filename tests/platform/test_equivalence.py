"""Satellite: the homogeneous platform is byte-identical to the Cluster path.

The guarantee has two layers:

* **construction** — a homogeneous platform (or an all-ones node-classes
  platform) builds a :class:`Cluster` that *equals* the directly constructed
  one, and scenarios carrying it serialise (and therefore hash, cache, and
  export) exactly like cluster-built scenarios;
* **execution** — engine results across the tier-1 scheduler matrix are
  byte-identical between the two construction routes, penalties included.
"""

from __future__ import annotations

import pytest

from repro.campaign import Campaign
from repro.campaign.scenario import LublinSource, Scenario, scenario_hash
from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig, Simulator
from repro.core.penalties import ReschedulingPenaltyModel
from repro.platform import HomogeneousPlatform, NodeClass, NodeClassesPlatform
from repro.schedulers.registry import create_scheduler
from repro.workloads.lublin import LublinWorkloadGenerator

#: The tier-1 scheduler matrix: every paper algorithm family plus the batch
#: baselines (exactly the names the drivers exercise).
MATRIX = (
    "fcfs",
    "easy",
    "greedy",
    "greedy-pmtn",
    "greedy-pmtn-migr",
    "dynmcb8",
    "dynmcb8-per-600",
    "dynmcb8-asap-per-600",
    "dynmcb8-stretch-per-600",
)

CLUSTER = Cluster(16, 4, 8.0)


def _workload():
    return LublinWorkloadGenerator(CLUSTER).generate(60, seed=2010)


def _signature(result):
    """Everything observable of a run, bit-for-bit."""
    return (
        result.makespan,
        result.idle_node_seconds,
        result.costs.preemption_count,
        result.costs.migration_count,
        result.costs.preemption_gb,
        result.costs.migration_gb,
        [
            (
                record.spec.job_id,
                record.first_start_time,
                record.completion_time,
                record.preemptions,
                record.migrations,
            )
            for record in result.jobs
        ],
    )


def _simulate(cluster, algorithm):
    config = SimulationConfig(
        penalty_model=ReschedulingPenaltyModel(300.0),
        record_scheduler_times=False,
    )
    simulator = Simulator(cluster, create_scheduler(algorithm), config)
    return simulator.run(_workload().jobs)


class TestEngineEquivalence:
    @pytest.mark.parametrize("algorithm", MATRIX)
    def test_homogeneous_platform_matches_cluster(self, algorithm):
        platform_cluster = HomogeneousPlatform(
            nodes=16, cores_per_node=4, node_memory_gb=8.0
        ).build_cluster()
        assert platform_cluster == CLUSTER
        assert _signature(_simulate(platform_cluster, algorithm)) == _signature(
            _simulate(CLUSTER, algorithm)
        )

    @pytest.mark.parametrize("algorithm", MATRIX)
    def test_all_ones_node_classes_match_cluster(self, algorithm):
        platform_cluster = NodeClassesPlatform(
            classes=(NodeClass("ref", 16),), cores_per_node=4, node_memory_gb=8.0
        ).build_cluster()
        assert platform_cluster == CLUSTER
        assert _signature(_simulate(platform_cluster, algorithm)) == _signature(
            _simulate(CLUSTER, algorithm)
        )


class TestScenarioEquivalence:
    def _cluster_scenario(self):
        return Scenario(
            name="equiv",
            source=LublinSource(num_traces=1, num_jobs=40),
            algorithms=("greedy", "dynmcb8-asap-per-600", "easy"),
            cluster=CLUSTER,
            penalty_seconds=300.0,
            collectors=("stretch", "costs"),
        )

    def _platform_scenario(self):
        return Scenario(
            name="equiv",
            source=LublinSource(num_traces=1, num_jobs=40),
            algorithms=("greedy", "dynmcb8-asap-per-600", "easy"),
            platform=HomogeneousPlatform(
                nodes=16, cores_per_node=4, node_memory_gb=8.0
            ),
            penalty_seconds=300.0,
            collectors=("stretch", "costs"),
        )

    def test_spec_dict_and_hash_identical(self):
        # An event-free homogeneous platform collapses to the legacy cluster
        # form: same canonical dictionary, same hash, same cache keys.
        assert self._platform_scenario().to_dict() == self._cluster_scenario().to_dict()
        assert scenario_hash(self._platform_scenario()) == scenario_hash(
            self._cluster_scenario()
        )

    def test_campaign_rows_identical(self):
        cluster_rows = Campaign().run(self._cluster_scenario()).rows
        platform_rows = Campaign().run(self._platform_scenario()).rows
        assert [row.to_dict() for row in platform_rows] == [
            row.to_dict() for row in cluster_rows
        ]

    def test_spec_platform_block_round_trips_to_same_rows(self):
        from repro.campaign.scenario import scenario_from_dict

        spec = {
            "name": "equiv",
            "source": {"type": "lublin", "num_traces": 1, "num_jobs": 40,
                       "seed_base": 2010},
            "platform": {"type": "homogeneous", "nodes": 16,
                         "cores_per_node": 4, "node_memory_gb": 8.0},
            "algorithms": ["greedy", "dynmcb8-asap-per-600", "easy"],
            "penalty_seconds": 300.0,
            "collectors": ["stretch", "costs"],
        }
        from_spec = Campaign().run(scenario_from_dict(spec)).rows
        direct = Campaign().run(self._cluster_scenario()).rows
        assert [row.to_dict() for row in from_spec] == [
            row.to_dict() for row in direct
        ]
