"""Node availability sources: determinism, ordering, trace formats."""

from __future__ import annotations

import json
import math

import pytest

from repro.core.cluster import Cluster
from repro.exceptions import ConfigurationError
from repro.platform import (
    ExponentialFailureSource,
    JsonNodeEventSource,
    NodeEvent,
    TraceNodeEventSource,
    WeibullFailureSource,
    available_node_event_sources,
    node_event_source_from_dict,
    write_node_events_json,
)

CLUSTER = Cluster(8)


class TestSyntheticModels:
    def test_exponential_is_deterministic_and_reiterable(self):
        source = ExponentialFailureSource(
            mtbf_seconds=3600.0, mttr_seconds=600.0, horizon_seconds=86400.0, seed=5
        )
        first = source.materialize(CLUSTER)
        second = source.materialize(CLUSTER)
        assert first == second
        assert first  # a day at one-hour MTBF on 8 nodes fails a lot

    def test_events_are_time_ordered_and_alternate_per_node(self):
        source = ExponentialFailureSource(
            mtbf_seconds=1800.0, mttr_seconds=300.0, horizon_seconds=43200.0, seed=9
        )
        events = source.materialize(CLUSTER)
        times = [event.time for event in events]
        assert times == sorted(times)
        state = {}
        for event in events:
            previous_up = state.get(event.node, True)  # nodes start up
            assert event.up == (not previous_up)  # strict alternation per node
            state[event.node] = event.up

    def test_failure_onsets_respect_horizon_but_repairs_may_exceed(self):
        source = ExponentialFailureSource(
            mtbf_seconds=1000.0, mttr_seconds=1e6, horizon_seconds=5000.0, seed=1
        )
        events = source.materialize(Cluster(4))
        downs = [event for event in events if not event.up]
        ups = [event for event in events if event.up]
        assert all(event.time < 5000.0 for event in downs)
        # Every failure gets its repair, even past the horizon: no node is
        # permanently dead.
        assert len(ups) == len(downs)

    def test_seed_changes_the_stream(self):
        base = dict(mtbf_seconds=3600.0, mttr_seconds=600.0, horizon_seconds=86400.0)
        a = ExponentialFailureSource(seed=1, **base).materialize(CLUSTER)
        b = ExponentialFailureSource(seed=2, **base).materialize(CLUSTER)
        assert a != b

    def test_weibull_mean_uptime_matches_mtbf(self):
        # shape != 1 must still average to the requested MTBF (the scale is
        # gamma-corrected); check on a large sample of uptimes.
        source = WeibullFailureSource(
            shape=0.7,
            mtbf_seconds=1000.0,
            mttr_seconds=1.0,
            horizon_seconds=2e6,
            seed=11,
        )
        events = source.materialize(Cluster(1))
        downs = [event.time for event in events if not event.up]
        ups = [0.0] + [event.time for event in events if event.up]
        uptimes = [down - up for down, up in zip(downs, ups)]
        assert len(uptimes) > 500
        mean = sum(uptimes) / len(uptimes)
        assert mean == pytest.approx(1000.0, rel=0.15)

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="mtbf"):
            ExponentialFailureSource(mtbf_seconds=0.0)
        with pytest.raises(ConfigurationError, match="shape"):
            WeibullFailureSource(shape=-1.0)

    def test_round_trips(self):
        for source in (
            ExponentialFailureSource(seed=3),
            WeibullFailureSource(shape=1.3, seed=4),
        ):
            assert node_event_source_from_dict(source.to_dict()) == source


class TestTraceForms:
    def test_inline_trace_round_trip(self):
        source = TraceNodeEventSource(
            events_list=((10.0, 0, "down"), (20.0, 0, "up"), (20.0, 3, "down"))
        )
        assert node_event_source_from_dict(source.to_dict()) == source
        events = source.materialize(CLUSTER)
        assert events[0] == NodeEvent(10.0, 0, False)
        assert events[1].up

    def test_inline_trace_must_be_ordered(self):
        with pytest.raises(ConfigurationError, match="time order"):
            TraceNodeEventSource(events_list=((20.0, 0, "down"), (10.0, 0, "up")))

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="'down' or 'up'"):
            TraceNodeEventSource(events_list=((1.0, 0, "sideways"),))

    def test_node_out_of_range_detected_against_cluster(self):
        source = TraceNodeEventSource(events_list=((1.0, 99, "down"),))
        with pytest.raises(ConfigurationError, match="99"):
            source.materialize(CLUSTER)

    def test_json_write_and_load(self, tmp_path):
        events = [NodeEvent(5.0, 1, False), NodeEvent(8.0, 1, True)]
        path = write_node_events_json(events, tmp_path / "fail.json")
        source = JsonNodeEventSource(path=str(path))
        assert source.materialize(CLUSTER) == events
        # Content fingerprint folds into the canonical form.
        assert "content" in source.to_dict()
        rebuilt = node_event_source_from_dict(source.to_dict())
        assert rebuilt.materialize(CLUSTER) == events

    def test_json_rejects_foreign_payloads(self, tmp_path):
        path = tmp_path / "not-events.json"
        path.write_text(json.dumps({"format": "something-else"}), encoding="utf-8")
        with pytest.raises(ConfigurationError, match="repro-dfrs-node-events-v1"):
            JsonNodeEventSource(path=str(path)).materialize(CLUSTER)

    def test_registry_lists_all_types(self):
        assert set(available_node_event_sources()) >= {
            "exponential",
            "weibull",
            "trace",
            "json",
        }

    def test_event_validation(self):
        with pytest.raises(ConfigurationError, match="finite"):
            NodeEvent(math.inf, 0, False)
        with pytest.raises(ConfigurationError, match=">= 0"):
            NodeEvent(1.0, -1, False)
