"""Tests for composable trace transforms, including the property-style
arrival-order and determinism guarantees every transform must uphold."""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.exceptions import ConfigurationError
from repro.traces import (
    BootstrapResample,
    DowneyTraceSource,
    FilterJobs,
    Head,
    LublinTraceSource,
    Perturb,
    PredicateFilter,
    RescaleLoad,
    ScaleInterarrival,
    TimeWindow,
    TransformedSource,
    available_transforms,
    trace_source_from_dict,
    transform_from_dict,
)
from repro.workloads.model import offered_load

CLUSTER = Cluster(32, 4, 8.0)
BASE = LublinTraceSource(num_jobs=120, seed=17)


def _apply(transform, source=BASE, cluster=CLUSTER):
    return list(transform.apply(source.jobs(cluster), cluster))


# Every spec-expressible transform, each with non-trivial options.
ALL_TRANSFORMS = [
    TimeWindow(start=1000.0, end=500000.0),
    ScaleInterarrival(factor=2.5),
    RescaleLoad(target_load=0.5),
    Perturb(runtime_factor=0.2, width_factor=0.1, seed=9),
    FilterJobs(max_tasks=8, min_runtime_seconds=10.0),
    Head(count=50),
    BootstrapResample(num_jobs=80, seed=9),
]


@pytest.mark.parametrize("transform", ALL_TRANSFORMS, ids=lambda t: t.kind)
class TestTransformProperties:
    def test_preserves_arrival_order(self, transform):
        specs = _apply(transform)
        assert specs, "transform produced an empty stream"
        assert all(
            specs[i].submit_time <= specs[i + 1].submit_time
            for i in range(len(specs) - 1)
        )

    def test_deterministic_under_fixed_seed(self, transform):
        assert _apply(transform) == _apply(transform)

    def test_round_trip_spec(self, transform):
        rebuilt = transform_from_dict(transform.to_dict())
        assert rebuilt == transform
        assert _apply(rebuilt) == _apply(transform)

    def test_job_ids_stay_unique(self, transform):
        specs = _apply(transform)
        ids = [spec.job_id for spec in specs]
        assert len(ids) == len(set(ids))


class TestTimeWindow:
    def test_slices_and_rebases(self):
        specs = _apply(TimeWindow(start=10000.0, end=200000.0))
        original = list(BASE.jobs(CLUSTER))
        expected = [
            spec for spec in original if 10000.0 <= spec.submit_time < 200000.0
        ]
        assert len(specs) == len(expected)
        assert specs[0].submit_time == pytest.approx(
            expected[0].submit_time - 10000.0
        )

    def test_without_rebase_keeps_times(self):
        specs = _apply(TimeWindow(start=10000.0, rebase=False))
        assert specs[0].submit_time >= 10000.0

    def test_stops_reading_after_window(self):
        # The windowed stream must not consume the (infinite-ish) tail.
        def endless(cluster):
            from repro.core.job import JobSpec

            job_id = 0
            while True:
                yield JobSpec(job_id, float(job_id), 1, 0.5, 0.1, 100.0)
                job_id += 1

        from repro.traces import CallableTraceSource

        source = CallableTraceSource(factory=endless, key="endless")
        window = TimeWindow(start=0.0, end=50.0)
        specs = list(window.apply(source.jobs(CLUSTER), CLUSTER))
        assert len(specs) == 50

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TimeWindow(start=-1.0)
        with pytest.raises(ConfigurationError):
            TimeWindow(start=10.0, end=5.0)


class TestScaleAndRescale:
    def test_scale_interarrival_stretches_span(self):
        original = list(BASE.jobs(CLUSTER))
        scaled = _apply(ScaleInterarrival(factor=2.0))
        original_span = original[-1].submit_time - original[0].submit_time
        scaled_span = scaled[-1].submit_time - scaled[0].submit_time
        assert scaled_span == pytest.approx(2.0 * original_span)

    def test_rescale_load_hits_target(self):
        specs = _apply(RescaleLoad(target_load=0.4))
        assert offered_load(specs, CLUSTER) == pytest.approx(0.4)

    def test_rescale_matches_legacy_scaling(self):
        from repro.workloads.scaling import scale_to_load

        workload = BASE.materialize(CLUSTER)
        legacy = scale_to_load(workload, 0.4)
        specs = _apply(RescaleLoad(target_load=0.4))
        assert [s.submit_time for s in specs] == [
            s.submit_time for s in legacy.jobs
        ]

    def test_rescale_needs_two_jobs(self):
        source = LublinTraceSource(num_jobs=1, seed=1)
        with pytest.raises(ConfigurationError):
            list(RescaleLoad(target_load=0.5).apply(source.jobs(CLUSTER), CLUSTER))


class TestPerturb:
    def test_changes_runtimes_not_submits(self):
        original = list(BASE.jobs(CLUSTER))
        perturbed = _apply(Perturb(runtime_factor=0.3, seed=5))
        assert [s.submit_time for s in perturbed] == [
            s.submit_time for s in original
        ]
        assert [s.execution_time for s in perturbed] != [
            s.execution_time for s in original
        ]

    def test_width_stays_in_cluster(self):
        perturbed = _apply(Perturb(width_factor=1.0, seed=5))
        assert all(1 <= s.num_tasks <= CLUSTER.num_nodes for s in perturbed)

    def test_zero_factors_are_identity(self):
        assert _apply(Perturb(seed=5)) == list(BASE.jobs(CLUSTER))

    def test_different_seeds_differ(self):
        assert _apply(Perturb(runtime_factor=0.3, seed=1)) != _apply(
            Perturb(runtime_factor=0.3, seed=2)
        )


class TestFilters:
    def test_named_bounds(self):
        specs = _apply(FilterJobs(max_tasks=4, min_runtime_seconds=100.0))
        assert all(s.num_tasks <= 4 and s.execution_time >= 100.0 for s in specs)

    def test_predicate_filter_not_expressible(self):
        transform = PredicateFilter(
            predicate=lambda spec: spec.num_tasks == 1, key="serial-only"
        )
        specs = _apply(transform)
        assert specs and all(s.num_tasks == 1 for s in specs)
        assert not transform.spec_expressible


class TestBootstrap:
    def test_resamples_with_replacement(self):
        specs = _apply(BootstrapResample(num_jobs=300, seed=3))
        assert len(specs) == 300
        # 300 draws from 120 jobs must repeat some submit times.
        assert len({s.submit_time for s in specs}) < 300

    def test_default_size_matches_input(self):
        assert len(_apply(BootstrapResample(seed=3))) == 120


class TestTransformedSource:
    def test_chain_applies_left_to_right(self):
        chained = TransformedSource(
            base=BASE,
            steps=(FilterJobs(max_tasks=8), Head(count=10)),
        )
        specs = list(chained.jobs(CLUSTER))
        assert len(specs) == 10
        assert all(s.num_tasks <= 8 for s in specs)

    def test_convenience_builder(self):
        chained = BASE.transformed(Head(count=5))
        assert len(list(chained.jobs(CLUSTER))) == 5

    def test_round_trip_spec(self):
        chained = DowneyTraceSource(num_jobs=60, seed=2).transformed(
            FilterJobs(max_tasks=16),
            RescaleLoad(target_load=0.6),
            Perturb(runtime_factor=0.1, seed=4),
        )
        rebuilt = trace_source_from_dict(chained.to_dict())
        assert list(rebuilt.jobs(CLUSTER)) == list(chained.jobs(CLUSTER))
        assert chained.spec_expressible

    def test_streaming_flag(self):
        assert BASE.transformed(Head(count=5)).streaming
        assert not BASE.transformed(RescaleLoad(target_load=0.5)).streaming

    def test_expressibility_tracks_steps(self):
        chained = BASE.transformed(
            PredicateFilter(predicate=lambda s: True, key="k")
        )
        assert not chained.spec_expressible

    def test_needs_base_and_steps(self):
        with pytest.raises(ConfigurationError):
            TransformedSource(base=BASE, steps=())
        with pytest.raises(ConfigurationError):
            TransformedSource(base=None, steps=(Head(count=1),))

    def test_default_name_lists_steps(self):
        name = BASE.transformed(Head(count=5)).default_name()
        assert name == "lublin-seed17+head"


class TestRegistry:
    def test_known_transforms_listed(self):
        kinds = available_transforms()
        for expected in (
            "time-window", "scale-interarrival", "rescale-load",
            "perturb", "filter", "head", "bootstrap",
        ):
            assert expected in kinds

    def test_unknown_transform_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown trace transform"):
            transform_from_dict({"type": "nope"})

    def test_transform_source_needs_base(self):
        with pytest.raises(ConfigurationError, match="base"):
            trace_source_from_dict({"type": "transform", "steps": []})
