"""Tests for the new synthetic trace generators (Downey, diurnal Poisson)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cluster import Cluster
from repro.exceptions import ConfigurationError
from repro.traces import (
    DiurnalPoissonTraceSource,
    DowneyTraceSource,
    trace_source_from_dict,
)

CLUSTER = Cluster(64, 4, 8.0)

GENERATORS = [
    DowneyTraceSource(num_jobs=400, seed=11),
    DiurnalPoissonTraceSource(num_jobs=400, seed=11),
]


@pytest.mark.parametrize("source", GENERATORS, ids=lambda s: s.kind)
class TestGeneratorContract:
    def test_deterministic_under_fixed_seed(self, source):
        assert list(source.jobs(CLUSTER)) == list(source.jobs(CLUSTER))

    def test_different_seeds_differ(self, source):
        reseeded = type(source)(num_jobs=400, seed=12)
        assert list(source.jobs(CLUSTER)) != list(reseeded.jobs(CLUSTER))

    def test_arrival_ordered(self, source):
        specs = list(source.jobs(CLUSTER))
        assert all(
            specs[i].submit_time <= specs[i + 1].submit_time
            for i in range(len(specs) - 1)
        )

    def test_specs_are_valid_and_fit_cluster(self, source):
        specs = list(source.jobs(CLUSTER))
        assert len(specs) == 400
        assert [spec.job_id for spec in specs] == list(range(400))
        for spec in specs:
            assert 1 <= spec.num_tasks <= CLUSTER.num_nodes
            assert 0.0 < spec.cpu_need <= 1.0
            assert 0.0 < spec.mem_requirement <= 1.0
            assert spec.execution_time > 0

    def test_round_trip_spec(self, source):
        rebuilt = trace_source_from_dict(source.to_dict())
        assert rebuilt == source
        assert list(rebuilt.jobs(CLUSTER)) == list(source.jobs(CLUSTER))


class TestDowneyModel:
    def test_runtime_bounds_respected(self):
        source = DowneyTraceSource(
            num_jobs=300,
            seed=3,
            min_runtime_seconds=60.0,
            max_runtime_seconds=600.0,
        )
        runtimes = [spec.execution_time for spec in source.jobs(CLUSTER)]
        assert min(runtimes) >= 60.0
        assert max(runtimes) <= 600.0

    def test_log_uniform_runtimes_cover_the_range(self):
        # A log-uniform sample puts roughly equal mass in each decade.
        source = DowneyTraceSource(
            num_jobs=2000,
            seed=4,
            min_runtime_seconds=10.0,
            max_runtime_seconds=100000.0,
        )
        runtimes = np.array([s.execution_time for s in source.jobs(CLUSTER)])
        logs = np.log10(runtimes)
        low = np.mean(logs < 3.0)  # first half of the log10 range [1, 5]
        assert 0.4 < low < 0.6

    def test_serial_fraction_controls_width(self):
        source = DowneyTraceSource(num_jobs=1000, seed=5, serial_fraction=1.0)
        assert all(spec.num_tasks == 1 for spec in source.jobs(CLUSTER))

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            DowneyTraceSource(num_jobs=0)
        with pytest.raises(ConfigurationError):
            DowneyTraceSource(mean_interarrival_seconds=0.0)
        with pytest.raises(ConfigurationError):
            DowneyTraceSource(min_runtime_seconds=100.0, max_runtime_seconds=10.0)
        with pytest.raises(ConfigurationError):
            DowneyTraceSource(serial_fraction=1.5)


class TestDiurnalPoissonModel:
    def test_diurnal_cycle_shapes_arrivals(self):
        # With a deep trough, hours around the peak must collect far more
        # arrivals than hours around the opposite side of the clock.
        source = DiurnalPoissonTraceSource(
            num_jobs=4000,
            seed=6,
            mean_interarrival_seconds=120.0,
            diurnal_depth=0.9,
            peak_hour=14.0,
            burst_factor=1.0,
        )
        hours = [
            (spec.submit_time / 3600.0) % 24.0 for spec in source.jobs(CLUSTER)
        ]
        near_peak = sum(1 for h in hours if 12.0 <= h <= 16.0)
        near_trough = sum(1 for h in hours if h >= 24.0 - 2.0 or h <= 2.0)
        assert near_peak > 2 * near_trough

    def test_bursts_compress_gaps(self):
        calm = DiurnalPoissonTraceSource(
            num_jobs=2000, seed=7, diurnal_depth=0.0, burst_factor=1.0
        )
        bursty = DiurnalPoissonTraceSource(
            num_jobs=2000,
            seed=7,
            diurnal_depth=0.0,
            burst_factor=10.0,
            mean_burst_seconds=3600.0,
            mean_quiet_seconds=3600.0,
        )
        def squared_cv(source):
            times = [s.submit_time for s in source.jobs(CLUSTER)]
            gaps = np.diff(times)
            return float(np.var(gaps) / np.mean(gaps) ** 2)

        # A Poisson process has CV^2 = 1; the MMPP overlay is overdispersed.
        assert squared_cv(bursty) > squared_cv(calm)

    def test_runtime_cap_respected(self):
        source = DiurnalPoissonTraceSource(
            num_jobs=500, seed=8, max_runtime_seconds=1000.0
        )
        assert all(
            spec.execution_time <= 1000.0 for spec in source.jobs(CLUSTER)
        )

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            DiurnalPoissonTraceSource(diurnal_depth=1.0)
        with pytest.raises(ConfigurationError):
            DiurnalPoissonTraceSource(burst_factor=0.5)
        with pytest.raises(ConfigurationError):
            DiurnalPoissonTraceSource(mean_burst_seconds=0.0)
