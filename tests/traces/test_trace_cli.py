"""Tests for the ``repro-dfrs trace`` CLI subcommands."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.core.cluster import Cluster
from repro.traces import load_trace_json
from repro.workloads import Hpc2nLikeTraceGenerator, parse_swf, write_swf


@pytest.fixture()
def swf_file(tmp_path):
    generator = Hpc2nLikeTraceGenerator(
        Cluster(16, 2, 2.0), jobs_per_week=30
    )
    path = tmp_path / "sample.swf"
    write_swf(
        generator.generate_records(1, seed=3),
        path,
        header=["; Computer: sample", "; MaxNodes: 16"],
    )
    return path


@pytest.fixture()
def chain_spec(tmp_path):
    path = tmp_path / "chain.json"
    path.write_text(
        json.dumps(
            {
                "type": "transform",
                "base": {"type": "downey", "num_jobs": 40, "seed": 5},
                "steps": [{"type": "rescale-load", "target_load": 0.5}],
            }
        ),
        encoding="utf-8",
    )
    return path


class TestParser:
    def test_trace_requires_subcommand(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["trace"])

    def test_transform_requires_output(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["trace", "transform", "chain.json"])


class TestInspect:
    def test_swf_shows_header_and_stats(self, swf_file, capsys):
        assert main(["trace", "inspect", str(swf_file)]) == 0
        output = capsys.readouterr().out
        assert "Computer: sample" in output
        assert "MaxNodes: 16" in output
        assert "usable jobs:" in output
        assert "offered load:" in output

    def test_spec_file_inspectable(self, chain_spec, capsys):
        assert main(["trace", "inspect", str(chain_spec)]) == 0
        assert "usable jobs: 40" in capsys.readouterr().out


class TestCharacterize:
    def test_chain_spec(self, chain_spec, capsys):
        assert main(["trace", "characterize", str(chain_spec)]) == 0
        output = capsys.readouterr().out
        assert "job width histogram:" in output
        assert "downey-seed5" in output


class TestTransformAndConvert:
    def test_transform_writes_internal_json(self, chain_spec, tmp_path, capsys):
        out = tmp_path / "materialized.json"
        assert main(["trace", "transform", str(chain_spec), "--output", str(out)]) == 0
        assert "wrote" in capsys.readouterr().out
        workload = load_trace_json(out)
        assert workload.num_jobs == 40

    def test_convert_swf_to_json_and_back(self, swf_file, tmp_path, capsys):
        json_out = tmp_path / "converted.json"
        assert main(["trace", "convert", str(swf_file), str(json_out)]) == 0
        swf_out = tmp_path / "back.swf.gz"
        assert main(["trace", "convert", str(json_out), str(swf_out)]) == 0
        capsys.readouterr()
        # Memory fractions and shapes survive the (documented lossy) cycle.
        original = load_trace_json(json_out)
        records = parse_swf(swf_out)
        assert len(records) == original.num_jobs

    def test_unknown_extension_rejected(self, chain_spec, tmp_path):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="must end in"):
            main(["trace", "transform", str(chain_spec), "--output",
                  str(tmp_path / "out.csv")])

    def test_missing_input_rejected(self, tmp_path):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError, match="not found"):
            main(["trace", "inspect", str(tmp_path / "missing.swf")])
