"""Tests for the JobSource protocol and its adapters."""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.job import JobSpec
from repro.exceptions import ConfigurationError
from repro.traces import (
    CallableTraceSource,
    ConcatTraceSource,
    Hpc2nLikeTraceSource,
    JsonTraceSource,
    LublinTraceSource,
    SwfTraceSource,
    WorkloadTraceSource,
    available_trace_sources,
    trace_source_from_dict,
    write_trace_json,
)
from repro.workloads import (
    Hpc2nLikeTraceGenerator,
    LublinWorkloadGenerator,
    Workload,
    swf_to_dfrs_jobs,
    write_swf,
)

CLUSTER = Cluster(32, 4, 8.0)


def _arrival_ordered(specs):
    return all(
        specs[i].submit_time <= specs[i + 1].submit_time
        for i in range(len(specs) - 1)
    )


class TestLublinAdapter:
    def test_matches_materialized_generator(self):
        streamed = list(LublinTraceSource(num_jobs=80, seed=5).jobs(CLUSTER))
        legacy = LublinWorkloadGenerator(CLUSTER).generate(80, seed=5)
        assert streamed == legacy.jobs

    def test_round_trip_spec(self):
        source = LublinTraceSource(num_jobs=10, seed=3)
        assert trace_source_from_dict(source.to_dict()) == source
        assert source.spec_expressible

    def test_rejects_bad_count(self):
        with pytest.raises(ConfigurationError):
            LublinTraceSource(num_jobs=0)


class TestHpc2nLikeAdapter:
    def test_matches_materialized_generator(self):
        streamed = list(
            Hpc2nLikeTraceSource(weeks=1, jobs_per_week=60, seed=4).jobs(CLUSTER)
        )
        generator = Hpc2nLikeTraceGenerator(CLUSTER, jobs_per_week=60)
        legacy = generator.generate_workload(1, seed=4)
        assert streamed == legacy.jobs

    def test_round_trip_spec(self):
        source = Hpc2nLikeTraceSource(weeks=2, jobs_per_week=30, seed=1)
        assert trace_source_from_dict(source.to_dict()) == source


class TestSwfAdapter:
    def test_streams_file(self, tmp_path):
        generator = Hpc2nLikeTraceGenerator(CLUSTER, jobs_per_week=40)
        records = generator.generate_records(1, seed=9)
        path = tmp_path / "trace.swf"
        write_swf(records, path)
        streamed = list(SwfTraceSource(path=str(path)).jobs(CLUSTER))
        legacy = swf_to_dfrs_jobs(records, CLUSTER)
        assert streamed == legacy.jobs

    def test_default_name_strips_suffixes(self):
        assert SwfTraceSource(path="/data/hpc2n.swf.gz").default_name() == "hpc2n"

    def test_needs_path(self):
        with pytest.raises(ConfigurationError):
            SwfTraceSource()


class TestJsonAdapter:
    def test_round_trips_workload(self, tmp_path):
        workload = LublinWorkloadGenerator(CLUSTER).generate(15, seed=2)
        path = tmp_path / "trace.json"
        write_trace_json(workload, path)
        streamed = list(JsonTraceSource(path=str(path)).jobs(CLUSTER))
        assert streamed == workload.jobs


class TestInMemoryAdapters:
    def test_workload_adapter(self):
        workload = LublinWorkloadGenerator(CLUSTER).generate(12, seed=7)
        source = WorkloadTraceSource(workload=workload)
        assert list(source.jobs(CLUSTER)) == workload.jobs
        assert not source.spec_expressible
        assert source.default_name() == workload.name

    def test_callable_adapter(self):
        def factory(cluster):
            return [JobSpec(0, 0.0, 1, 0.5, 0.1, 100.0)]

        source = CallableTraceSource(factory=factory, key="one-job")
        assert len(list(source.jobs(CLUSTER))) == 1
        assert not source.spec_expressible
        assert source.to_dict() == {"type": "callable", "key": "one-job"}


class TestConcat:
    def test_splices_sequentially(self):
        first = LublinTraceSource(num_jobs=10, seed=1)
        second = LublinTraceSource(num_jobs=10, seed=2)
        spliced = list(
            ConcatTraceSource(sources=(first, second), gap_seconds=500.0).jobs(CLUSTER)
        )
        assert len(spliced) == 20
        assert [spec.job_id for spec in spliced] == list(range(20))
        assert _arrival_ordered(spliced)
        # The second segment starts exactly gap_seconds after the first ends.
        assert spliced[10].submit_time == pytest.approx(
            spliced[9].submit_time + 500.0
        )

    def test_round_trip_spec(self):
        source = ConcatTraceSource(
            sources=(LublinTraceSource(num_jobs=5, seed=1),
                     LublinTraceSource(num_jobs=5, seed=2)),
            gap_seconds=10.0,
        )
        rebuilt = trace_source_from_dict(source.to_dict())
        assert list(rebuilt.jobs(CLUSTER)) == list(source.jobs(CLUSTER))

    def test_not_expressible_with_callable_child(self):
        source = ConcatTraceSource(
            sources=(
                CallableTraceSource(factory=lambda c: [], key="empty"),
            )
        )
        assert not source.spec_expressible

    def test_rejects_empty_and_negative_gap(self):
        with pytest.raises(ConfigurationError):
            ConcatTraceSource(sources=())
        with pytest.raises(ConfigurationError):
            ConcatTraceSource(
                sources=(LublinTraceSource(num_jobs=1),), gap_seconds=-1.0
            )


class TestRegistry:
    def test_known_types_listed(self):
        kinds = available_trace_sources()
        for expected in (
            "lublin", "hpc2n-like", "swf", "json", "concat",
            "downey", "diurnal-poisson", "transform",
        ):
            assert expected in kinds

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown trace source"):
            trace_source_from_dict({"type": "nope"})

    def test_missing_type_rejected(self):
        with pytest.raises(ConfigurationError, match="'type'"):
            trace_source_from_dict({})

    def test_bad_options_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid options"):
            trace_source_from_dict({"type": "lublin", "bogus": 1})


class TestMaterialize:
    def test_materialize_names_and_sorts(self):
        source = LublinTraceSource(num_jobs=10, seed=6)
        workload = source.materialize(CLUSTER)
        assert isinstance(workload, Workload)
        assert workload.name == "lublin-seed6"
        assert workload.num_jobs == 10
        named = source.materialize(CLUSTER, name="custom")
        assert named.name == "custom"

    def test_sources_are_re_iterable(self):
        source = LublinTraceSource(num_jobs=25, seed=8)
        assert list(source.jobs(CLUSTER)) == list(source.jobs(CLUSTER))
