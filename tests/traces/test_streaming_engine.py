"""Streaming intake of the simulation engine: byte-identical results and
O(active jobs) resident state."""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig, Simulator
from repro.core.job import JobSpec
from repro.core.penalties import ReschedulingPenaltyModel
from repro.exceptions import SimulationError
from repro.schedulers.registry import create_scheduler
from repro.traces import DiurnalPoissonTraceSource, LublinTraceSource

CLUSTER = Cluster(32, 4, 8.0)
CONFIG = SimulationConfig(penalty_model=ReschedulingPenaltyModel(300.0))


def _workload(num_jobs=150, seed=23):
    from repro.workloads.scaling import scale_to_load

    raw = LublinTraceSource(num_jobs=num_jobs, seed=seed).materialize(CLUSTER)
    # The raw trace heavily overloads the 32-node test cluster; a 0.7 load
    # keeps the periodic DFRS algorithms fast while still exercising
    # preemptions and migrations.
    return scale_to_load(raw, 0.7)


def _results_identical(a, b):
    assert a.jobs == b.jobs
    assert a.makespan == b.makespan
    assert a.idle_node_seconds == b.idle_node_seconds
    assert a.costs.preemption_count == b.costs.preemption_count
    assert a.costs.migration_count == b.costs.migration_count
    assert a.costs.preemption_gb == b.costs.preemption_gb
    assert a.costs.migration_gb == b.costs.migration_gb
    assert a.scheduler_job_counts == b.scheduler_job_counts


@pytest.mark.parametrize(
    "algorithm,num_jobs",
    [
        ("easy", 150),
        ("fcfs", 150),
        ("greedy-pmtn", 150),
        # MCB8 vector packing is costly per event; a shorter trace keeps the
        # equivalence check meaningful without dominating the tier-1 run.
        ("dynmcb8-stretch-per-600", 60),
    ],
)
def test_streaming_results_byte_identical(algorithm, num_jobs):
    workload = _workload(num_jobs=num_jobs)
    materialized = Simulator(CLUSTER, create_scheduler(algorithm), CONFIG).run(
        workload.jobs
    )
    streaming = Simulator(CLUSTER, create_scheduler(algorithm), CONFIG)
    result = streaming.run_stream(iter(workload.jobs))
    _results_identical(materialized, result)


def test_streaming_from_generator_source():
    source = DiurnalPoissonTraceSource(
        num_jobs=200, seed=5, mean_interarrival_seconds=900.0
    )
    materialized = Simulator(CLUSTER, create_scheduler("easy"), CONFIG).run(
        source.materialize(CLUSTER).jobs
    )
    simulator = Simulator(CLUSTER, create_scheduler("easy"), CONFIG)
    result = simulator.run_stream(source.jobs(CLUSTER))
    _results_identical(materialized, result)


def test_peak_resident_jobs_is_bounded():
    workload = _workload(num_jobs=300)
    materialized = Simulator(CLUSTER, create_scheduler("easy"), CONFIG)
    materialized.run(workload.jobs)
    assert materialized.peak_resident_jobs == 300

    streaming = Simulator(CLUSTER, create_scheduler("easy"), CONFIG)
    streaming.run_stream(iter(workload.jobs))
    # Lazy admission + completion eviction: resident state tracks the number
    # of concurrently active jobs, not the trace length.
    assert streaming.peak_resident_jobs < 300


def test_streaming_rejects_legacy_event_loop():
    config = SimulationConfig(legacy_event_loop=True)
    simulator = Simulator(CLUSTER, create_scheduler("easy"), config)
    with pytest.raises(SimulationError, match="legacy"):
        simulator.run_stream(iter(_workload(num_jobs=5).jobs))


def test_streaming_rejects_empty_stream():
    simulator = Simulator(CLUSTER, create_scheduler("easy"), CONFIG)
    with pytest.raises(SimulationError, match="empty"):
        simulator.run_stream(iter([]))


def test_streaming_rejects_out_of_order_specs():
    specs = [
        JobSpec(0, 100.0, 1, 0.5, 0.1, 50.0),
        JobSpec(1, 10.0, 1, 0.5, 0.1, 50.0),
    ]
    simulator = Simulator(CLUSTER, create_scheduler("easy"), CONFIG)
    with pytest.raises(SimulationError, match="arrival-ordered"):
        simulator.run_stream(iter(specs))


def test_streaming_rejects_duplicate_ids():
    specs = [
        JobSpec(0, 0.0, 1, 0.5, 0.1, 50.0),
        JobSpec(0, 1.0, 1, 0.5, 0.1, 50.0),
    ]
    simulator = Simulator(CLUSTER, create_scheduler("easy"), CONFIG)
    with pytest.raises(SimulationError, match="duplicate"):
        simulator.run_stream(iter(specs))


def test_streaming_handles_simultaneous_submissions():
    # Same-timestamp submissions exercise the one-ahead admission refill.
    specs = [JobSpec(i, 0.0 if i < 4 else 100.0, 1, 0.5, 0.1, 60.0) for i in range(8)]
    materialized = Simulator(CLUSTER, create_scheduler("easy"), CONFIG).run(specs)
    streaming = Simulator(CLUSTER, create_scheduler("easy"), CONFIG)
    result = streaming.run_stream(iter(specs))
    _results_identical(materialized, result)
