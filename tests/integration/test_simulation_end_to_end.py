"""Integration tests: every algorithm simulated end-to-end on real workloads.

These tests exercise the full stack (workload generation → scheduler →
engine → metrics) and assert the paper's qualitative claims at a small scale.
"""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.engine import SimulationConfig, Simulator
from repro.core.penalties import ReschedulingPenaltyModel
from repro.experiments.runner import run_algorithm, run_instance
from repro.schedulers.registry import PAPER_ALGORITHMS, create_scheduler
from repro.workloads.hpc2n import Hpc2nLikeTraceGenerator
from repro.workloads.lublin import LublinWorkloadGenerator
from repro.workloads.scaling import scale_to_load


@pytest.fixture(scope="module")
def cluster():
    return Cluster(num_nodes=16, cores_per_node=4, node_memory_gb=8.0)


@pytest.fixture(scope="module")
def workload(cluster):
    base = LublinWorkloadGenerator(cluster).generate(40, seed=123)
    return scale_to_load(base, 0.7)


@pytest.fixture(scope="module")
def all_results(workload):
    """Run every paper algorithm once on the shared workload (5-min penalty)."""
    return run_instance(workload, PAPER_ALGORITHMS, penalty_seconds=300.0).results


class TestEveryAlgorithmCompletes:
    @pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
    def test_all_jobs_complete(self, all_results, workload, algorithm):
        result = all_results[algorithm]
        assert result.num_jobs == workload.num_jobs
        completed_ids = {record.spec.job_id for record in result.jobs}
        assert completed_ids == {spec.job_id for spec in workload.jobs}

    @pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
    def test_stretches_are_at_least_one(self, all_results, algorithm):
        result = all_results[algorithm]
        assert (result.stretches() >= 1.0 - 1e-9).all()

    @pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
    def test_completion_never_before_submission_plus_runtime_share(
        self, all_results, algorithm
    ):
        result = all_results[algorithm]
        for record in result.jobs:
            assert record.completion_time >= record.spec.submit_time
            # No job can finish faster than its dedicated execution time.
            assert record.turnaround_time >= record.spec.execution_time - 1e-6

    @pytest.mark.parametrize("algorithm", ["fcfs", "easy"])
    def test_batch_algorithms_never_preempt(self, all_results, algorithm):
        result = all_results[algorithm]
        assert result.costs.preemption_count == 0
        assert result.costs.migration_count == 0

    def test_greedy_never_preempts_or_migrates(self, all_results):
        result = all_results["greedy"]
        assert result.costs.preemption_count == 0
        assert result.costs.migration_count == 0

    def test_greedy_pmtn_never_migrates(self, all_results):
        assert all_results["greedy-pmtn"].costs.migration_count == 0

    def test_determinism(self, workload):
        first = run_algorithm(workload, "dynmcb8-asap-per-600", penalty_seconds=300.0)
        second = run_algorithm(workload, "dynmcb8-asap-per-600", penalty_seconds=300.0)
        assert first.max_stretch == pytest.approx(second.max_stretch)
        assert first.costs.preemption_count == second.costs.preemption_count
        assert first.costs.migration_count == second.costs.migration_count


class TestPaperQualitativeClaims:
    def test_dfrs_beats_batch_scheduling(self, all_results):
        """The headline claim: DFRS widely outperforms batch scheduling."""
        batch_best = min(all_results[name].max_stretch for name in ("fcfs", "easy"))
        dfrs_best = min(
            all_results[name].max_stretch
            for name in PAPER_ALGORITHMS
            if name not in ("fcfs", "easy")
        )
        assert dfrs_best < batch_best

    def test_preemptive_greedy_beats_plain_greedy_or_matches(self, all_results):
        assert (
            all_results["greedy-pmtn"].max_stretch
            <= all_results["greedy"].max_stretch + 1e-9
        )

    def test_easy_not_worse_than_fcfs(self, all_results):
        """Backfilling can only help the maximum stretch on these workloads."""
        assert (
            all_results["easy"].max_stretch
            <= all_results["fcfs"].max_stretch * 1.5 + 1e-9
        )

    def test_global_repacking_migrates_more_than_greedy_moves(self, all_results):
        """The mechanism behind Figure 1(b) and Table II: repacking the whole
        cluster at every event (DYNMCB8) moves jobs around far more than the
        greedy policy that only moves a job to force an admission, which is
        why a per-occurrence penalty hurts DYNMCB8 disproportionately.  (The
        resulting stretch ordering is an average-over-instances statement and
        is exercised by the Figure 1 / Table I benchmarks.)"""
        aggressive = all_results["dynmcb8"].migrations_per_job()
        greedy_moves = all_results["greedy-pmtn-migr"].migrations_per_job()
        assert aggressive > greedy_moves

    def test_no_penalty_dynmcb8_is_strong(self, workload):
        """Without any penalty DYNMCB8 is at least as good as the batch baselines."""
        aggressive = run_algorithm(workload, "dynmcb8", penalty_seconds=0.0)
        fcfs = run_algorithm(workload, "fcfs", penalty_seconds=0.0)
        easy = run_algorithm(workload, "easy", penalty_seconds=0.0)
        assert aggressive.max_stretch < min(fcfs.max_stretch, easy.max_stretch)

    def test_dynmcb8_has_highest_migration_churn(self, all_results):
        """Table II: DYNMCB8 migrates far more than the periodic variants."""
        aggressive = all_results["dynmcb8"].migrations_per_job()
        periodic = all_results["dynmcb8-per-600"].migrations_per_job()
        assert aggressive >= periodic * 0.5  # at least comparable, usually much larger


class TestHpc2nIntegration:
    def test_hpc2n_like_trace_runs_end_to_end(self):
        workload = Hpc2nLikeTraceGenerator(jobs_per_week=60).generate_workload(1, seed=1)
        result = run_algorithm(workload, "dynmcb8-asap-per-600", penalty_seconds=300.0)
        assert result.num_jobs == workload.num_jobs
        assert result.max_stretch >= 1.0

    def test_batch_on_hpc2n_like_trace(self):
        workload = Hpc2nLikeTraceGenerator(jobs_per_week=60).generate_workload(1, seed=1)
        result = run_algorithm(workload, "easy", penalty_seconds=300.0)
        assert result.num_jobs == workload.num_jobs


class TestEngineSchedulerContract:
    @pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
    def test_fresh_scheduler_instances_are_reusable(self, algorithm, cluster):
        """start() must fully reset internal state between runs."""
        workload = LublinWorkloadGenerator(cluster).generate(15, seed=5)
        scheduler = create_scheduler(algorithm)
        config = SimulationConfig(penalty_model=ReschedulingPenaltyModel(0.0))
        first = Simulator(cluster, scheduler, config).run(workload.jobs)
        second = Simulator(cluster, scheduler, config).run(workload.jobs)
        assert first.max_stretch == pytest.approx(second.max_stretch)
