"""Cross-cutting invariant tests over randomized workloads.

The engine validates every scheduler decision against node capacities at
every event, so simply running many randomized workloads under every DFRS
algorithm is a strong invariant check: any memory or CPU oversubscription,
arity mistake, or allocation to a finished job raises immediately.  On top of
that these tests assert conservation properties of the results themselves.
"""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.experiments.runner import run_algorithm
from repro.schedulers.registry import PAPER_ALGORITHMS
from repro.workloads.lublin import LublinWorkloadGenerator
from repro.workloads.memory import MemoryRequirementModel
from repro.workloads.scaling import scale_to_load

ALGORITHMS_UNDER_TEST = [
    "greedy",
    "greedy-pmtn",
    "greedy-pmtn-migr",
    "dynmcb8",
    "dynmcb8-per-600",
    "dynmcb8-asap-per-600",
    "dynmcb8-stretch-per-600",
]


def _workload(seed: int, *, memory_heavy: bool = False, load: float = 0.8):
    cluster = Cluster(num_nodes=8, cores_per_node=4, node_memory_gb=8.0)
    memory_model = (
        MemoryRequirementModel(small_probability=0.2)
        if memory_heavy
        else MemoryRequirementModel()
    )
    generator = LublinWorkloadGenerator(cluster, memory_model=memory_model)
    base = generator.generate(25, seed=seed)
    return scale_to_load(base, load)


class TestRandomizedInvariants:
    @pytest.mark.parametrize("algorithm", ALGORITHMS_UNDER_TEST)
    @pytest.mark.parametrize("seed", [11, 12])
    def test_every_job_completes_exactly_once(self, algorithm, seed):
        workload = _workload(seed)
        result = run_algorithm(workload, algorithm, penalty_seconds=300.0)
        ids = [record.spec.job_id for record in result.jobs]
        assert sorted(ids) == sorted(spec.job_id for spec in workload.jobs)
        assert len(set(ids)) == len(ids)

    @pytest.mark.parametrize("algorithm", ALGORITHMS_UNDER_TEST)
    def test_turnaround_at_least_dedicated_time(self, algorithm):
        workload = _workload(21)
        result = run_algorithm(workload, algorithm, penalty_seconds=0.0)
        for record in result.jobs:
            assert record.turnaround_time >= record.spec.execution_time - 1e-6
            assert record.wait_time >= -1e-9

    @pytest.mark.parametrize("algorithm", ["greedy-pmtn", "dynmcb8-asap-per-600"])
    def test_memory_heavy_workloads_still_complete(self, algorithm):
        """Workloads dominated by near-full-node memory tasks force heavy use
        of the preemption machinery; everything must still terminate."""
        workload = _workload(31, memory_heavy=True, load=0.9)
        result = run_algorithm(workload, algorithm, penalty_seconds=300.0)
        assert result.num_jobs == workload.num_jobs

    @pytest.mark.parametrize("algorithm", ALGORITHMS_UNDER_TEST)
    def test_costs_consistent_with_job_records(self, algorithm):
        workload = _workload(41)
        result = run_algorithm(workload, algorithm, penalty_seconds=300.0)
        assert result.costs.preemption_count == sum(
            record.preemptions for record in result.jobs
        )
        assert result.costs.migration_count == sum(
            record.migrations for record in result.jobs
        )
        if result.costs.preemption_count == 0:
            assert result.costs.preemption_gb == pytest.approx(0.0)
        if result.costs.migration_count == 0:
            assert result.costs.migration_gb == pytest.approx(0.0)

    def test_penalty_never_speeds_up_a_run(self):
        """For every algorithm the 5-minute penalty can only hurt (or leave
        unchanged) the maximum stretch of a given instance."""
        workload = _workload(51)
        for algorithm in ("greedy-pmtn", "dynmcb8", "dynmcb8-asap-per-600"):
            free = run_algorithm(workload, algorithm, penalty_seconds=0.0)
            charged = run_algorithm(workload, algorithm, penalty_seconds=300.0)
            assert charged.max_stretch >= free.max_stretch - 1e-6

    def test_zero_penalty_costs_have_zero_bandwidth_rate_without_events(self):
        workload = _workload(61, load=0.2)
        result = run_algorithm(workload, "greedy", penalty_seconds=0.0)
        assert result.costs.preemption_count == 0
        assert result.preemption_bandwidth_gb_per_sec() == pytest.approx(0.0)
